//! Baseline sampling policies the paper compares ExSample against.
//!
//! * [`RandomPolicy`] — uniform sampling without replacement over the
//!   whole repository ("an efficient random sampling baseline", the main
//!   comparison of Figures 3–5).
//! * [`RandomPlusPolicy`] — the stratified *random+* order of §III-F run
//!   over the whole dataset, evaluated separately in the paper's
//!   within-chunk ablation.
//! * [`SequentialPolicy`] — naive execution: scan frames in order with a
//!   stride, wrapping to unvisited offsets (§II-B "naive execution").
//! * [`ProxyOrderPolicy`] — BlazeIt-style execution: process frames in
//!   descending proxy-score order, optionally skipping frames temporally
//!   close to already-processed ones (the duplicate-avoidance heuristic
//!   mentioned in §III). The upfront scoring-scan cost is charged by the
//!   experiment harness via [`exsample_core::driver::SearchCost::upfront_s`].
//!
//! All policies implement [`exsample_core::policy::SamplingPolicy`], never
//! repeat a frame, and enumerate every frame before returning `None`.

#![warn(missing_docs)]

use exsample_core::policy::{Feedback, SamplingPolicy};
use exsample_core::within::{RandomWithin, StratifiedWithin};
use exsample_core::FrameIdx;
use exsample_stats::{FxHashSet, Rng64};

/// Uniform random sampling without replacement over `0..frames`.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    inner: RandomWithin,
}

impl RandomPolicy {
    /// Policy over a repository of `frames` frames.
    pub fn new(frames: u64) -> Self {
        RandomPolicy {
            inner: RandomWithin::new(0..frames),
        }
    }
}

impl SamplingPolicy for RandomPolicy {
    fn next_frame(&mut self, rng: &mut Rng64) -> Option<FrameIdx> {
        self.inner.draw(rng)
    }
    fn feedback(&mut self, _frame: FrameIdx, _fb: Feedback) {}
    fn name(&self) -> String {
        "random".into()
    }
}

/// Stratified random+ sampling over the whole dataset.
#[derive(Debug, Clone)]
pub struct RandomPlusPolicy {
    inner: StratifiedWithin,
}

impl RandomPlusPolicy {
    /// Policy over a repository of `frames` frames.
    pub fn new(frames: u64) -> Self {
        RandomPlusPolicy {
            inner: StratifiedWithin::new(0..frames),
        }
    }
}

impl SamplingPolicy for RandomPlusPolicy {
    fn next_frame(&mut self, rng: &mut Rng64) -> Option<FrameIdx> {
        self.inner.draw(rng)
    }
    fn feedback(&mut self, _frame: FrameIdx, _fb: Feedback) {}
    fn name(&self) -> String {
        "random+".into()
    }
}

/// Naive sequential scan with a stride: emits `0, s, 2s, …`, then wraps to
/// `1, s+1, …` and so on until every frame has been visited.
#[derive(Debug, Clone)]
pub struct SequentialPolicy {
    frames: u64,
    stride: u64,
    offset: u64,
    cursor: u64,
}

impl SequentialPolicy {
    /// Scan `0..frames` visiting every `stride`-th frame per pass.
    ///
    /// # Panics
    /// Panics if `stride == 0`.
    pub fn new(frames: u64, stride: u64) -> Self {
        assert!(stride > 0, "stride must be positive");
        SequentialPolicy {
            frames,
            stride,
            offset: 0,
            cursor: 0,
        }
    }
}

impl SamplingPolicy for SequentialPolicy {
    fn next_frame(&mut self, _rng: &mut Rng64) -> Option<FrameIdx> {
        while self.offset < self.stride.min(self.frames.max(1)) {
            let f = self.cursor;
            if f < self.frames {
                self.cursor += self.stride;
                return Some(f);
            }
            self.offset += 1;
            self.cursor = self.offset;
        }
        None
    }
    fn feedback(&mut self, _frame: FrameIdx, _fb: Feedback) {}
    fn name(&self) -> String {
        format!("sequential(stride={})", self.stride)
    }
}

/// BlazeIt-style proxy-ordered execution.
///
/// Frames are emitted in the externally supplied (descending-score) order.
/// With `avoid_window > 0`, frames within that many frames of an
/// already-emitted one are deferred: they are skipped on the main pass and
/// only emitted once the main pass is exhausted (keeping the policy a full
/// permutation). This is the duplicate-avoidance heuristic the paper gives
/// proxy baselines the benefit of.
#[derive(Debug, Clone)]
pub struct ProxyOrderPolicy {
    order: Vec<FrameIdx>,
    pos: usize,
    avoid_window: u64,
    emitted: FxHashSet<FrameIdx>,
    /// Coarse occupancy grid over `frame / (avoid_window+1)` cells for
    /// O(1) proximity checks.
    occupied_cells: FxHashSet<u64>,
    deferred: Vec<FrameIdx>,
    draining_deferred: usize,
}

impl ProxyOrderPolicy {
    /// Policy following `order` (typically
    /// [`exsample_detect::ProxyModel::descending_order`]-style output,
    /// passed as data to keep this crate detector-agnostic).
    ///
    /// # Panics
    /// Panics if `order` contains duplicates.
    pub fn new(order: Vec<FrameIdx>, avoid_window: u64) -> Self {
        let mut seen = FxHashSet::default();
        for &f in &order {
            assert!(seen.insert(f), "duplicate frame {f} in proxy order");
        }
        ProxyOrderPolicy {
            order,
            pos: 0,
            avoid_window,
            emitted: FxHashSet::default(),
            occupied_cells: FxHashSet::default(),
            deferred: Vec::new(),
            draining_deferred: 0,
        }
    }

    fn cell(&self, f: FrameIdx) -> u64 {
        f / (self.avoid_window + 1)
    }

    /// Is `f` within `avoid_window` of an emitted frame?
    fn near_emitted(&self, f: FrameIdx) -> bool {
        if self.avoid_window == 0 {
            return false;
        }
        let c = self.cell(f);
        for cc in c.saturating_sub(1)..=c + 1 {
            if self.occupied_cells.contains(&cc) {
                // Cell-level hit: confirm with exact distances.
                let lo = f.saturating_sub(self.avoid_window);
                let hi = f + self.avoid_window;
                for g in lo..=hi {
                    if self.emitted.contains(&g) {
                        return true;
                    }
                }
                return false;
            }
        }
        false
    }

    fn mark(&mut self, f: FrameIdx) {
        let c = self.cell(f);
        self.emitted.insert(f);
        self.occupied_cells.insert(c);
    }
}

impl SamplingPolicy for ProxyOrderPolicy {
    fn next_frame(&mut self, _rng: &mut Rng64) -> Option<FrameIdx> {
        while self.pos < self.order.len() {
            let f = self.order[self.pos];
            self.pos += 1;
            if self.near_emitted(f) {
                self.deferred.push(f);
            } else {
                self.mark(f);
                return Some(f);
            }
        }
        // Main pass done: drain deferred frames in score order.
        if self.draining_deferred < self.deferred.len() {
            let f = self.deferred[self.draining_deferred];
            self.draining_deferred += 1;
            return Some(f);
        }
        None
    }
    fn feedback(&mut self, _frame: FrameIdx, _fb: Feedback) {}
    fn name(&self) -> String {
        format!("proxy-order(w={})", self.avoid_window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(policy: &mut dyn SamplingPolicy, seed: u64) -> Vec<u64> {
        let mut rng = Rng64::new(seed);
        let mut out = Vec::new();
        while let Some(f) = policy.next_frame(&mut rng) {
            out.push(f);
        }
        out
    }

    fn assert_permutation(mut xs: Vec<u64>, n: u64) {
        assert_eq!(xs.len() as u64, n);
        xs.sort_unstable();
        assert_eq!(xs, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn random_policy_is_permutation() {
        assert_permutation(drain(&mut RandomPolicy::new(500), 1), 500);
    }

    #[test]
    fn random_plus_policy_is_permutation() {
        assert_permutation(drain(&mut RandomPlusPolicy::new(313), 2), 313);
    }

    #[test]
    fn sequential_policy_visits_in_stride_order() {
        let mut p = SequentialPolicy::new(10, 3);
        let out = drain(&mut p, 3);
        assert_eq!(out, vec![0, 3, 6, 9, 1, 4, 7, 2, 5, 8]);
    }

    #[test]
    fn sequential_policy_stride_one() {
        let out = drain(&mut SequentialPolicy::new(5, 1), 4);
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn sequential_policy_stride_larger_than_frames() {
        assert_permutation(drain(&mut SequentialPolicy::new(4, 100), 5), 4);
    }

    #[test]
    fn proxy_policy_follows_score_order() {
        let order = vec![7, 3, 9, 1, 0, 2, 4, 5, 6, 8];
        let mut p = ProxyOrderPolicy::new(order.clone(), 0);
        assert_eq!(drain(&mut p, 6), order);
    }

    #[test]
    fn proxy_policy_avoids_neighbours_then_drains() {
        // Frames 10 and 11 are adjacent; with window 2 the second must be
        // deferred behind 50.
        let order = vec![10, 11, 50];
        let mut p = ProxyOrderPolicy::new(order, 2);
        assert_eq!(drain(&mut p, 7), vec![10, 50, 11]);
    }

    #[test]
    fn proxy_policy_window_edges() {
        let order = vec![100, 103, 104, 200];
        // window 3: 103 within 3 of 100 -> deferred; 104 within 3 of 100?
        // |104-100| = 4 > 3 -> emitted.
        let mut p = ProxyOrderPolicy::new(order, 3);
        assert_eq!(drain(&mut p, 8), vec![100, 104, 200, 103]);
    }

    #[test]
    fn proxy_policy_remains_complete_permutation() {
        let order: Vec<u64> = (0..200).rev().collect();
        let mut p = ProxyOrderPolicy::new(order, 5);
        assert_permutation(drain(&mut p, 9), 200);
    }

    #[test]
    #[should_panic(expected = "duplicate frame")]
    fn proxy_policy_rejects_duplicate_order() {
        ProxyOrderPolicy::new(vec![1, 2, 1], 0);
    }

    #[test]
    fn names() {
        assert_eq!(RandomPolicy::new(1).name(), "random");
        assert_eq!(RandomPlusPolicy::new(1).name(), "random+");
        assert_eq!(SequentialPolicy::new(1, 30).name(), "sequential(stride=30)");
        assert_eq!(ProxyOrderPolicy::new(vec![], 9).name(), "proxy-order(w=9)");
    }

    #[test]
    fn random_policies_ignore_feedback() {
        let mut p = RandomPolicy::new(10);
        let mut rng = Rng64::new(11);
        let a = p.next_frame(&mut rng).unwrap();
        p.feedback(a, Feedback::new(5, 2));
        // No panic, no state change observable beyond the draw stream.
        assert!(p.next_frame(&mut rng).is_some());
    }
}
