//! Microbenchmarks of the hot paths: belief sampling, chunk selection,
//! within-chunk ordering, interval stabbing, storage reads, the optimal
//! solver, and the tracker.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use exsample_core::belief::{BeliefPrior, ChunkStats};
use exsample_core::exsample::{ExSample, ExSampleConfig};
use exsample_core::policy::SamplingPolicy;
use exsample_core::within::StratifiedWithin;
use exsample_core::Chunking;
use exsample_detect::{Detector, Discriminator, OracleDiscriminator, SimulatedDetector};
use exsample_optimal::{optimal_weights, ChunkProbs, SolveOpts};
use exsample_stats::dist::{Continuous, Gamma};
use exsample_stats::{Rng64, UniformNoReplacement};
use exsample_store::{Container, ContainerWriter};
use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, IntervalIndex, SkewSpec};
use std::sync::Arc;

fn bench_gamma_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("gamma_sample");
    let mut rng = Rng64::new(1);
    for shape in [0.1f64, 1.0, 5.0] {
        let d = Gamma::new(shape, 1.0);
        g.bench_with_input(BenchmarkId::from_parameter(shape), &d, |b, d| {
            b.iter(|| black_box(d.sample(&mut rng)))
        });
    }
    g.finish();
}

fn bench_thompson_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("exsample_next_frame");
    for m in [64usize, 1024] {
        let mut policy = ExSample::new(Chunking::even(16_000_000, m), ExSampleConfig::default());
        let mut rng = Rng64::new(2);
        g.bench_with_input(BenchmarkId::new("chunks", m), &m, |b, _| {
            b.iter(|| {
                let f = policy.next_frame(&mut rng).expect("frames remain");
                policy.feedback(f, exsample_core::Feedback::NONE);
                black_box(f)
            })
        });
    }
    g.finish();
}

fn bench_belief_draw(c: &mut Criterion) {
    let prior = BeliefPrior::default();
    let stats = ChunkStats { n1: 7.0, n: 421 };
    let mut rng = Rng64::new(3);
    c.bench_function("belief/thompson_draw", |b| {
        b.iter(|| black_box(prior.thompson_draw(&stats, &mut rng)))
    });
    c.bench_function("belief/bayes_ucb", |b| {
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(prior.bayes_ucb(&stats, t))
        })
    });
}

fn bench_within_samplers(c: &mut Criterion) {
    c.bench_function("within/stratified_draw", |b| {
        let mut rng = Rng64::new(4);
        let mut s = StratifiedWithin::new(0..1u64 << 40);
        b.iter(|| black_box(s.draw(&mut rng)))
    });
    c.bench_function("within/sparse_fisher_yates", |b| {
        let mut rng = Rng64::new(5);
        let mut s = UniformNoReplacement::new(1u64 << 40);
        b.iter(|| black_box(s.next(&mut rng)))
    });
}

fn bench_interval_stab(c: &mut Criterion) {
    let gt = DatasetSpec::single_class(
        1_000_000,
        ClassSpec::new("car", 5_000, 300.0, SkewSpec::Uniform),
    )
    .generate(6);
    let idx = IntervalIndex::build(
        1_000_000,
        gt.instances().iter().map(|i| (i.id.0, i.start, i.end())),
    );
    let mut rng = Rng64::new(7);
    c.bench_function("interval_index/stab", |b| {
        b.iter(|| {
            let f = rng.u64_below(1_000_000);
            let mut n = 0u32;
            idx.stab(f, |_| n += 1);
            black_box(n)
        })
    });
}

fn bench_container_reads(c: &mut Criterion) {
    let mut w = ContainerWriter::new(20);
    for i in 0..20_000u64 {
        w.push_frame(&i.to_le_bytes());
    }
    let bytes = w.finish();
    let mut g = c.benchmark_group("container");
    g.bench_function("random_read", |b| {
        let mut container = Container::open(bytes.clone()).unwrap();
        let mut rng = Rng64::new(8);
        b.iter(|| {
            let f = rng.u64_below(20_000);
            black_box(container.read_frame(f).unwrap())
        })
    });
    g.bench_function("sequential_read", |b| {
        let mut container = Container::open(bytes.clone()).unwrap();
        let mut f = 0u64;
        b.iter(|| {
            let r = container.read_frame(f).unwrap();
            f = (f + 1) % 20_000;
            black_box(r)
        })
    });
    g.finish();
}

fn bench_detector_and_tracker(c: &mut Criterion) {
    let gt = Arc::new(
        DatasetSpec::single_class(
            200_000,
            ClassSpec::new("car", 500, 300.0, SkewSpec::Uniform),
        )
        .generate(9),
    );
    c.bench_function("detector/simulated_detect", |b| {
        let mut det = SimulatedDetector::perfect(gt.clone(), ClassId(0));
        let mut rng = Rng64::new(10);
        b.iter(|| {
            let f = rng.u64_below(200_000);
            black_box(det.detect(f))
        })
    });
    c.bench_function("discrim/oracle_observe", |b| {
        let mut det = SimulatedDetector::perfect(gt.clone(), ClassId(0));
        let mut disc = OracleDiscriminator::new();
        let mut rng = Rng64::new(11);
        b.iter(|| {
            let f = rng.u64_below(200_000);
            let dets = det.detect(f);
            black_box(disc.observe(f, &dets))
        })
    });
}

fn bench_optimal_solver(c: &mut Criterion) {
    let gt = DatasetSpec::single_class(
        1_000_000,
        ClassSpec::new(
            "car",
            2_000,
            700.0,
            SkewSpec::CentralNormal { frac95: 1.0 / 32.0 },
        ),
    )
    .generate(12);
    let probs = ChunkProbs::build(&gt, ClassId(0), &Chunking::even(1_000_000, 128));
    c.bench_function("optimal/solve_eq_iv1", |b| {
        b.iter(|| black_box(optimal_weights(&probs, 10_000, SolveOpts::default())))
    });
}

criterion_group!(
    benches,
    bench_gamma_sampling,
    bench_thompson_step,
    bench_belief_draw,
    bench_within_samplers,
    bench_interval_stab,
    bench_container_reads,
    bench_detector_and_tracker,
    bench_optimal_solver,
);
criterion_main!(benches);
