//! One Criterion bench per paper table/figure, at reduced scale (the
//! full-scale regenerators are the `--bin` targets of this crate). These
//! track the end-to-end cost of each experiment pipeline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use exsample_experiments::{ablate, coverage, fig2, fig3, fig4, fig5, table1};
use exsample_videosim::SkewSpec;
use std::sync::Arc;

fn bench_fig2(c: &mut Criterion) {
    let cfg = fig2::Fig2Config {
        instances: 300,
        runs: 100,
        checkpoints: vec![100, 5_000],
        n1_tolerance: 3,
        seed: 1,
    };
    c.bench_function("paper/fig2_estimator_validation", |b| {
        b.iter(|| black_box(fig2::run(&cfg)))
    });
}

fn bench_fig3(c: &mut Criterion) {
    let cfg = fig3::Fig3Config {
        frames: 100_000,
        instances: 200,
        chunks: 16,
        runs: 3,
        max_samples: 5_000,
        targets: vec![10, 100],
        durations: vec![40.0],
        skews: vec![(
            "1/32".into(),
            SkewSpec::CentralNormal { frac95: 1.0 / 32.0 },
        )],
        seed: 2,
    };
    c.bench_function("paper/fig3_grid_cell", |b| {
        b.iter(|| black_box(fig3::run_cell(&cfg, 0, 0)))
    });
}

fn bench_fig4(c: &mut Criterion) {
    let cfg = fig4::Fig4Config {
        frames: 100_000,
        instances: 200,
        mean_duration: 40.0,
        skew: SkewSpec::CentralNormal { frac95: 1.0 / 32.0 },
        chunk_counts: vec![4, 16],
        runs: 3,
        max_samples: 5_000,
        seed: 3,
    };
    c.bench_function("paper/fig4_chunk_sweep", |b| {
        b.iter(|| black_box(fig4::run(&cfg)))
    });
}

fn bench_table1(c: &mut Criterion) {
    let ds = exsample_experiments::presets::dataset("BDD MOT").unwrap();
    let gt = Arc::new(ds.dataset_spec().generate(4));
    let ci = ds.class_index("car").unwrap();
    let cfg = table1::EvalConfig {
        runs: 2,
        max_samples: 20_000,
        seed: 5,
    };
    c.bench_function("paper/table1_single_query", |b| {
        b.iter(|| black_box(table1::evaluate_query(&gt, &ds, ci, &cfg)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    // Panel construction / summary over synthetic evals (the measurement
    // itself is the table1 bench).
    let evals: Vec<table1::QueryEval> = (0..43)
        .map(|i| table1::QueryEval {
            dataset: format!("d{}", i % 6),
            class: format!("c{i}"),
            count: 100,
            proxy_scan_s: 1000.0,
            targets: [10, 50, 90],
            exsample_s: [Some(10.0 + i as f64), Some(50.0), Some(90.0)],
            random_s: [Some(20.0 + i as f64), Some(80.0), Some(120.0)],
        })
        .collect();
    c.bench_function("paper/fig5_panels_and_summary", |b| {
        b.iter(|| {
            let p = fig5::panels(&evals);
            black_box(fig5::summary(&p))
        })
    });
}

fn bench_fig6(c: &mut Criterion) {
    use exsample_core::Chunking;
    use exsample_optimal::{chunk_instance_counts, skew_metric};
    use exsample_videosim::{ClassId, ClassSpec, DatasetSpec};
    let gt = DatasetSpec::single_class(
        1_000_000,
        ClassSpec::new(
            "bicycle",
            2_000,
            300.0,
            SkewSpec::HotSpots {
                spots: 2,
                mass: 0.85,
                width_frac: 0.01,
            },
        ),
    )
    .generate(6);
    let chunking = Chunking::even(1_000_000, 60);
    c.bench_function("paper/fig6_skew_metric", |b| {
        b.iter(|| {
            let counts = chunk_instance_counts(&gt, ClassId(0), &chunking);
            black_box(skew_metric(&counts))
        })
    });
}

fn bench_coverage(c: &mut Criterion) {
    use exsample_videosim::{ClassId, ClassSpec, DatasetSpec};
    let gt = DatasetSpec::single_class(
        100_000,
        ClassSpec::new("car", 300, 120.0, SkewSpec::Uniform),
    )
    .generate(7);
    let cfg = coverage::CoverageConfig {
        runs: 3,
        samples: 4_000,
        checkpoints: 6,
        seed: 8,
    };
    c.bench_function("paper/coverage_check", |b| {
        b.iter(|| black_box(coverage::class_coverage(&gt, ClassId(0), &cfg)))
    });
}

fn bench_ablation(c: &mut Criterion) {
    use exsample_core::exsample::ExSampleConfig;
    let w = ablate::AblationWorkload {
        gt: Arc::new(
            exsample_videosim::DatasetSpec::single_class(
                100_000,
                exsample_videosim::ClassSpec::new(
                    "object",
                    200,
                    40.0,
                    SkewSpec::CentralNormal { frac95: 1.0 / 16.0 },
                ),
            )
            .generate(9),
        ),
        chunking: exsample_core::Chunking::even(100_000, 16),
        target: 100,
        runs: 3,
        max_samples: 10_000,
        seed: 10,
    };
    c.bench_function("paper/ablation_measure", |b| {
        b.iter(|| black_box(w.measure(ExSampleConfig::default())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2, bench_fig3, bench_fig4, bench_table1, bench_fig5,
              bench_fig6, bench_coverage, bench_ablation
}
criterion_main!(benches);
