//! Design ablations (DESIGN.md): prior pseudo-counts, chunk selector,
//! within-chunk order, and batched Thompson sampling.

use exsample_bench::results_dir;
use exsample_experiments::{ablate, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("ablate: shared skewed workload ({scale:?}) …");
    let t0 = std::time::Instant::now();
    let w = ablate::AblationWorkload::at_scale(scale);

    println!("\n# Ablation: prior pseudo-counts (α0, β0)\n");
    let prior = ablate::prior_table(&w);
    println!("{}", prior.to_markdown());
    prior
        .write_csv(results_dir().join("ablate_prior.csv"))
        .expect("write CSV");

    println!("\n# Ablation: chunk selector\n");
    let sel = ablate::selector_table(&w);
    println!("{}", sel.to_markdown());
    sel.write_csv(results_dir().join("ablate_selector.csv"))
        .expect("write CSV");

    println!("\n# Ablation: within-chunk order\n");
    let within = ablate::within_table(&w);
    println!("{}", within.to_markdown());
    within
        .write_csv(results_dir().join("ablate_within.csv"))
        .expect("write CSV");

    println!("\n# Ablation: batched Thompson sampling\n");
    let batch = ablate::batch_table(&w);
    println!("{}", batch.to_markdown());
    batch
        .write_csv(results_dir().join("ablate_batch.csv"))
        .expect("write CSV");

    println!("\n# Ablation: §VII fusion (scored within-chunk order)\n");
    let fusion = ablate::fusion_table(&w, 0.9);
    println!("{}", fusion.to_markdown());
    fusion
        .write_csv(results_dir().join("ablate_fusion.csv"))
        .expect("write CSV");

    println!(
        "Reading: performance is insensitive to the prior and to Thompson\n\
         vs Bayes-UCB (paper §III-C); greedy can stall on early luck;\n\
         random+ inside chunks helps modestly; batching trades a small\n\
         sample efficiency loss for GPU throughput; fusing proxy scores\n\
         into the within-chunk order cuts samples further but re-imports\n\
         the scoring scan the paper's future work wants to avoid."
    );
    eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
}
