//! Quantifies §III-F batched detector dispatch: the same exhaustive
//! workload through the engine with one dispatch per cache miss
//! (per-frame, the status quo) and with one dispatch per batch of misses,
//! under a modelled per-dispatch overhead
//! (`exsample_store::CostModel::dispatch_s`). Both strategies find the
//! complete, identical result set; batching pays strictly fewer modelled
//! dispatch-seconds.

use exsample_bench::results_dir;
use exsample_experiments::{engine_cmp, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let mut cfg = engine_cmp::EngineCmpConfig::default_workload();
    if scale == Scale::Quick {
        cfg.frames = 10_000;
        cfg.instances = 30;
        cfg.queries = 3;
    } else {
        cfg.frames = 50_000;
    }
    let (dispatch_overhead_s, batch) = (0.02, 16);
    eprintln!(
        "batch_cmp: {} exhaustive queries over {} frames, dispatch overhead {dispatch_overhead_s}s, B={batch} ({scale:?}) …",
        cfg.queries, cfg.frames
    );
    let t0 = std::time::Instant::now();
    let report = engine_cmp::run_batched_cmp(&cfg, 20.0, dispatch_overhead_s, batch);
    println!("\n# Batched vs. per-frame detector dispatch (§III-F)\n");
    println!("{}", engine_cmp::to_batch_table(&report).to_markdown());
    println!(
        "batching avoided {:.0}% of dispatch overhead ({} → {} dispatches, {:.1}s → {:.1}s) for an identical result set",
        report.dispatch_savings() * 100.0,
        report.per_frame.dispatches,
        report.batched.dispatches,
        report.per_frame.dispatch_s,
        report.batched.dispatch_s,
    );
    let out = results_dir().join("batch_cmp.csv");
    engine_cmp::to_batch_table(&report)
        .write_csv(&out)
        .expect("write CSV");
    eprintln!(
        "wrote {} ({:.1}s)",
        out.display(),
        t0.elapsed().as_secs_f64()
    );
}
