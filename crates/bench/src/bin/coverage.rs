//! Regenerates the §III-D check: how often the 95% interval implied by the
//! variance bound (Eq. III.3) contains the true expected reward on the
//! BDD-MOT preset (paper: ≈80%, slight underestimate).

use exsample_bench::results_dir;
use exsample_experiments::{coverage, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("coverage: BDD-MOT variance-bound check ({scale:?}) …");
    let t0 = std::time::Instant::now();
    let rows = coverage::run(scale);
    println!("\n# §III-D — Eq. III.3 confidence-interval coverage on BDD MOT\n");
    println!("{}", coverage::to_table(&rows).to_markdown());
    println!(
        "mean coverage across classes: {:.0}%   (paper: ≈80%, variance\n\
         slightly underestimated — misses mostly above the bound)",
        coverage::mean_coverage(&rows) * 100.0
    );
    let out = results_dir().join("coverage.csv");
    coverage::to_table(&rows)
        .write_csv(&out)
        .expect("write CSV");
    eprintln!(
        "wrote {} ({:.1}s)",
        out.display(),
        t0.elapsed().as_secs_f64()
    );
}
