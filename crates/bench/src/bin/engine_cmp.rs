//! Quantifies what the multi-query engine's shared detection cache saves:
//! runs a batch of overlapping queries independently (one blocking search
//! each, private detectors) and again through `exsample_engine::Engine`,
//! then compares detector invocations and modelled GPU seconds.

use exsample_bench::results_dir;
use exsample_experiments::{engine_cmp, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let mut cfg = engine_cmp::EngineCmpConfig::default_workload();
    if scale == Scale::Quick {
        cfg.frames = 20_000;
        cfg.instances = 40;
        cfg.target = 30;
        cfg.queries = 4;
    }
    eprintln!(
        "engine_cmp: {} overlapping queries over {} frames ({scale:?}) …",
        cfg.queries, cfg.frames
    );
    let t0 = std::time::Instant::now();
    let report = engine_cmp::run(&cfg, 20.0);
    println!("\n# Engine-shared vs. independent execution\n");
    println!("{}", engine_cmp::to_table(&report).to_markdown());
    println!(
        "sharing avoided {:.0}% of detector invocations ({} → {}) at a {:.0}% cache hit rate",
        report.savings() * 100.0,
        report.independent.detector_invocations,
        report.engine.detector_invocations,
        report.cache_hit_rate * 100.0
    );
    let out = results_dir().join("engine_cmp.csv");
    engine_cmp::to_table(&report)
        .write_csv(&out)
        .expect("write CSV");
    eprintln!(
        "wrote {} ({:.1}s)",
        out.display(),
        t0.elapsed().as_secs_f64()
    );
}
