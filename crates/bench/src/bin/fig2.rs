//! Regenerates Figure 2: the Gamma belief vs the true distribution of
//! `R(n+1)` conditioned on observed `(n, N1)` pairs.

use exsample_bench::results_dir;
use exsample_experiments::{fig2, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let config = fig2::Fig2Config::at_scale(scale);
    eprintln!(
        "fig2: {} instances, {} runs, checkpoints {:?} ({scale:?})",
        config.instances, config.runs, config.checkpoints
    );
    let t0 = std::time::Instant::now();
    let cells = fig2::run(&config);
    let table = fig2::to_table(&cells);
    println!("\n# Figure 2 — estimates, real values and the Gamma belief\n");
    println!("{}", table.to_markdown());
    println!(
        "Reading: at mid-range n the belief mean tracks the actual mean and\n\
         the one-sided Gamma matches the histogram; at small n the belief is\n\
         deliberately wider (over-dispersed); at N1=0 the alpha0 prior keeps\n\
         Thompson sampling alive."
    );
    let out = results_dir().join("fig2.csv");
    table.write_csv(&out).expect("write CSV");
    eprintln!(
        "wrote {} ({:.1}s)",
        out.display(),
        t0.elapsed().as_secs_f64()
    );
}
