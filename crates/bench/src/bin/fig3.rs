//! Regenerates Figure 3: the 4×4 skew × duration simulation grid with
//! savings labels and optimal-allocation reference curves.

use exsample_bench::results_dir;
use exsample_experiments::{fig3, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let config = fig3::Fig3Config::at_scale(scale);
    eprintln!(
        "fig3: {} frames, {} instances, {} chunks, {} runs/cell, {} cells ({scale:?})",
        config.frames,
        config.instances,
        config.chunks,
        config.runs,
        config.durations.len() * config.skews.len()
    );
    let t0 = std::time::Instant::now();
    let mut cells = Vec::new();
    for dur_idx in 0..config.durations.len() {
        for skew_idx in 0..config.skews.len() {
            let cell = fig3::run_cell(&config, skew_idx, dur_idx);
            eprintln!(
                "  cell dur={} skew={} done ({:.1}s elapsed)",
                cell.duration,
                cell.skew,
                t0.elapsed().as_secs_f64()
            );
            cells.push(cell);
        }
    }
    println!("\n# Figure 3 — savings in samples (ExSample vs random)\n");
    println!("{}", fig3::savings_table(&cells).to_markdown());
    println!(
        "Reading: savings grow with instance skew (left→right) and with\n\
         duration (top→bottom); the no-skew column hovers around 1x, and\n\
         reaching the very first results is equally hard for both."
    );
    let curves = fig3::curves_table(&cells);
    let out = results_dir().join("fig3_curves.csv");
    curves.write_csv(&out).expect("write CSV");
    let savings_out = results_dir().join("fig3_savings.csv");
    fig3::savings_table(&cells)
        .write_csv(&savings_out)
        .expect("write CSV");
    eprintln!(
        "wrote {} and {} ({:.1}s)",
        out.display(),
        savings_out.display(),
        t0.elapsed().as_secs_f64()
    );
}
