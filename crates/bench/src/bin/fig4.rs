//! Regenerates Figure 4: ExSample discovery curves for chunk counts
//! M ∈ {2, 16, 128, 1024} plus random, with optimal-allocation references.

use exsample_bench::results_dir;
use exsample_experiments::{fig4, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let config = fig4::Fig4Config::at_scale(scale);
    eprintln!(
        "fig4: {} frames, M sweep {:?}, {} runs ({scale:?})",
        config.frames, config.chunk_counts, config.runs
    );
    let t0 = std::time::Instant::now();
    let series = fig4::run(&config);
    println!("\n# Figure 4 — varying the number of chunks\n");
    println!("{}", fig4::summary_table(&series).to_markdown());
    println!(
        "Reading: all chunked variants beat random; small M tracks its\n\
         (weaker) optimum tightly, large M has a steeper optimum but pays a\n\
         learning cost, so the benefit is non-monotonic in M."
    );
    let out = results_dir().join("fig4_curves.csv");
    fig4::curves_table(&series)
        .write_csv(&out)
        .expect("write CSV");
    eprintln!(
        "wrote {} ({:.1}s)",
        out.display(),
        t0.elapsed().as_secs_f64()
    );
}
