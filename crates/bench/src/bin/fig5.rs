//! Regenerates Figure 5: per-query time-savings ratios (ExSample vs
//! random) at recall .1 / .5 / .9, and the headline summary statistics.

use exsample_bench::results_dir;
use exsample_experiments::{fig5, table1, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("fig5: evaluating all queries ({scale:?}) …");
    let t0 = std::time::Instant::now();
    let evals = table1::evaluate_all(scale);
    let panels = fig5::panels(&evals);
    println!("\n# Figure 5 — time savings ratio ExSample vs random\n");
    for panel in &panels {
        println!("## recall {}\n", panel.recall);
        println!("{}", fig5::panel_table(panel).to_markdown());
    }
    if let Some(s) = fig5::summary(&panels) {
        println!(
            "summary over {} bars: geometric mean {:.2}x | min {:.2}x | p10 {:.2}x | p90 {:.2}x | max {:.2}x",
            s.bars, s.geo_mean, s.min, s.p10, s.p90, s.max
        );
        println!("(paper: geometric mean 1.9x, max ≈6x, min ≈0.75x, p90 3.7x, p10 1.2x)");
    }
    for panel in &panels {
        let out = results_dir().join(format!("fig5_recall{}.csv", panel.recall));
        fig5::panel_table(panel).write_csv(&out).expect("write CSV");
    }
    eprintln!("done in {:.1}s", t0.elapsed().as_secs_f64());
}
