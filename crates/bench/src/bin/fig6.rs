//! Regenerates Figure 6: per-chunk instance histograms and the skew
//! metric `S` for the representative queries.

use exsample_bench::results_dir;
use exsample_experiments::fig6;

fn main() {
    let t0 = std::time::Instant::now();
    let rows = fig6::run(1000); // matches table1's generation seeds
    println!("\n# Figure 6 — instance skew for representative queries\n");
    println!("{}", fig6::to_table(&rows).to_markdown());
    println!(
        "Reading: dashcam/bicycle shows extreme chunk concentration (high\n\
         S, high savings); archie/car and amsterdam/boat are near-uniform\n\
         (S≈1, savings ≈1x or slightly below)."
    );
    let out = results_dir().join("fig6_histograms.csv");
    fig6::histogram_table(&rows)
        .write_csv(&out)
        .expect("write CSV");
    let sum_out = results_dir().join("fig6_summary.csv");
    fig6::to_table(&rows)
        .write_csv(&sum_out)
        .expect("write CSV");
    eprintln!(
        "wrote {} and {} ({:.1}s)",
        out.display(),
        sum_out.display(),
        t0.elapsed().as_secs_f64()
    );
}
