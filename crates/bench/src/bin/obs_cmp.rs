//! Measures the cost of the observability layer: the identical batched
//! multi-query workload on an engine with instrumentation on vs. off,
//! interleaved replicates, min-of-K wall time per arm. Gates on the
//! instrumentation overhead staying under 3% and writes
//! `BENCH_obs.json` at the repo root with the submit/poll/dispatch
//! latency quantiles the instrumented arm observed.

use exsample_experiments::{obs_cmp, Scale};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let mut cfg = obs_cmp::ObsCmpConfig::default_workload();
    if scale == Scale::Quick {
        cfg.frames = 10_000;
        cfg.instances = 40;
        cfg.samples_per_query = 400;
        cfg.replicates = 2;
    }
    eprintln!(
        "obs_cmp: {} queries × {} samples over {} frames, {} interleaved replicate pairs ({scale:?}) …",
        cfg.queries, cfg.samples_per_query, cfg.frames, cfg.replicates
    );
    let t0 = std::time::Instant::now();
    let report = obs_cmp::run(&cfg);

    println!("\n# Observability overhead: instrumented vs. uninstrumented engine\n");
    println!(
        "| arm | wall time (min of {}) |\n|---|---|\n\
         | uninstrumented | {:.1} ms |\n\
         | instrumented | {:.1} ms |",
        cfg.replicates,
        report.base_wall_s * 1e3,
        report.obs_wall_s * 1e3,
    );
    println!(
        "attributed overhead: {:+.2}% ({:.0} ns/unit cold-cache × {} units / {:.1} ms base wall) [gated]",
        report.overhead_frac() * 100.0,
        report.unit_cost_ns,
        report.units_per_run,
        report.base_wall_s * 1e3,
    );
    println!(
        "wall-clock A/B: {:+.2}% (median of {} ABBA blocks; noise-floor-limited, informational)",
        report.wall_overhead_frac() * 100.0,
        report.pair_ratios.len(),
    );
    println!(
        "block ratios: [{}]",
        report
            .pair_ratios
            .iter()
            .map(|r| format!("{:+.2}%", (r - 1.0) * 100.0))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "dispatch_ns: count {} p50 {} p99 {} | submit_ns: p50 {} p99 {} | poll_ns: p50 {} p99 {} | flight events {}",
        report.dispatch.total(),
        report.dispatch.quantile(0.5),
        report.dispatch.quantile(0.99),
        report.submit.quantile(0.5),
        report.submit.quantile(0.99),
        report.poll.quantile(0.5),
        report.poll.quantile(0.99),
        report.flight_events,
    );

    assert!(report.dispatch.total() > 0, "dispatches must be observed");
    assert!(report.flight_events > 0, "flight recorder must hold events");
    if scale == Scale::Full {
        assert!(
            report.overhead_ok(),
            "attributed instrumentation overhead must stay under 3%, measured {:+.2}%",
            report.overhead_frac() * 100.0
        );
    }

    let out = std::env::var("EXSAMPLE_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json"));
    std::fs::write(&out, obs_cmp::to_json(&report)).expect("write BENCH_obs.json");
    eprintln!(
        "wrote {} ({:.1}s)",
        out.display(),
        t0.elapsed().as_secs_f64()
    );
}
