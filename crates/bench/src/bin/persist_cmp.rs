//! Quantifies what the durable detection store saves a restarted engine:
//! runs an overlapping query fleet cold (empty persist directory), again
//! warm (fresh engine, same directory — must pay zero detector
//! invocations for the replay), and probes how much persisted belief
//! snapshots shorten an unseen query's exploration.

use exsample_bench::results_dir;
use exsample_experiments::{engine_cmp, persist_cmp, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let mut cfg = engine_cmp::EngineCmpConfig::default_workload();
    if scale == Scale::Quick {
        cfg.frames = 20_000;
        cfg.instances = 40;
        cfg.target = 30;
        cfg.queries = 4;
    }
    eprintln!(
        "persist_cmp: {} queries over {} frames, cold vs. warm restart ({scale:?}) …",
        cfg.queries, cfg.frames
    );
    let t0 = std::time::Instant::now();
    let report = persist_cmp::run(&cfg, 20.0);
    println!("\n# Cold vs. warm engine start (persisted detection store)\n");
    println!("{}", persist_cmp::to_table(&report).to_markdown());
    println!(
        "restart avoided {:.0}% of detector invocations ({} → {}); warm cache: {}",
        report.restart_savings() * 100.0,
        report.cold_invocations,
        report.replay_invocations,
        report.warm_cache
    );
    println!(
        "belief warm-start: probe query needed {} samples vs {} from the prior",
        report.probe_warm_samples, report.probe_cold_samples
    );
    let out = results_dir().join("persist_cmp.csv");
    persist_cmp::to_table(&report)
        .write_csv(&out)
        .expect("write CSV");
    eprintln!(
        "wrote {} ({:.1}s)",
        out.display(),
        t0.elapsed().as_secs_f64()
    );
}
