//! Load benchmark for the readiness-driven server (`exsample-serve`):
//! one reactor thread versus thousands of concurrent remote sessions.
//!
//! A single-threaded non-blocking client event loop (same `polling`
//! primitives as the server) opens one TCP connection per session,
//! submits a query on each, then polls every session to completion with
//! per-connection exponential backoff. Connections are held open and
//! sessions unforgotten until *every* session finishes, so the peak
//! concurrency — connections and resident sessions — is the full fleet
//! at once. Submit and poll round-trip latencies are recorded
//! per-request and reported as p50/p99.
//!
//! The reactor runs in a *child process* (`--server`, spawned
//! automatically): 10k connections are 10k fds on each side, and a
//! single process holding both ends would need ~20k — right at a
//! common `RLIMIT_NOFILE` hard cap. Splitting the endpoints gives each
//! process comfortable headroom and mirrors a real deployment, where
//! client and server never share an fd table. The parent reads the
//! bound address from the child's stdout and requests server counters
//! (accepted / shed / active / resident) over its stdin at the end,
//! while every connection is still open.
//!
//! `--smoke` runs a small fleet and gates on zero sheds, zero client
//! errors, and every session completing (CI); the default run drives
//! 10,000 sessions. Results land in `BENCH_serve.json` at the repo root
//! (override with `EXSAMPLE_BENCH_OUT`).

#![cfg(unix)]

use exsample_core::driver::StopCond;
use exsample_detect::NoiseModel;
use exsample_engine::{
    Diagnostics, Engine, EngineConfig, QuerySpec, RepoId, SearchService, SessionId, SessionStatus,
};
use exsample_proto::{decode_message, encode_message, Message, PROTO_VERSION};
use exsample_serve::framebuf::{FrameBuf, ReadOutcome};
use exsample_serve::{AdmissionConfig, Reactor, ServeConfig};
use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, SkewSpec};
use polling::{Event, Events, Poller, NOTIFY_KEY};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How many connections may sit between `connect()` and the server's
/// preamble at once. Must stay under the listener's accept backlog
/// (128 for `std::net::TcpListener`): an overflowing SYN is silently
/// dropped and retransmitted a full second later, which would dominate
/// every latency number here.
const CONNECT_WAVE: usize = 96;

/// Poll backoff while a session reports `Running` with no new events:
/// doubles from `BACKOFF_MIN` to `BACKOFF_MAX` per empty reply, resets
/// on progress. Keeps 10k idle-ish connections from busy-spinning the
/// engine off its cores while keeping time-to-notice-completion low.
const BACKOFF_MIN: Duration = Duration::from_millis(8);
const BACKOFF_MAX: Duration = Duration::from_millis(512);

struct Config {
    sessions: usize,
    smoke: bool,
    frames: u64,
    instances: usize,
    samples_per_session: u64,
    deadline: Duration,
}

impl Config {
    fn from_args(args: &[String]) -> Config {
        let smoke = args.iter().any(|a| a == "--smoke");
        let sessions = args
            .iter()
            .position(|a| a == "--sessions")
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(if smoke { 300 } else { 10_000 });
        Config {
            sessions,
            smoke,
            frames: 200_000,
            instances: 500,
            samples_per_session: 40,
            deadline: if smoke {
                Duration::from_secs(120)
            } else {
                Duration::from_secs(480)
            },
        }
    }
}

/// Client-side connection state machine: one session per connection,
/// one outstanding request at a time.
enum State {
    /// Preamble + Submit queued; waiting for the server's preamble.
    AwaitPreamble,
    /// Waiting for `Submitted`.
    AwaitSubmitted,
    /// Waiting for a `Snapshot`.
    AwaitSnapshot,
    /// Backing off before the next poll; due at the given instant.
    Parked { due: Instant },
    /// Session finished (or failed) — connection held open, silent.
    Done,
}

struct Conn {
    sock: TcpStream,
    buf: FrameBuf,
    state: State,
    session: SessionId,
    cursor: u64,
    backoff: Duration,
    /// Send stamp of the outstanding request, for round-trip latency.
    sent: Instant,
}

#[derive(Default)]
struct Tally {
    completed: usize,
    client_sheds: usize,
    errors: usize,
    submit_ns: Vec<u64>,
    poll_ns: Vec<u64>,
}

fn quantile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// Counters reported by the server child over its stdin/stdout channel.
struct ServerStats {
    accepted: u64,
    shed: u64,
    active: u64,
    resident: u64,
}

/// The reactor child process: spawned with `--server`, reports its
/// bound address on stdout, answers `STATS` lines on stdin.
struct ServerProc {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
    addr: SocketAddr,
    repo: RepoId,
}

impl ServerProc {
    fn spawn(cfg: &Config) -> ServerProc {
        let exe = std::env::current_exe().expect("current exe");
        let mut child = Command::new(exe)
            .args(["--server", "--sessions", &cfg.sessions.to_string()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn reactor server process");
        let stdin = child.stdin.take().expect("child stdin");
        let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("server address line");
        let rest = line
            .trim()
            .strip_prefix("ADDR ")
            .expect("ADDR line from server");
        let (addr, repo) = rest.split_once(" REPO ").expect("REPO on ADDR line");
        ServerProc {
            child,
            stdin,
            stdout,
            addr: addr.parse().expect("socket address"),
            repo: RepoId(repo.parse().expect("repo id")),
        }
    }

    fn stats(&mut self) -> ServerStats {
        writeln!(self.stdin, "STATS").expect("server stdin");
        self.stdin.flush().expect("server stdin flush");
        let mut line = String::new();
        self.stdout.read_line(&mut line).expect("server stats line");
        let mut s = ServerStats {
            accepted: 0,
            shed: 0,
            active: 0,
            resident: 0,
        };
        for tok in line.split_whitespace() {
            if let Some((k, v)) = tok.split_once('=') {
                let v: u64 = v.parse().expect("stats value");
                match k {
                    "accepted" => s.accepted = v,
                    "shed" => s.shed = v,
                    "active" => s.active = v,
                    "resident" => s.resident = v,
                    _ => {}
                }
            }
        }
        s
    }

    /// Fetch the server engine's full diagnostics (histograms included)
    /// over the control pipe: the child answers `DIAG` with one
    /// hex-encoded `DiagnosticsReply` wire message, so the server-side
    /// latency quantiles land in the report without another socket.
    fn diagnostics(&mut self) -> Diagnostics {
        writeln!(self.stdin, "DIAG").expect("server stdin");
        self.stdin.flush().expect("server stdin flush");
        let mut line = String::new();
        self.stdout.read_line(&mut line).expect("server diag line");
        let hex = line
            .trim()
            .strip_prefix("DIAG ")
            .expect("DIAG line from server");
        let bytes = hex_decode(hex).expect("hex diagnostics payload");
        match decode_message(&bytes).expect("decode diagnostics") {
            Message::DiagnosticsReply(diag) => diag,
            other => panic!("expected DiagnosticsReply, got {other:?}"),
        }
    }

    fn shutdown(self) {
        // Closing stdin is the shutdown signal; the child exits on EOF.
        drop(self.stdin);
        let mut child = self.child;
        let _ = child.wait();
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn hex_decode(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).ok())
        .collect()
}

/// `--server` mode: build the engine + reactor, print the bound
/// address, then serve until the parent closes our stdin.
fn run_server(cfg: &Config) -> ! {
    let _ = polling::raise_nofile_limit(cfg.sessions as u64 + 1024);
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: 2,
        quantum: 8,
        ..EngineConfig::default()
    }));
    let truth = Arc::new(
        DatasetSpec::single_class(
            cfg.frames,
            ClassSpec::new(
                "car",
                cfg.instances,
                200.0,
                SkewSpec::CentralNormal { frac95: 0.2 },
            ),
        )
        .generate(17),
    );
    let repo = engine.register_repo("bench-cam", truth, NoiseModel::none(), 5);

    let headroom = 2 * cfg.sessions + 64;
    let mut reactor = Reactor::new(
        engine.clone(),
        ServeConfig {
            admission: AdmissionConfig {
                max_connections: headroom,
                max_connections_per_tenant: headroom,
                max_sessions_per_tenant: headroom as u64,
                max_queue_depth: headroom,
                ..AdmissionConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("poller");
    let addr = reactor.listen_tcp("127.0.0.1:0").expect("bind");
    let handle = reactor.spawn().expect("spawn reactor");

    println!("ADDR {addr} REPO {}", repo.0);
    std::io::stdout().flush().expect("stdout");

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        match line.trim() {
            "STATS" => {
                let s = handle.stats();
                let resident = engine.stats().map(|e| e.live_sessions).unwrap_or_default();
                println!(
                    "STATS accepted={} shed={} active={} resident={resident}",
                    s.accepted, s.shed, s.connections_active
                );
                // lint: allow(lock_blocking, single-threaded control loop; stdin lock is held for the process lifetime by design)
                std::io::stdout().flush().expect("stdout");
            }
            "DIAG" => {
                let mut payload = Vec::new();
                encode_message(
                    &Message::DiagnosticsReply(engine.diagnostics()),
                    &mut payload,
                );
                println!("DIAG {}", hex_encode(&payload));
                // lint: allow(lock_blocking, single-threaded control loop; stdin lock is held for the process lifetime by design)
                std::io::stdout().flush().expect("stdout");
            }
            "EXIT" => break,
            _ => {}
        }
    }
    std::process::exit(0);
}

fn spec(repo: RepoId, budget: u64, seed: u64) -> QuerySpec {
    QuerySpec::new(repo, ClassId(0), StopCond::samples(budget))
        .chunks(8)
        .seed(seed)
}

fn open_conn(addr: SocketAddr, repo: RepoId, cfg: &Config, seed: u64) -> std::io::Result<Conn> {
    let sock = TcpStream::connect(addr)?;
    sock.set_nodelay(true)?;
    sock.set_nonblocking(true)?;
    let mut buf = FrameBuf::new();
    buf.queue_preamble(PROTO_VERSION);
    buf.queue(&Message::Submit {
        spec: spec(repo, cfg.samples_per_session, seed),
        ctx: None,
    })
    .expect("spec frames");
    Ok(Conn {
        sock,
        buf,
        state: State::AwaitPreamble,
        session: SessionId(0),
        cursor: 0,
        backoff: BACKOFF_MIN,
        sent: Instant::now(),
    })
}

fn interest(conn: &Conn, key: usize) -> Event {
    let readable = !matches!(conn.state, State::Done | State::Parked { .. });
    match (readable, conn.buf.has_pending_out()) {
        (true, true) => Event::all(key),
        (true, false) => Event::readable(key),
        (false, true) => Event::writable(key),
        (false, false) => Event::none(key),
    }
}

/// Flush, read, and decode one connection as far as the socket allows.
/// Returns false when the connection failed and should be abandoned.
fn drive(conn: &mut Conn, tally: &mut Tally) -> bool {
    if conn.buf.write_to(&mut conn.sock).is_err() {
        tally.errors += 1;
        return false;
    }
    match conn.buf.read_from(&mut conn.sock) {
        Ok(ReadOutcome::Open) => {}
        Ok(ReadOutcome::Eof) | Err(_) => {
            if !matches!(conn.state, State::Done) {
                tally.errors += 1;
                return false;
            }
            return true;
        }
    }
    loop {
        if matches!(conn.state, State::AwaitPreamble) {
            match conn.buf.take_preamble() {
                Ok(Some(v)) if v == PROTO_VERSION => conn.state = State::AwaitSubmitted,
                Ok(Some(_)) | Err(_) => {
                    tally.errors += 1;
                    return false;
                }
                Ok(None) => return true,
            }
        }
        let msg = match conn.buf.next_frame() {
            Ok(Some(m)) => m,
            Ok(None) => break,
            Err(_) => {
                tally.errors += 1;
                return false;
            }
        };
        let rtt = conn.sent.elapsed().as_nanos() as u64;
        match msg {
            Message::Submitted(id) => {
                tally.submit_ns.push(rtt);
                conn.session = id;
                conn.sent = Instant::now();
                conn.buf
                    .queue(&Message::Poll {
                        session: id,
                        cursor: 0,
                        window: None,
                        ctx: None,
                    })
                    .expect("poll frames");
                conn.state = State::AwaitSnapshot;
            }
            Message::Snapshot(snap) => {
                tally.poll_ns.push(rtt);
                conn.cursor = snap.next_cursor;
                if snap.status != SessionStatus::Running && snap.events.is_empty() {
                    conn.state = State::Done;
                    tally.completed += 1;
                } else if snap.events.is_empty() {
                    // No progress: back off before asking again.
                    conn.state = State::Parked {
                        due: Instant::now() + conn.backoff,
                    };
                    conn.backoff = (conn.backoff * 2).min(BACKOFF_MAX);
                } else {
                    conn.backoff = BACKOFF_MIN;
                    conn.sent = Instant::now();
                    conn.buf
                        .queue(&Message::Poll {
                            session: conn.session,
                            cursor: conn.cursor,
                            window: None,
                            ctx: None,
                        })
                        .expect("poll frames");
                }
            }
            Message::Error(exsample_proto::WireError::Overloaded { .. }) => {
                tally.client_sheds += 1;
                conn.state = State::Done;
            }
            _ => {
                tally.errors += 1;
                return false;
            }
        }
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = Config::from_args(&args);
    if args.iter().any(|a| a == "--server") {
        run_server(&cfg);
    }
    let limit =
        polling::raise_nofile_limit(cfg.sessions as u64 + 1024).expect("raise RLIMIT_NOFILE");
    eprintln!(
        "serve_bench: {} sessions × {} samples over {} frames (client fd limit {limit}{}) …",
        cfg.sessions,
        cfg.samples_per_session,
        cfg.frames,
        if cfg.smoke { ", smoke" } else { "" },
    );

    let mut server = ServerProc::spawn(&cfg);
    let (addr, repo) = (server.addr, server.repo);

    let poller = Poller::new().expect("client poller");
    let mut events = Events::with_capacity(4096);
    let mut conns: HashMap<usize, Conn> = HashMap::with_capacity(cfg.sessions);
    let mut finished: Vec<Conn> = Vec::with_capacity(cfg.sessions);
    let mut tally = Tally::default();
    let mut opened = 0usize;
    let mut peak_connections = 0u64;
    let t0 = Instant::now();

    while tally.completed + tally.client_sheds + tally.errors < cfg.sessions {
        if t0.elapsed() > cfg.deadline {
            eprintln!(
                "serve_bench: DEADLINE after {:?}: {} of {} sessions finished",
                cfg.deadline, tally.completed, cfg.sessions
            );
            std::process::exit(1);
        }

        // Top up the fleet, one wave at a time.
        let in_handshake = conns
            .values()
            .filter(|c| matches!(c.state, State::AwaitPreamble))
            .count();
        let mut wave = CONNECT_WAVE.saturating_sub(in_handshake);
        while opened < cfg.sessions && wave > 0 {
            let key = opened;
            let mut conn = open_conn(addr, repo, &cfg, key as u64).expect("connect to reactor");
            if !drive(&mut conn, &mut tally) {
                opened += 1;
                wave -= 1;
                continue;
            }
            poller.add(&conn.sock, interest(&conn, key)).expect("add");
            conns.insert(key, conn);
            opened += 1;
            wave -= 1;
        }

        // Wake parked connections whose backoff elapsed.
        let now = Instant::now();
        let mut next_due: Option<Instant> = None;
        let mut due_keys = Vec::new();
        for (&key, conn) in &conns {
            if let State::Parked { due } = conn.state {
                if due <= now {
                    due_keys.push(key);
                } else {
                    next_due = Some(next_due.map_or(due, |d: Instant| d.min(due)));
                }
            }
        }
        for key in due_keys {
            let conn = conns.get_mut(&key).expect("parked conn");
            conn.sent = Instant::now();
            conn.buf
                .queue(&Message::Poll {
                    session: conn.session,
                    cursor: conn.cursor,
                    window: None,
                    ctx: None,
                })
                .expect("poll frames");
            conn.state = State::AwaitSnapshot;
            let alive = drive(conn, &mut tally);
            let conn = conns.remove(&key).expect("parked conn");
            settle(&poller, key, conn, alive, &mut conns, &mut finished);
        }

        let timeout = match next_due {
            Some(due) => due
                .saturating_duration_since(Instant::now())
                .min(Duration::from_millis(100)),
            None => Duration::from_millis(100),
        };
        events.clear();
        let _ = poller.wait(&mut events, Some(timeout));
        for ev in events.iter() {
            if ev.key == NOTIFY_KEY {
                continue;
            }
            let Some(mut conn) = conns.remove(&ev.key) else {
                continue;
            };
            let alive = drive(&mut conn, &mut tally);
            settle(&poller, ev.key, conn, alive, &mut conns, &mut finished);
        }
        peak_connections = peak_connections.max((conns.len() + finished.len()) as u64);
    }
    let wall = t0.elapsed();

    // Every connection is still open and every finished session still
    // resident: the whole fleet was concurrent at the end. The server's
    // own gauge, read now, is the authoritative count.
    let stats = server.stats();
    let diag = server.diagnostics();
    let resident = stats.resident;
    peak_connections = peak_connections.max(stats.active);
    drop(finished);
    drop(conns);

    // Server-side view of the same load: accept batches and full
    // request turns, as measured inside the reactor.
    let server_quantiles = |name: &str| {
        diag.histogram(name)
            .map_or((0, 0), |h| (h.quantile(0.50), h.quantile(0.99)))
    };
    let (accept50, accept99) = server_quantiles("accept_ns");
    let (turn50, turn99) = server_quantiles("turn_ns");

    tally.submit_ns.sort_unstable();
    tally.poll_ns.sort_unstable();
    let (sub50, sub99) = (
        quantile(&tally.submit_ns, 0.50),
        quantile(&tally.submit_ns, 0.99),
    );
    let (poll50, poll99) = (
        quantile(&tally.poll_ns, 0.50),
        quantile(&tally.poll_ns, 0.99),
    );

    println!(
        "\n# serve_bench: {} concurrent remote sessions over one reactor thread\n",
        cfg.sessions
    );
    println!("| metric | value |\n|---|---|");
    println!(
        "| sessions completed | {} / {} |",
        tally.completed, cfg.sessions
    );
    println!("| wall time | {:.2} s |", wall.as_secs_f64());
    println!("| peak connections (server gauge) | {peak_connections} |");
    println!("| resident sessions at finish | {resident} |");
    println!("| server sheds | {} |", stats.shed);
    println!("| client errors | {} |", tally.errors);
    println!(
        "| submit RTT p50 / p99 | {:.2} ms / {:.2} ms |",
        sub50 as f64 / 1e6,
        sub99 as f64 / 1e6
    );
    println!(
        "| poll RTT p50 / p99 ({} polls) | {:.2} ms / {:.2} ms |",
        tally.poll_ns.len(),
        poll50 as f64 / 1e6,
        poll99 as f64 / 1e6
    );
    println!(
        "| server accept p50 / p99 | {:.3} ms / {:.3} ms |",
        accept50 as f64 / 1e6,
        accept99 as f64 / 1e6
    );
    println!(
        "| server turn p50 / p99 | {:.3} ms / {:.3} ms |",
        turn50 as f64 / 1e6,
        turn99 as f64 / 1e6
    );

    let out = std::env::var("EXSAMPLE_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
        });
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve_bench\",\n",
            "  \"sessions\": {},\n",
            "  \"completed\": {},\n",
            "  \"wall_s\": {:.6},\n",
            "  \"peak_connections\": {},\n",
            "  \"resident_sessions\": {},\n",
            "  \"accepted\": {},\n",
            "  \"sheds\": {},\n",
            "  \"client_errors\": {},\n",
            "  \"submit\": {{ \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {} }},\n",
            "  \"poll\": {{ \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {} }},\n",
            "  \"server\": {{ \"accept_p50_ns\": {}, \"accept_p99_ns\": {}, ",
            "\"turn_p50_ns\": {}, \"turn_p99_ns\": {} }}\n",
            "}}\n",
        ),
        cfg.sessions,
        tally.completed,
        wall.as_secs_f64(),
        peak_connections,
        resident,
        stats.accepted,
        stats.shed,
        tally.errors,
        tally.submit_ns.len(),
        sub50,
        sub99,
        tally.poll_ns.len(),
        poll50,
        poll99,
        accept50,
        accept99,
        turn50,
        turn99,
    );
    std::fs::write(&out, json).expect("write BENCH_serve.json");
    eprintln!("wrote {}", out.display());
    server.shutdown();

    if cfg.smoke {
        let ok = stats.shed == 0
            && tally.client_sheds == 0
            && tally.errors == 0
            && tally.completed == cfg.sessions;
        if ok {
            println!(
                "\nSMOKE OK: {} sessions, zero sheds, zero errors",
                tally.completed
            );
        } else {
            println!(
                "\nSMOKE FAILED: completed {} of {}, sheds {}+{}, errors {}",
                tally.completed, cfg.sessions, stats.shed, tally.client_sheds, tally.errors
            );
            std::process::exit(1);
        }
    }
}

/// Re-register or retire a connection after a drive.
fn settle(
    poller: &Poller,
    key: usize,
    conn: Conn,
    alive: bool,
    conns: &mut HashMap<usize, Conn>,
    finished: &mut Vec<Conn>,
) {
    if !alive {
        let _ = poller.delete(&conn.sock);
        return;
    }
    if matches!(conn.state, State::Done) {
        // Keep the socket open (the session stays resident) but stop
        // polling it for readiness.
        let _ = poller.delete(&conn.sock);
        finished.push(conn);
        return;
    }
    let _ = poller.modify(&conn.sock, interest(&conn, key));
    conns.insert(key, conn);
}
