//! Compares warm-start cost of the linear detection log vs. the
//! memory-mapped columnar container: full `scan_detections` replay
//! against container open + probe of a few chunks, with a bit-identity
//! sweep and a real-engine columnar restart (which must pay zero
//! detector invocations). Writes `BENCH_store.json` at the repo root.

use exsample_experiments::{store_cmp, Scale};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let mut cfg = store_cmp::StoreCmpConfig::default_workload();
    if scale == Scale::Quick {
        cfg.records = 12_000;
        cfg.chunk_frames = 1024;
    }
    eprintln!(
        "store_cmp: {} records × {} detections, linear replay vs. columnar warm start ({scale:?}) …",
        cfg.records, cfg.dets_per_frame
    );
    let t0 = std::time::Instant::now();
    let report = store_cmp::run(&cfg);

    println!("\n# Linear log vs. columnar container warm start\n");
    println!(
        "| warm start | bytes read | wall time |\n|---|---|---|\n\
         | linear replay | {} | {:.1} ms |\n\
         | columnar open+probe | {} | {:.1} ms |",
        report.linear_bytes,
        report.linear_wall_s * 1e3,
        report.columnar_bytes_touched,
        report.columnar_startup_s() * 1e3,
    );
    println!(
        "one-time compaction: {:.1} ms → {} container bytes; probe: {} frames over {} chunk(s)",
        report.compact_wall_s * 1e3,
        report.container_bytes,
        report.probed_frames,
        cfg.probe_chunks,
    );
    println!(
        "bit-identity sweep: {} mismatching frame(s); engine replay: {} → {} invocations, {} container hits",
        report.mismatching_frames,
        report.engine_cold_invocations,
        report.engine_replay_invocations,
        report.engine_container_hits,
    );

    assert!(
        report.detections >= 100_000 || scale == Scale::Quick,
        "full scale must cover at least 100k detections"
    );
    assert_eq!(
        report.mismatching_frames, 0,
        "detections must be bit-identical"
    );
    assert_eq!(report.engine_replay_invocations, 0, "replay must be free");
    assert!(report.engine_container_hits > 0);
    assert!(
        report.columnar_bytes_touched < report.linear_bytes,
        "columnar warm start must read strictly less"
    );
    assert!(
        report.columnar_startup_s() < report.linear_wall_s,
        "columnar warm start must be strictly faster ({:.3} ms vs {:.3} ms)",
        report.columnar_startup_s() * 1e3,
        report.linear_wall_s * 1e3,
    );

    let out = std::env::var("EXSAMPLE_BENCH_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_store.json")
        });
    std::fs::write(&out, store_cmp::to_json(&report)).expect("write BENCH_store.json");
    eprintln!(
        "wrote {} ({:.1}s)",
        out.display(),
        t0.elapsed().as_secs_f64()
    );
}
