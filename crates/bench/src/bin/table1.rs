//! Regenerates Table I: per dataset/class, the proxy model's mandatory
//! full-scan time vs the time ExSample needs to reach 10/50/90% of all
//! distinct instances.

use exsample_bench::results_dir;
use exsample_experiments::report::{fmt_hms, Table};
use exsample_experiments::{table1, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    eprintln!("table1: evaluating 43 queries over 6 datasets ({scale:?}) …");
    let t0 = std::time::Instant::now();
    let evals = table1::evaluate_all(scale);
    println!("\n# Table I — proxy scanning vs ExSample sampling\n");
    println!("{}", table1::to_table(&evals).to_markdown());
    let violations = table1::violations(&evals);
    println!(
        "Queries reaching 90% recall before the proxy scan finishes: {}/{}",
        evals.len() - violations.len(),
        evals.len()
    );
    for v in &violations {
        println!(
            "  violation: {}/{} t90={} scan={}",
            v.dataset,
            v.class,
            v.exsample_s[2]
                .map(fmt_hms)
                .unwrap_or_else(|| "unreached".into()),
            fmt_hms(v.proxy_scan_s)
        );
    }

    // Full evaluation dump (also consumed as the Figure 5 input).
    let mut dump = Table::new(&[
        "dataset",
        "class",
        "count",
        "proxy_scan_s",
        "ex_t10_s",
        "ex_t50_s",
        "ex_t90_s",
        "rnd_t10_s",
        "rnd_t50_s",
        "rnd_t90_s",
    ]);
    let f = |x: &Option<f64>| x.map(|v| format!("{v:.1}")).unwrap_or_else(|| "".into());
    for e in &evals {
        dump.row(vec![
            e.dataset.clone(),
            e.class.clone(),
            e.count.to_string(),
            format!("{:.1}", e.proxy_scan_s),
            f(&e.exsample_s[0]),
            f(&e.exsample_s[1]),
            f(&e.exsample_s[2]),
            f(&e.random_s[0]),
            f(&e.random_s[1]),
            f(&e.random_s[2]),
        ]);
    }
    let out = results_dir().join("table1_evals.csv");
    dump.write_csv(&out).expect("write CSV");
    eprintln!(
        "wrote {} ({:.1}s)",
        out.display(),
        t0.elapsed().as_secs_f64()
    );
}
