//! Experiment binaries and Criterion benches.
//!
//! Binaries (run with `--release`; add `--quick` for smoke-scale):
//!
//! ```text
//! cargo run --release -p exsample-bench --bin fig2     # Gamma-belief validation
//! cargo run --release -p exsample-bench --bin fig3     # skew × duration grid
//! cargo run --release -p exsample-bench --bin fig4     # chunk-count sweep
//! cargo run --release -p exsample-bench --bin table1   # proxy scan vs ExSample
//! cargo run --release -p exsample-bench --bin fig5     # savings ratios
//! cargo run --release -p exsample-bench --bin fig6     # chunk histograms + S
//! cargo run --release -p exsample-bench --bin coverage # §III-D variance check
//! cargo run --release -p exsample-bench --bin ablate   # design ablations
//! ```
//!
//! Each binary prints paper-style tables and writes CSVs under
//! `results/`. Criterion benches live in `benches/` (one scaled bench per
//! table/figure plus microbenches of the hot paths).

/// Output directory for experiment CSVs, honouring `EXSAMPLE_RESULTS`.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var("EXSAMPLE_RESULTS")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_dir_defaults() {
        // Do not mutate the environment (tests run in parallel); just check
        // that the fallback logic yields a usable relative path.
        let d = super::results_dir();
        assert!(!d.as_os_str().is_empty());
    }
}
