//! Cluster layer: shard repositories across search engines behind one
//! [`SearchService`](exsample_engine::SearchService).
//!
//! ExSample's economics come from amortizing detector cost across
//! overlapping queries, but one engine owns every repository it serves —
//! capping a deployment at a single machine's GPU and cache. This crate
//! scales the corpus *out* instead of up:
//!
//! * [`ShardRouter`] — itself a `SearchService`, over N backend shards:
//!   any mix of in-process [`Engine`](exsample_engine::Engine)s and
//!   `exsample-proto` `RemoteClient`s. Existing callers, examples, and
//!   experiments work unchanged against a fleet, and per-session results
//!   are bit-identical to running on the owning shard directly.
//! * [`placement`] — rendezvous hashing of the durable
//!   `(name, dataset fingerprint)` repository identity onto shard
//!   *names*: placement survives restarts and shard-list reordering, and
//!   adding/removing a shard moves only the repositories it gains or
//!   loses (warm caches and persisted detections stay put).
//! * **Namespaced ids** — session and repository ids carry their shard
//!   slot in the high bits, so submit/poll/cancel/wait/forget route with
//!   pure bit arithmetic: no id table, no global lock.
//! * [`ClusterStats`] — fleet-wide cache/persist statistics summed per
//!   shard (degraded-tolerant), plus [`ShardHealth`]: a shard that errors
//!   is marked down with typed [`ServiceError::ShardDown`] /
//!   [`SubmitError::ShardDown`] errors surfaced to the caller instead of
//!   panics, and [`ShardRouter::revive`] puts it back after repair.
//! * [`FleetDiagnostics`] — fleet-level observability: per-shard latency
//!   histograms merged by metric name (so `dispatch_ns` p99 is over the
//!   union of every shard's dispatches) and counters summed, degraded-
//!   tolerant like [`ClusterStats`]; the router's strict
//!   `SearchService::diagnostics` additionally re-namespaces flight-event
//!   session ids into the router's id space.
//!
//! [`ServiceError::ShardDown`]: exsample_engine::ServiceError::ShardDown
//! [`SubmitError::ShardDown`]: exsample_engine::SubmitError::ShardDown
//!
//! See `docs/CLUSTER.md` for placement, namespacing, and failure
//! semantics, and `examples/cluster_search.rs` for a three-shard fleet
//! (two in-process engines plus one over a Unix-socket `SearchServer`).

#![warn(missing_docs)]

pub mod placement;
pub mod router;

pub use placement::{place, rendezvous_score};
pub use router::{
    global_repo, global_session, split_repo, split_session, ClusterStats, FleetDiagnostics, IdKind,
    IdOverflow, ShardHealth, ShardRouter, ShardService, MAX_SHARDS,
};
