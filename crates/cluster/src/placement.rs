//! Rendezvous (highest-random-weight) placement of repository
//! identities onto shards.
//!
//! Every placement decision hashes the *durable* repository identity —
//! the `(name, dataset fingerprint)` pair that also keys the persist
//! layer's catalog — against each shard's *name*. The shard with the
//! highest score owns the repository. Because nothing but those strings
//! enters the hash, placement has exactly the properties a restartable
//! fleet needs:
//!
//! * **deterministic** — any router anywhere computes the same owner;
//! * **order-free** — permuting the shard list changes nothing;
//! * **minimally disruptive** — adding a shard moves only the
//!   repositories whose new highest score it is, and removing one moves
//!   only the repositories it owned (each to its runner-up shard).
//!   Nothing else shuffles, so warm caches and persisted detections stay
//!   where they are.

use exsample_stats::hash::FxHasher;
use std::hash::Hasher;

/// SplitMix64 finalizer: full-avalanche scrambling of a raw hash so that
/// near-identical inputs ("shard-1"/"shard-2") produce uncorrelated
/// scores — the property the rendezvous argmax needs for balance.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The rendezvous score of one `(shard, repository identity)` pair.
/// Pure function of its arguments; the owning shard is the one with the
/// highest score (ties broken by shard name, see [`place`]).
pub fn rendezvous_score(shard: &str, repo_name: &str, dataset_fingerprint: u64) -> u64 {
    let mut h = FxHasher::default();
    h.write(shard.as_bytes());
    // Domain separator: ("ab","c") and ("a","bc") must not collide.
    h.write_u8(0xFF);
    h.write(repo_name.as_bytes());
    h.write_u64(dataset_fingerprint);
    mix(h.finish())
}

/// The index (into `shards`, in the given order) of the shard owning the
/// repository identity `(repo_name, dataset_fingerprint)`: the highest
/// [`rendezvous_score`], ties broken by the lexicographically greatest
/// shard name so the choice is a pure function of the shard *set*.
/// `None` only for an empty shard list.
pub fn place<S: AsRef<str>>(
    shards: &[S],
    repo_name: &str,
    dataset_fingerprint: u64,
) -> Option<usize> {
    shards
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let name = s.as_ref();
            (
                rendezvous_score(name, repo_name, dataset_fingerprint),
                name,
                i,
            )
        })
        .max_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)))
        .map(|(_, _, i)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_are_deterministic_and_input_sensitive() {
        let s = rendezvous_score("shard-a", "cam-1", 42);
        assert_eq!(s, rendezvous_score("shard-a", "cam-1", 42));
        assert_ne!(s, rendezvous_score("shard-b", "cam-1", 42));
        assert_ne!(s, rendezvous_score("shard-a", "cam-2", 42));
        assert_ne!(s, rendezvous_score("shard-a", "cam-1", 43));
    }

    #[test]
    fn domain_separation_between_shard_and_repo_names() {
        assert_ne!(
            rendezvous_score("ab", "c", 0),
            rendezvous_score("a", "bc", 0)
        );
    }

    #[test]
    fn place_is_order_free() {
        let a = ["alpha", "beta", "gamma"];
        let b = ["gamma", "alpha", "beta"];
        for j in 0..200u64 {
            let name = format!("repo-{j}");
            let ia = place(&a, &name, j ^ 0xABCD).unwrap();
            let ib = place(&b, &name, j ^ 0xABCD).unwrap();
            assert_eq!(a[ia], b[ib], "owner must not depend on list order");
        }
    }

    #[test]
    fn empty_shard_list_has_no_placement() {
        assert_eq!(place(&[] as &[&str], "cam", 1), None);
    }
}
