//! The [`ShardRouter`]: one [`SearchService`] over many backend shards.
//!
//! # Id namespacing
//!
//! Each shard allocates its own repository and session ids, so two
//! shards routinely both own a `RepoId(0)`. The router exposes
//! *namespaced* ids instead: the shard's slot (its position in the
//! router's name-sorted shard list) travels in the high bits, the
//! shard-local id in the low bits. Routing a call is therefore pure bit
//! arithmetic — no id table, no global lock — and because slots are
//! assigned by sorted shard *name*, a router rebuilt from the same shard
//! set in any order exposes the same ids.
//!
//! ```text
//! RepoId    (u32):  [ slot : 8 bits ][ shard-local id : 24 bits ]
//! SessionId (u64):  [ slot : 16 bits ][ shard-local id : 48 bits ]
//! ```
//!
//! # Health
//!
//! A shard whose call fails at the connection level (a transport error
//! or a version mismatch) is marked **down**: the failing call and every
//! later call routed to it return the typed
//! [`ServiceError::ShardDown`] / [`SubmitError::ShardDown`] immediately
//! instead of panicking or hammering a dead link. Calls routed to other
//! shards are unaffected. After repairing the backend (e.g.
//! `RemoteClient::reconnect`), [`ShardRouter::revive`] puts the shard
//! back in rotation.

use crate::placement;
use exsample_engine::{
    CacheStats, Diagnostics, PersistStats, QuerySpec, RepoId, RepoInfo, SearchService,
    ServiceError, ServiceStats, SessionId, SessionReport, SessionSnapshot, SubmitError,
};
use exsample_obs::{HistSnapshot, SpanRecord, TraceId, NO_SESSION};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Hard cap on shards per router: the slot must fit the 8 bits reserved
/// in a namespaced [`RepoId`].
pub const MAX_SHARDS: usize = 256;

const REPO_SLOT_SHIFT: u32 = 24;
const REPO_LOCAL_MASK: u32 = (1 << REPO_SLOT_SHIFT) - 1;
const REPO_MAX_SLOT: usize = (u32::MAX >> REPO_SLOT_SHIFT) as usize;
const SESSION_SLOT_SHIFT: u32 = 48;
const SESSION_LOCAL_MASK: u64 = (1 << SESSION_SLOT_SHIFT) - 1;
const SESSION_MAX_SLOT: usize = (u64::MAX >> SESSION_SLOT_SHIFT) as usize;

/// Which id namespace an [`IdOverflow`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdKind {
    /// Repository ids: 8 slot bits over a 24-bit shard-local id.
    Repo,
    /// Session ids: 16 slot bits over a 48-bit shard-local id.
    Session,
}

/// A shard-local id (or slot) that does not fit its reserved bit field.
///
/// Namespacing is pure bit arithmetic, so an out-of-range value OR-merged
/// without this check would silently corrupt the slot bits and route
/// every later call for that id to the *wrong shard* — the typed error
/// exists so callers surface the impossibility instead of aliasing ids.
/// An engine never allocates such ids (they'd take 2⁴⁸ submits); in
/// practice this means a misbehaving backend or an attempt to nest one
/// router behind another (whose ids already carry slot bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdOverflow {
    /// Namespace that overflowed.
    pub kind: IdKind,
    /// The shard slot the id was being namespaced under.
    pub slot: usize,
    /// The shard-local id that does not fit (widened to `u64`).
    pub local: u64,
}

impl std::fmt::Display for IdOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (kind, slot_bits, local_bits) = match self.kind {
            IdKind::Repo => ("repo", 32 - REPO_SLOT_SHIFT, REPO_SLOT_SHIFT),
            IdKind::Session => ("session", 64 - SESSION_SLOT_SHIFT, SESSION_SLOT_SHIFT),
        };
        write!(
            f,
            "{kind} id {} under slot {} does not fit the router namespace \
             ({slot_bits}-bit slot over a {local_bits}-bit local id)",
            self.local, self.slot
        )
    }
}

impl std::error::Error for IdOverflow {}

/// Namespace a shard-local repository id under `slot`, or a typed
/// [`IdOverflow`] when the slot exceeds its 8 bits or the local id its
/// 24 — OR-merging such a value would silently route to the wrong shard.
pub fn global_repo(slot: usize, local: RepoId) -> Result<RepoId, IdOverflow> {
    if slot > REPO_MAX_SLOT || local.0 > REPO_LOCAL_MASK {
        return Err(IdOverflow {
            kind: IdKind::Repo,
            slot,
            local: local.0 as u64,
        });
    }
    Ok(RepoId(((slot as u32) << REPO_SLOT_SHIFT) | local.0))
}

/// Split a namespaced repository id into `(slot, shard-local id)`.
pub fn split_repo(id: RepoId) -> (usize, RepoId) {
    (
        (id.0 >> REPO_SLOT_SHIFT) as usize,
        RepoId(id.0 & REPO_LOCAL_MASK),
    )
}

/// Namespace a shard-local session id under `slot`, or a typed
/// [`IdOverflow`] when the slot exceeds its 16 bits or the local id its
/// 48 (see [`global_repo`]).
pub fn global_session(slot: usize, local: SessionId) -> Result<SessionId, IdOverflow> {
    if slot > SESSION_MAX_SLOT || local.0 > SESSION_LOCAL_MASK {
        return Err(IdOverflow {
            kind: IdKind::Session,
            slot,
            local: local.0,
        });
    }
    Ok(SessionId(((slot as u64) << SESSION_SLOT_SHIFT) | local.0))
}

/// Split a namespaced session id into `(slot, shard-local id)`.
pub fn split_session(id: SessionId) -> (usize, SessionId) {
    (
        (id.0 >> SESSION_SLOT_SHIFT) as usize,
        SessionId(id.0 & SESSION_LOCAL_MASK),
    )
}

/// One backend of the router: anything speaking [`SearchService`] — an
/// in-process `Engine` or a `RemoteClient`. (Not another router: its
/// ids already carry slot bits, which do not fit this router's local-id
/// namespace — the catalog and submit paths reject them loudly.)
pub type ShardService = Arc<dyn SearchService + Send + Sync>;

struct Shard {
    name: String,
    svc: ShardService,
    /// `Some(cause)` while the shard is marked down.
    down: Mutex<Option<String>>,
}

/// Health of one shard as reported by [`ShardRouter::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard name.
    pub name: String,
    /// False when the shard is marked down.
    pub up: bool,
    /// The failure that marked it down, when down.
    pub cause: Option<String>,
}

/// Fleet-wide statistics: per-shard [`ServiceStats`] plus their sums.
/// Produced by [`ShardRouter::cluster_stats`], which keeps working in a
/// degraded fleet — unreachable shards are reported as `None` and left
/// out of the sums instead of failing the whole call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// `(shard name, stats)` per shard, in slot order; `None` when the
    /// shard is down or its stats call failed (which marks it down).
    pub shards: Vec<(String, Option<ServiceStats>)>,
    /// Cache counters summed over reachable shards (includes
    /// `warm_loads`, so fleet-wide cold/warm behaviour is one read).
    pub cache: CacheStats,
    /// Durable-store counters summed over reachable persisting shards;
    /// `None` when no reachable shard persists.
    pub persist: Option<PersistStats>,
    /// Resident sessions summed over reachable shards.
    pub live_sessions: u64,
}

impl ClusterStats {
    /// Number of shards that did not report (down or failing).
    pub fn shards_down(&self) -> usize {
        self.shards.iter().filter(|(_, s)| s.is_none()).count()
    }
}

/// Fleet-wide observability: each shard's [`Diagnostics`] plus the
/// fleet-level merge — histograms folded together *by metric name*
/// (log-bucketed snapshots merge exactly, so `histogram("dispatch_ns")`
/// is the latency distribution over every dispatch anywhere in the
/// fleet) and counters summed by name. Produced by
/// [`ShardRouter::fleet_diagnostics`], which — like
/// [`ShardRouter::cluster_stats`] — keeps working in a degraded fleet:
/// unreachable shards report `None` and are left out of the merge.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetDiagnostics {
    /// `(shard name, diagnostics)` per shard, in slot order; `None` when
    /// the shard is down or its diagnostics call failed (which marks it
    /// down). Event session ids here are *shard-local*.
    pub shards: Vec<(String, Option<Diagnostics>)>,
    /// Histogram snapshots merged by metric name over reachable shards,
    /// sorted by name.
    pub histograms: Vec<(String, HistSnapshot)>,
    /// Counters summed by name over reachable shards, sorted by name.
    pub counters: Vec<(String, u64)>,
}

impl FleetDiagnostics {
    /// Number of shards that did not report (down or failing).
    pub fn shards_down(&self) -> usize {
        self.shards.iter().filter(|(_, d)| d.is_none()).count()
    }

    /// The fleet-merged snapshot of the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// The fleet-summed reading of the counter named `name`.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Fold one shard's diagnostics into the fleet-level name-keyed merge.
fn merge_diagnostics(
    hists: &mut BTreeMap<String, HistSnapshot>,
    counters: &mut BTreeMap<String, u64>,
    diag: &Diagnostics,
) {
    for (name, snap) in &diag.histograms {
        hists.entry(name.clone()).or_default().merge(snap);
    }
    for (name, value) in &diag.counters {
        let total = counters.entry(name.clone()).or_insert(0);
        *total = total.saturating_add(*value);
    }
}

fn add_cache(a: &mut CacheStats, b: &CacheStats) {
    a.hits += b.hits;
    a.misses += b.misses;
    a.evictions += b.evictions;
    a.entries += b.entries;
    a.warm_loads += b.warm_loads;
}

fn add_persist(a: &mut PersistStats, b: &PersistStats) {
    a.segments_loaded += b.segments_loaded;
    a.segments_skipped += b.segments_skipped;
    a.records_loaded += b.records_loaded;
    a.damaged_tails += b.damaged_tails;
    a.preloaded_frames += b.preloaded_frames;
    a.snapshots_loaded += b.snapshots_loaded;
    a.snapshots_skipped += b.snapshots_skipped;
    a.beliefs_resident += b.beliefs_resident;
    a.log_write_errors += b.log_write_errors;
    a.snapshot_write_errors += b.snapshot_write_errors;
}

/// True for errors that mean "this shard's link is broken", as opposed
/// to ordinary per-request failures a healthy shard can return.
fn is_connection_failure(e: &ServiceError) -> bool {
    matches!(
        e,
        ServiceError::Transport(_) | ServiceError::VersionMismatch { .. }
    )
}

/// A [`SearchService`] that shards repositories across N backend
/// services and routes every call to the owner — the deployment shape
/// where the corpus outgrows one machine's GPU and cache.
///
/// Existing `SearchService` callers work unchanged against a fleet:
/// [`repos`](SearchService::repos) scatter-gathers the shard catalogs
/// (ids namespaced, see the [module docs](self)), submit routes by the
/// spec's repository id, and session calls route by the session id's
/// slot bits. Per-session results are bit-identical to running the same
/// spec on the owning shard directly — the router moves calls, not
/// computation.
///
/// New repositories are *placed* with [`ShardRouter::place`]: rendezvous
/// hashing over the durable `(name, dataset fingerprint)` identity, so
/// the owner survives router restarts and shard-list reordering, and
/// adding or removing a shard relocates only the repositories it gains
/// or loses.
pub struct ShardRouter {
    /// Sorted by name; a shard's index here is its slot.
    shards: Vec<Shard>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shard_names())
            .finish()
    }
}

impl ShardRouter {
    /// A router over `shards` (`(name, service)` pairs). Names identify
    /// shards durably — placement and slot assignment depend only on the
    /// name *set*, never on the order given here.
    ///
    /// # Panics
    /// Panics on an empty list, more than [`MAX_SHARDS`] shards, or a
    /// duplicate name.
    pub fn new(shards: Vec<(String, ShardService)>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        assert!(
            shards.len() <= MAX_SHARDS,
            "at most {MAX_SHARDS} shards per router"
        );
        let mut shards: Vec<Shard> = shards
            .into_iter()
            .map(|(name, svc)| Shard {
                name,
                svc,
                down: Mutex::new(None),
            })
            .collect();
        // Slot = rank by name: stable under any input permutation.
        shards.sort_by(|a, b| a.name.cmp(&b.name));
        for pair in shards.windows(2) {
            if let [a, b] = pair {
                assert!(a.name != b.name, "duplicate shard name {:?}", a.name);
            }
        }
        assert!(!shards.is_empty(), "a ShardRouter needs at least one shard");
        ShardRouter { shards }
    }

    /// Shard names in slot order (sorted).
    pub fn shard_names(&self) -> Vec<&str> {
        self.shards.iter().map(|s| s.name.as_str()).collect()
    }

    /// The shard owning the repository identity
    /// `(repo_name, dataset_fingerprint)` — where a new repository of
    /// that identity should be registered. Rendezvous hashing over the
    /// shard names: deterministic, order-free, minimally disruptive
    /// under shard addition/removal.
    pub fn place(&self, repo_name: &str, dataset_fingerprint: u64) -> &str {
        let names = self.shard_names();
        let i = placement::place(&names, repo_name, dataset_fingerprint)
            // lint: allow(panic_audit, new() asserts a non-empty shard set)
            .expect("router has at least one shard");
        // lint: allow(panic_audit, place() returns a rank into the same shard list)
        &self.shards[i].name
    }

    /// The shard a namespaced repository id routes to, if its slot is
    /// valid.
    pub fn shard_of_repo(&self, id: RepoId) -> Option<&str> {
        let (slot, _) = split_repo(id);
        self.shards.get(slot).map(|s| s.name.as_str())
    }

    /// The shard a namespaced session id routes to, if its slot is
    /// valid.
    pub fn shard_of_session(&self, id: SessionId) -> Option<&str> {
        let (slot, _) = split_session(id);
        self.shards.get(slot).map(|s| s.name.as_str())
    }

    /// The scatter-gather catalog with its origin tagging intact: each
    /// shard's name alongside its repositories (ids namespaced). Fails
    /// with a typed error if any shard is unreachable — a merged catalog
    /// silently missing a shard's repositories would misinform placement
    /// decisions.
    pub fn repos_by_shard(&self) -> Result<Vec<(String, Vec<RepoInfo>)>, ServiceError> {
        let mut out = Vec::with_capacity(self.shards.len());
        for (slot, shard) in self.shards.iter().enumerate() {
            self.check_up(shard)?;
            let infos = self
                .observe(shard, shard.svc.repos())?
                .into_iter()
                .map(|info| self.globalize_repo_info(shard, slot, info))
                .collect::<Result<Vec<_>, _>>()?;
            out.push((shard.name.clone(), infos));
        }
        Ok(out)
    }

    /// Health of every shard, in slot order.
    pub fn health(&self) -> Vec<ShardHealth> {
        self.shards
            .iter()
            .map(|s| {
                let cause = s.down.lock().expect("shard health poisoned").clone();
                ShardHealth {
                    name: s.name.clone(),
                    up: cause.is_none(),
                    cause,
                }
            })
            .collect()
    }

    /// Put a down-marked shard back in rotation (after repairing its
    /// backend, e.g. `RemoteClient::reconnect`). Returns false for an
    /// unknown name. Idempotent.
    pub fn revive(&self, name: &str) -> bool {
        match self.shards.iter().find(|s| s.name == name) {
            Some(shard) => {
                *shard.down.lock().expect("shard health poisoned") = None;
                true
            }
            None => false,
        }
    }

    /// Fleet-wide statistics, degraded-tolerant: per-shard stats plus
    /// their sums over every *reachable* shard. A shard failing its
    /// stats call is marked down and reported as `None` — observability
    /// must keep working exactly when part of the fleet does not.
    pub fn cluster_stats(&self) -> ClusterStats {
        let mut out = ClusterStats::default();
        for shard in &self.shards {
            let stats = match self.check_up(shard) {
                Ok(()) => self.observe(shard, shard.svc.stats()).ok(),
                Err(_) => None,
            };
            if let Some(s) = &stats {
                add_cache(&mut out.cache, &s.cache);
                if let Some(p) = &s.persist {
                    add_persist(out.persist.get_or_insert_with(PersistStats::default), p);
                }
                out.live_sessions += s.live_sessions;
            }
            out.shards.push((shard.name.clone(), stats));
        }
        out
    }

    /// Fleet-wide observability, degraded-tolerant: per-shard
    /// [`Diagnostics`] plus histograms merged and counters summed over
    /// every *reachable* shard. A shard failing its diagnostics call is
    /// marked down and reported as `None` — exactly the
    /// [`ShardRouter::cluster_stats`] contract, because observability
    /// must keep working exactly when part of the fleet does not.
    pub fn fleet_diagnostics(&self) -> FleetDiagnostics {
        let mut hists = BTreeMap::new();
        let mut counters = BTreeMap::new();
        let mut out = FleetDiagnostics::default();
        for shard in &self.shards {
            let diag = match self.check_up(shard) {
                Ok(()) => self.observe(shard, shard.svc.diagnostics()).ok(),
                Err(_) => None,
            };
            if let Some(d) = &diag {
                merge_diagnostics(&mut hists, &mut counters, d);
            }
            out.shards.push((shard.name.clone(), diag));
        }
        out.histograms = hists.into_iter().collect();
        out.counters = counters.into_iter().collect();
        out
    }

    // ---- routing internals ----

    /// Fail fast when the shard is marked down.
    fn check_up(&self, shard: &Shard) -> Result<(), ServiceError> {
        match &*shard.down.lock().expect("shard health poisoned") {
            Some(cause) => Err(ServiceError::ShardDown {
                shard: shard.name.clone(),
                cause: cause.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Pass a shard call's result through health tracking: a
    /// connection-level failure marks the shard down and is rewritten to
    /// the typed [`ServiceError::ShardDown`]; anything else passes
    /// through untouched.
    fn observe<T>(&self, shard: &Shard, r: Result<T, ServiceError>) -> Result<T, ServiceError> {
        r.map_err(|e| {
            if is_connection_failure(&e) {
                let cause = e.to_string();
                *shard.down.lock().expect("shard health poisoned") = Some(cause.clone());
                ServiceError::ShardDown {
                    shard: shard.name.clone(),
                    cause,
                }
            } else {
                e
            }
        })
    }

    /// Resolve a namespaced session id to its shard, or the typed
    /// unknown-session error (an out-of-range slot cannot exist).
    fn session_shard(&self, id: SessionId) -> Result<(&Shard, SessionId), ServiceError> {
        let (slot, local) = split_session(id);
        let shard = self
            .shards
            .get(slot)
            .ok_or(ServiceError::UnknownSession(id))?;
        Ok((shard, local))
    }

    /// Namespace the ids inside a shard's catalog entry. A shard-local
    /// id beyond the 24-bit namespace cannot be represented — surfaced
    /// as a typed error rather than aliased onto another shard's range.
    fn globalize_repo_info(
        &self,
        shard: &Shard,
        slot: usize,
        mut info: RepoInfo,
    ) -> Result<RepoInfo, ServiceError> {
        info.id = global_repo(slot, info.id)
            .map_err(|e| ServiceError::Transport(format!("shard {:?}: {e}", shard.name)))?;
        Ok(info)
    }

    /// Remap shard-local session ids inside a lifecycle error back into
    /// the router's namespace, so callers see the ids they hold. A
    /// shard echoing an id that does not fit the namespace (it could not
    /// have come from this router) is reported as a transport-level
    /// inconsistency rather than silently aliased.
    fn globalize_session_err(&self, slot: usize, e: ServiceError) -> ServiceError {
        let globalize = |s| match global_session(slot, s) {
            Ok(g) => Ok(g),
            Err(overflow) => Err(ServiceError::Transport(format!(
                "shard at slot {slot} echoed a foreign session id: {overflow}"
            ))),
        };
        match e {
            ServiceError::UnknownSession(s) => match globalize(s) {
                Ok(g) => ServiceError::UnknownSession(g),
                Err(t) => t,
            },
            ServiceError::SessionRunning(s) => match globalize(s) {
                Ok(g) => ServiceError::SessionRunning(g),
                Err(t) => t,
            },
            other => other,
        }
    }

    /// One routed session-lifecycle call: resolve the shard, fail fast
    /// if it is down, run the call with the shard-local id, track health
    /// on the way out, and re-namespace any ids in the error.
    fn route<T>(
        &self,
        id: SessionId,
        call: impl FnOnce(&dyn SearchService, SessionId) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let (shard, local) = self.session_shard(id)?;
        self.check_up(shard)?;
        let (slot, _) = split_session(id);
        self.observe(shard, call(shard.svc.as_ref(), local))
            .map_err(|e| self.globalize_session_err(slot, e))
    }
}

impl SearchService for ShardRouter {
    /// The merged fleet catalog: every shard's repositories with
    /// namespaced ids, in id order (slot-major). See
    /// [`ShardRouter::repos_by_shard`] for the origin-tagged form.
    fn repos(&self) -> Result<Vec<RepoInfo>, ServiceError> {
        let mut all: Vec<RepoInfo> = self
            .repos_by_shard()?
            .into_iter()
            .flat_map(|(_, infos)| infos)
            .collect();
        all.sort_by_key(|i| i.id);
        Ok(all)
    }

    fn submit(&self, spec: QuerySpec) -> Result<SessionId, SubmitError> {
        let global = spec.repo;
        let (slot, local) = split_repo(global);
        let Some(shard) = self.shards.get(slot) else {
            return Err(SubmitError::UnknownRepo(global));
        };
        if let Err(ServiceError::ShardDown { shard, cause }) = self.check_up(shard) {
            return Err(SubmitError::ShardDown { shard, cause });
        }
        let spec = QuerySpec {
            repo: local,
            ..spec
        };
        match shard.svc.submit(spec) {
            // A shard-local id beyond the 48-bit namespace (an engine
            // never allocates one; a nested router's slot bits would)
            // must not be silently OR-merged into the slot — that would
            // route every later call for this session to the wrong shard.
            Ok(session) => global_session(slot, session).map_err(|e| {
                SubmitError::Transport(format!(
                    "shard {:?}: {e} (the session runs on the shard but cannot be \
                     addressed through this router)",
                    shard.name
                ))
            }),
            Err(SubmitError::UnknownRepo(_)) => Err(SubmitError::UnknownRepo(global)),
            Err(SubmitError::Transport(cause)) => {
                *shard.down.lock().expect("shard health poisoned") = Some(cause.clone());
                Err(SubmitError::ShardDown {
                    shard: shard.name.clone(),
                    cause,
                })
            }
            Err(other) => Err(other),
        }
    }

    fn poll(
        &self,
        id: SessionId,
        cursor: u64,
        window: Option<u32>,
    ) -> Result<SessionSnapshot, ServiceError> {
        self.route(id, |svc, local| svc.poll(local, cursor, window))
    }

    fn cancel(&self, id: SessionId) -> Result<(), ServiceError> {
        self.route(id, |svc, local| svc.cancel(local))
    }

    fn wait(&self, id: SessionId) -> Result<SessionReport, ServiceError> {
        self.route(id, |svc, local| svc.wait(local))
    }

    fn forget(&self, id: SessionId) -> Result<SessionReport, ServiceError> {
        self.route(id, |svc, local| svc.forget(local))
    }

    /// Fleet-wide sums over every shard. Unlike
    /// [`ShardRouter::cluster_stats`], this is strict: an unreachable
    /// shard fails the call with its typed error, because a silent
    /// partial sum reads as "the fleet did less work than it did".
    fn stats(&self) -> Result<ServiceStats, ServiceError> {
        let mut out = ServiceStats::default();
        for shard in &self.shards {
            self.check_up(shard)?;
            let s = self.observe(shard, shard.svc.stats())?;
            add_cache(&mut out.cache, &s.cache);
            if let Some(p) = &s.persist {
                add_persist(out.persist.get_or_insert_with(PersistStats::default), p);
            }
            out.live_sessions += s.live_sessions;
        }
        Ok(out)
    }

    /// Fleet-merged diagnostics over every shard: histograms folded by
    /// metric name, counters summed, and flight events concatenated in
    /// slot order with their session ids re-namespaced into the
    /// router's id space (`u64::MAX` — unowned work — passes through
    /// untouched). Strict, like [`SearchService::stats`]: an
    /// unreachable shard fails the call with its typed error, because a
    /// silent partial merge reads as "the fleet's p99 is lower than it
    /// is". Use [`ShardRouter::fleet_diagnostics`] for the
    /// degraded-tolerant per-shard form.
    fn diagnostics(&self) -> Result<Diagnostics, ServiceError> {
        let mut hists = BTreeMap::new();
        let mut counters = BTreeMap::new();
        let mut events = Vec::new();
        for (slot, shard) in self.shards.iter().enumerate() {
            self.check_up(shard)?;
            let diag = self.observe(shard, shard.svc.diagnostics())?;
            merge_diagnostics(&mut hists, &mut counters, &diag);
            for mut event in diag.events {
                if event.session != NO_SESSION {
                    event.session = global_session(slot, SessionId(event.session))
                        .map_err(|e| {
                            ServiceError::Transport(format!(
                                "shard {:?} reported a foreign session id: {e}",
                                shard.name
                            ))
                        })?
                        .0;
                }
                events.push(event);
            }
        }
        Ok(Diagnostics {
            histograms: hists.into_iter().collect(),
            counters: counters.into_iter().collect(),
            events,
        })
    }

    /// Fetch one trace from the shard that owns it. Trace ids derive
    /// bijectively from session ids, so the router recovers the
    /// namespaced session behind `trace`, routes to the owning slot,
    /// and asks that shard for the *shard-local* trace id. Returned
    /// spans are re-namespaced on the way out — session ids into the
    /// router's id space and trace ids back to the one requested — so
    /// the caller sees one coherent tree under the ids it holds. A
    /// trace whose slot does not exist returns empty, matching the
    /// "unknown trace" contract everywhere else.
    fn collect_trace(&self, trace: TraceId) -> Result<Vec<SpanRecord>, ServiceError> {
        let global = SessionId(trace.session());
        let (slot, local) = split_session(global);
        let Some(shard) = self.shards.get(slot) else {
            return Ok(Vec::new());
        };
        self.check_up(shard)?;
        let local_trace = TraceId::from_session(local.0);
        let spans = self.observe(shard, shard.svc.collect_trace(local_trace))?;
        spans
            .into_iter()
            .map(|mut span| {
                span.trace = trace;
                if span.session != NO_SESSION {
                    span.session = global_session(slot, SessionId(span.session))
                        .map_err(|e| {
                            ServiceError::Transport(format!(
                                "shard {:?} reported a foreign session id: {e}",
                                shard.name
                            ))
                        })?
                        .0;
                }
                Ok(span)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_namespacing_round_trips() {
        for slot in [0usize, 1, 7, 255] {
            let r = global_repo(slot, RepoId(12345)).unwrap();
            assert_eq!(split_repo(r), (slot, RepoId(12345)));
            let s = global_session(slot, SessionId(1 << 40)).unwrap();
            assert_eq!(split_session(s), (slot, SessionId(1 << 40)));
        }
        // Slot 0 ids coincide with the shard-local ids (no offset).
        assert_eq!(global_repo(0, RepoId(3)), Ok(RepoId(3)));
        assert_eq!(global_session(0, SessionId(9)), Ok(SessionId(9)));
    }

    #[test]
    fn id_namespacing_rejects_out_of_range_values_at_the_boundary() {
        // Regression: these used to OR the local id straight into the
        // slot field, so a local id one past the boundary silently
        // corrupted the slot and routed to the wrong shard.
        assert!(global_repo(0, RepoId((1 << 24) - 1)).is_ok());
        assert_eq!(
            global_repo(0, RepoId(1 << 24)),
            Err(IdOverflow {
                kind: IdKind::Repo,
                slot: 0,
                local: 1 << 24,
            })
        );
        assert!(global_repo(255, RepoId(0)).is_ok());
        assert_eq!(
            global_repo(256, RepoId(0)),
            Err(IdOverflow {
                kind: IdKind::Repo,
                slot: 256,
                local: 0,
            })
        );
        assert!(global_session(0, SessionId((1 << 48) - 1)).is_ok());
        assert_eq!(
            global_session(0, SessionId(1 << 48)),
            Err(IdOverflow {
                kind: IdKind::Session,
                slot: 0,
                local: 1 << 48,
            })
        );
        assert!(global_session(65_535, SessionId(0)).is_ok());
        assert_eq!(
            global_session(65_536, SessionId(0)),
            Err(IdOverflow {
                kind: IdKind::Session,
                slot: 65_536,
                local: 0,
            })
        );
        // What the old OR-merge under slot 0 would have produced for
        // local id 2^24: an id that routes to slot 1 — another shard.
        let aliased = RepoId(1 << 24);
        assert_eq!(split_repo(aliased).0, 1, "the silent corruption");
        // The error formats with enough context to debug a misbehaving
        // backend.
        let msg = global_session(0, SessionId(u64::MAX))
            .unwrap_err()
            .to_string();
        assert!(msg.contains("session id"), "{msg}");
        assert!(msg.contains("slot 0"), "{msg}");
    }

    #[test]
    fn cluster_stats_sums_are_empty_by_default() {
        let stats = ClusterStats::default();
        assert_eq!(stats.shards_down(), 0);
        assert_eq!(stats.cache, CacheStats::default());
        assert!(stats.persist.is_none());
    }
}
