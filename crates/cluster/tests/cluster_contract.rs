//! The cluster layer's contract: a `ShardRouter` over a mixed fleet —
//! in-process engines plus a remote shard behind the wire protocol — is
//! indistinguishable from one big engine for every `SearchService`
//! caller: identical traces, namespaced but stable ids, typed errors,
//! and shard failures that are contained, reported, and recoverable.

use exsample_cluster::{split_repo, split_session, ShardRouter, ShardService};
use exsample_core::driver::StopCond;
use exsample_detect::NoiseModel;
use exsample_engine::{
    dataset_fingerprint, Engine, EngineConfig, QuerySpec, RepoId, SearchService, ServiceError,
    SessionId, SessionStatus, SubmitError,
};
use exsample_proto::transport::DuplexStream;
use exsample_proto::{duplex, RemoteClient, SearchServer};
use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, GroundTruth, SkewSpec};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn truth(frames: u64, instances: usize, seed: u64) -> Arc<GroundTruth> {
    Arc::new(
        DatasetSpec::single_class(
            frames,
            ClassSpec::new(
                "car",
                instances,
                120.0,
                SkewSpec::CentralNormal { frac95: 0.2 },
            ),
        )
        .generate(seed),
    )
}

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(EngineConfig {
        workers: 2,
        quantum: 8,
        ..EngineConfig::default()
    }))
}

/// A transport that can be severed from the outside: reads and writes
/// fail with `ConnectionReset` once `broken` is set.
struct Breakable {
    inner: DuplexStream,
    broken: Arc<AtomicBool>,
}

impl std::io::Read for Breakable {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.broken.load(Ordering::Relaxed) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "link severed",
            ));
        }
        self.inner.read(buf)
    }
}

impl std::io::Write for Breakable {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.broken.load(Ordering::Relaxed) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "link severed",
            ));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Spawn a server thread for one duplex connection to `server`.
fn serve(server: &Arc<SearchServer>, io: DuplexStream) {
    let srv = server.clone();
    std::thread::spawn(move || {
        let _ = srv.serve_connection(io);
    });
}

/// Resolve a repository's namespaced id through a service's catalog.
fn repo_by_name(svc: &dyn SearchService, name: &str) -> RepoId {
    svc.repos()
        .expect("catalog")
        .into_iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("repository {name:?} in catalog"))
        .id
}

/// The deterministic coordinates of a trace (seconds are charged,
/// scheduling-dependent quantities; samples/found are pure functions of
/// the spec).
fn curve(trace: &exsample_core::driver::SearchTrace) -> Vec<(u64, u64)> {
    trace
        .points()
        .iter()
        .map(|p| (p.samples, p.found))
        .collect()
}

#[test]
fn mixed_cluster_matches_single_engine_bit_for_bit() {
    // Three repositories of distinct footage, three shards: two
    // in-process engines plus one behind the wire protocol.
    let repos: Vec<(String, Arc<GroundTruth>)> = (0..3)
        .map(|i| (format!("cam-{i}"), truth(20_000, 60, 17 + i)))
        .collect();

    let locals = [engine(), engine()];
    let remote_engine = engine();
    let server = Arc::new(SearchServer::new(remote_engine.clone()));
    let (client_io, server_io) = duplex();
    serve(&server, server_io);
    let remote = Arc::new(RemoteClient::connect(client_io).expect("handshake"));

    let shards: Vec<(String, ShardService)> = vec![
        ("shard-a".into(), locals[0].clone() as ShardService),
        ("shard-b".into(), locals[1].clone() as ShardService),
        ("shard-c".into(), remote.clone() as ShardService),
    ];
    let router = ShardRouter::new(shards);

    // Register every repository on its rendezvous-placed shard. The
    // remote shard's engine is registered through its local handle — the
    // wire protocol serves queries, not footage ingest.
    let engine_of = |shard: &str| -> &Arc<Engine> {
        match shard {
            "shard-a" => &locals[0],
            "shard-b" => &locals[1],
            "shard-c" => &remote_engine,
            other => panic!("unknown shard {other:?}"),
        }
    };
    let mut owners = std::collections::HashSet::new();
    for (name, gt) in &repos {
        let owner = router.place(name, dataset_fingerprint(gt));
        owners.insert(owner.to_string());
        engine_of(owner).register_repo(name, gt.clone(), NoiseModel::none(), 5);
    }

    // Reference: one engine owning all three repositories.
    let single = engine();
    for (name, gt) in &repos {
        single.register_repo(name, gt.clone(), NoiseModel::none(), 5);
    }

    // Six overlapping queries, two per repository, identical specs on
    // both sides (repo ids resolved per service — they differ, the
    // results must not).
    let spec_for = |svc: &dyn SearchService, q: u64| {
        let (name, _) = &repos[(q % 3) as usize];
        QuerySpec::new(repo_by_name(svc, name), ClassId(0), StopCond::results(25))
            .chunks(8)
            .seed(1000 + q)
    };
    let run = |svc: &dyn SearchService| -> Vec<_> {
        let ids: Vec<SessionId> = (0..6)
            .map(|q| svc.submit(spec_for(svc, q)).expect("valid spec"))
            .collect();
        ids.into_iter()
            .map(|id| svc.wait(id).expect("session completes"))
            .collect()
    };
    let clustered = run(&router);
    let reference = run(single.as_ref());

    let mut total_frames = 0;
    for (c, r) in clustered.iter().zip(&reference) {
        assert_eq!(c.status, SessionStatus::Done);
        assert_eq!(c.trace.samples(), r.trace.samples());
        assert_eq!(c.trace.found(), r.trace.found());
        assert_eq!(
            curve(&c.trace),
            curve(&r.trace),
            "traces must be bit-identical"
        );
        total_frames += c.charges.frames;
    }

    // Fleet-wide statistics add up across shards, remote included.
    let stats = router.stats().expect("all shards reachable");
    assert_eq!(stats.cache.hits + stats.cache.misses, total_frames);
    assert_eq!(stats.live_sessions, 6);
    let cluster = router.cluster_stats();
    assert_eq!(cluster.cache, stats.cache);
    assert_eq!(cluster.shards_down(), 0);
    assert_eq!(cluster.shards.len(), 3);
    // The single engine paid the same detector bill as the fleet: the
    // shards partition the repositories, so no sharing is lost.
    assert_eq!(stats.cache.misses, single.detector_invocations());
    // The workload actually spread across shards.
    assert!(owners.len() >= 2, "placement sent everything to one shard");
}

#[test]
fn catalog_merges_with_origin_tagging() {
    let a = engine();
    let b = engine();
    a.register_repo("north", truth(5_000, 10, 1), NoiseModel::none(), 5);
    a.register_repo("south", truth(6_000, 12, 2), NoiseModel::none(), 5);
    b.register_repo("west", truth(7_000, 14, 3), NoiseModel::none(), 5);
    let router = ShardRouter::new(vec![
        // Given out of order on purpose: slots sort by name.
        ("s2".into(), b.clone() as ShardService),
        ("s1".into(), a.clone() as ShardService),
    ]);
    assert_eq!(router.shard_names(), ["s1", "s2"]);

    let merged = router.repos().expect("catalog");
    assert_eq!(merged.len(), 3);
    // Ids are namespaced and every repo routes back to its origin shard.
    for info in &merged {
        let (slot, local) = split_repo(info.id);
        let origin = router.shard_of_repo(info.id).expect("valid slot");
        match info.name.as_str() {
            "north" | "south" => {
                assert_eq!((slot, origin), (0, "s1"));
                assert_eq!(a.repos()[local.0 as usize].name, info.name);
            }
            "west" => {
                assert_eq!((slot, origin), (1, "s2"));
                assert_eq!(b.repos()[local.0 as usize].name, info.name);
            }
            other => panic!("unexpected repo {other:?}"),
        }
    }
    // The tagged form groups by shard, same ids.
    let tagged = router.repos_by_shard().expect("catalog");
    assert_eq!(tagged.len(), 2);
    assert_eq!(tagged[0].0, "s1");
    assert_eq!(tagged[0].1.len(), 2);
    assert_eq!(tagged[1].0, "s2");
    assert_eq!(tagged[1].1.len(), 1);
    let flattened: Vec<_> = tagged.into_iter().flat_map(|(_, i)| i).collect();
    assert_eq!(flattened, merged);
}

#[test]
fn session_lifecycle_contract_over_the_router() {
    let a = engine();
    let b = engine();
    let repo_gt = truth(20_000, 60, 9);
    a.register_repo("cam", repo_gt.clone(), NoiseModel::none(), 5);
    let router = ShardRouter::new(vec![
        ("alpha".into(), a.clone() as ShardService),
        ("beta".into(), b.clone() as ShardService),
    ]);
    let svc: &dyn SearchService = &router;
    let repo = repo_by_name(svc, "cam");

    // Submit-time validation and unknown-repo rejection, with the
    // *caller's* (namespaced) ids in the errors.
    let bogus_local = RepoId(repo.0 + 1); // valid slot, unknown local id
    assert_eq!(
        svc.submit(QuerySpec::new(
            bogus_local,
            ClassId(0),
            StopCond::results(1)
        )),
        Err(SubmitError::UnknownRepo(bogus_local))
    );
    let bogus_slot = RepoId(57 << 24); // out-of-range slot
    assert_eq!(
        svc.submit(QuerySpec::new(bogus_slot, ClassId(0), StopCond::results(1))),
        Err(SubmitError::UnknownRepo(bogus_slot))
    );
    assert_eq!(
        svc.submit(QuerySpec::new(repo, ClassId(0), StopCond::results(1)).chunks(0)),
        Err(SubmitError::InvalidSpec("chunks must be positive".into()))
    );

    // Unknown sessions: both an unknown local id and an absurd slot.
    let ghost = SessionId(3 | (1 << 48)); // slot 1 (valid), unknown local
    assert_eq!(
        svc.poll(ghost, 0, None).unwrap_err(),
        ServiceError::UnknownSession(ghost)
    );
    let far = SessionId(u64::MAX);
    assert_eq!(
        svc.wait(far).unwrap_err(),
        ServiceError::UnknownSession(far)
    );

    // The full happy path: submit routes to shard alpha, the session id
    // carries the slot, and poll/cancel/wait/forget all round-trip.
    let id = svc
        .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(10)).seed(77))
        .expect("valid spec");
    assert_eq!(router.shard_of_session(id), Some("alpha"));
    let report = svc.wait(id).expect("completes");
    assert_eq!(report.status, SessionStatus::Done);
    assert!(report.trace.found() >= 10);

    // Windowed cursor chain over the router equals the full log.
    let all = svc.poll(id, 0, None).expect("full log");
    assert!(!all.events.is_empty());
    let mut cursor = 0;
    let mut paged = Vec::new();
    loop {
        let snap = svc.poll(id, cursor, Some(2)).expect("windowed poll");
        if snap.events.is_empty() {
            assert_eq!(snap.next_cursor, all.events.len() as u64);
            break;
        }
        cursor = snap.next_cursor;
        paged.extend(snap.events);
    }
    assert_eq!(paged, all.events);

    // Forget-while-running surfaces the namespaced id; cancel is
    // idempotent; forget returns the report once, then unknown.
    let busy = svc
        .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(1_000_000)).seed(78))
        .expect("valid spec");
    match svc.forget(busy) {
        Err(ServiceError::SessionRunning(s)) => assert_eq!(s, busy),
        Ok(_) => {} // may have exhausted already on a fast machine
        Err(other) => panic!("unexpected error {other:?}"),
    }
    svc.cancel(busy).expect("cancel routes");
    svc.cancel(busy).expect("cancel is idempotent");
    svc.wait(busy).expect("cancelled session reports");
    let forgotten = svc.forget(id).expect("forget finished session");
    assert_eq!(forgotten.trace, report.trace);
    assert_eq!(
        svc.forget(id).unwrap_err(),
        ServiceError::UnknownSession(id)
    );
}

#[test]
fn shard_failure_is_typed_contained_and_revivable() {
    let healthy = engine();
    healthy.register_repo("steady-cam", truth(20_000, 60, 4), NoiseModel::none(), 5);

    let remote_engine = engine();
    remote_engine.register_repo("flaky-cam", truth(20_000, 60, 8), NoiseModel::none(), 5);
    let server = Arc::new(SearchServer::new(remote_engine.clone()));
    let (client_io, server_io) = duplex();
    serve(&server, server_io);
    let broken = Arc::new(AtomicBool::new(false));
    let remote = Arc::new(
        RemoteClient::connect(Breakable {
            inner: client_io,
            broken: broken.clone(),
        })
        .expect("handshake"),
    );

    let router = ShardRouter::new(vec![
        ("steady".into(), healthy.clone() as ShardService),
        ("flaky".into(), remote.clone() as ShardService),
    ]);
    let svc: &dyn SearchService = &router;

    // One session per shard, both submitted while everything is up.
    let steady_id = svc
        .submit(
            QuerySpec::new(
                repo_by_name(svc, "steady-cam"),
                ClassId(0),
                StopCond::results(15),
            )
            .seed(1),
        )
        .expect("valid spec");
    let flaky_repo = repo_by_name(svc, "flaky-cam");
    let flaky_id = svc
        .submit(QuerySpec::new(flaky_repo, ClassId(0), StopCond::results(15)).seed(2))
        .expect("valid spec");
    // Let the remote session finish server-side before the link dies:
    // sessions outlive connections.
    let flaky_report = svc.wait(flaky_id).expect("completes while link is up");

    // Sever the link. The next call routed to the flaky shard fails with
    // the *typed* error and marks it down; later calls fail fast.
    broken.store(true, Ordering::Relaxed);
    match svc.poll(flaky_id, 0, None).unwrap_err() {
        ServiceError::ShardDown { shard, cause } => {
            assert_eq!(shard, "flaky");
            assert!(!cause.is_empty());
        }
        other => panic!("expected ShardDown, got {other:?}"),
    }
    assert!(matches!(
        svc.submit(QuerySpec::new(flaky_repo, ClassId(0), StopCond::results(1))),
        Err(SubmitError::ShardDown { .. })
    ));
    let health = router.health();
    assert_eq!(health.len(), 2);
    assert!(health
        .iter()
        .any(|h| h.name == "flaky" && !h.up && h.cause.is_some()));
    assert!(health.iter().any(|h| h.name == "steady" && h.up));

    // The healthy shard is unaffected — its session completes — and the
    // degraded-tolerant stats still report it.
    let steady_report = svc.wait(steady_id).expect("healthy shard unaffected");
    assert_eq!(steady_report.status, SessionStatus::Done);
    let cluster = router.cluster_stats();
    assert_eq!(cluster.shards_down(), 1);
    assert!(cluster.cache.misses > 0, "healthy shard still reported");
    // The strict trait-level stats and the merged catalog are typed
    // errors, not panics or silent partials.
    assert!(matches!(svc.stats(), Err(ServiceError::ShardDown { .. })));
    assert!(matches!(svc.repos(), Err(ServiceError::ShardDown { .. })));

    // Repair the backend (fresh connection), revive the shard, and the
    // pre-failure session's report is still there: sessions survived the
    // dead link, the router survived the dead shard.
    let (client_io, server_io) = duplex();
    serve(&server, server_io);
    remote
        .reconnect(Breakable {
            inner: client_io,
            broken: Arc::new(AtomicBool::new(false)),
        })
        .expect("re-handshake");
    assert!(router.revive("flaky"));
    assert!(!router.revive("no-such-shard"));
    let revived = svc.wait(flaky_id).expect("session outlived the dead link");
    assert_eq!(curve(&revived.trace), curve(&flaky_report.trace));
    assert!(router.health().iter().all(|h| h.up));
    assert!(svc.repos().is_ok());
}

#[test]
fn placement_of_persisted_repo_survives_restart_with_permuted_shards() {
    let dir = std::env::temp_dir().join(format!(
        "exsample-cluster-placement-test-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let names = ["alpha", "beta", "gamma"];
    let gt = truth(20_000, 60, 33);
    let fingerprint = dataset_fingerprint(&gt);
    let owner = names[exsample_cluster::place(&names, "city-cam", fingerprint).unwrap()];

    // Engines keyed by shard name; the owner persists to `dir`.
    let build = |name: &str| -> Arc<Engine> {
        let mut config = EngineConfig {
            workers: 2,
            quantum: 8,
            ..EngineConfig::default()
        };
        if name == owner {
            config.persist = Some(exsample_persist::PersistConfig::new(&dir).fingerprint(7));
        }
        Arc::new(Engine::new(config))
    };
    let spec = |repo: RepoId| {
        QuerySpec::new(repo, ClassId(0), StopCond::results(12))
            .seed(5)
            .warm_start(false)
    };

    // First life: shards given in name order.
    let engines: Vec<Arc<Engine>> = names.iter().map(|n| build(n)).collect();
    let router = ShardRouter::new(
        names
            .iter()
            .zip(&engines)
            .map(|(n, e)| (n.to_string(), e.clone() as ShardService))
            .collect(),
    );
    assert_eq!(router.place("city-cam", fingerprint), owner);
    engines[names.iter().position(|n| *n == owner).unwrap()].register_repo(
        "city-cam",
        gt.clone(),
        NoiseModel::none(),
        5,
    );
    let repo = repo_by_name(&router, "city-cam");
    let id = router.submit(spec(repo)).expect("valid spec");
    let first = router.wait(id).expect("completes");
    assert!(router.stats().unwrap().cache.misses > 0);
    drop(router);
    drop(engines); // flush the owner's detection log

    // Second life: same shard *set*, permuted list order, rebuilt
    // engines. Placement, the namespaced repo id, and the persisted
    // detections must all survive.
    let permuted = ["gamma", "alpha", "beta"];
    let engines: Vec<Arc<Engine>> = permuted.iter().map(|n| build(n)).collect();
    let router = ShardRouter::new(
        permuted
            .iter()
            .zip(&engines)
            .map(|(n, e)| (n.to_string(), e.clone() as ShardService))
            .collect(),
    );
    assert_eq!(
        router.place("city-cam", fingerprint),
        owner,
        "placement moved"
    );
    engines[permuted.iter().position(|n| *n == owner).unwrap()].register_repo(
        "city-cam",
        gt,
        NoiseModel::none(),
        5,
    );
    assert_eq!(
        repo_by_name(&router, "city-cam"),
        repo,
        "namespaced repo id changed across restart"
    );
    let id = router.submit(spec(repo)).expect("valid spec");
    let replay = router.wait(id).expect("completes");
    assert_eq!(curve(&replay.trace), curve(&first.trace));
    // Served entirely from the owner's preloaded detections: the fleet
    // paid zero detector invocations for the replay.
    let stats = router.stats().expect("all shards reachable");
    assert_eq!(stats.cache.misses, 0, "warm shard must not re-detect");
    assert!(stats.cache.hits > 0);
    let (slot, _) = split_session(id);
    assert_eq!(router.shard_names()[slot], owner);
    drop(router);
    let _ = std::fs::remove_dir_all(&dir);
}
