//! Fleet-level observability contract: a router merges per-shard
//! latency histograms by metric name — p99 over the *union* of shards,
//! verified against known recorded values — sums counters, tolerates
//! down shards in the degraded form, and re-namespaces flight-event
//! session ids in the strict form.

use exsample_cluster::{split_session, ShardRouter, ShardService};
use exsample_core::driver::StopCond;
use exsample_detect::NoiseModel;
use exsample_engine::{Engine, EngineConfig, QuerySpec, SearchService, ServiceError, SessionId};
use exsample_obs::NO_SESSION;
use exsample_proto::transport::DuplexStream;
use exsample_proto::{duplex, RemoteClient, SearchServer};
use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, GroundTruth, SkewSpec};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn truth(seed: u64) -> Arc<GroundTruth> {
    Arc::new(
        DatasetSpec::single_class(
            10_000,
            ClassSpec::new("car", 40, 120.0, SkewSpec::CentralNormal { frac95: 0.2 }),
        )
        .generate(seed),
    )
}

fn engine() -> Arc<Engine> {
    Arc::new(Engine::new(EngineConfig {
        workers: 2,
        quantum: 8,
        ..EngineConfig::default()
    }))
}

/// A transport that can be severed from the outside: reads and writes
/// fail with `ConnectionReset` once `broken` is set.
struct Breakable {
    inner: DuplexStream,
    broken: Arc<AtomicBool>,
}

impl std::io::Read for Breakable {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.broken.load(Ordering::Relaxed) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "link severed",
            ));
        }
        self.inner.read(buf)
    }
}

impl std::io::Write for Breakable {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.broken.load(Ordering::Relaxed) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "link severed",
            ));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A two-shard fleet: shard "a" in-process, shard "b" behind the wire
/// protocol over a severable link. Returns the router, both engines,
/// and the switch that severs shard "b".
fn fleet() -> (ShardRouter, Arc<Engine>, Arc<Engine>, Arc<AtomicBool>) {
    let engine_a = engine();
    let engine_b = engine();
    let server = Arc::new(SearchServer::new(engine_b.clone()));
    let (client_io, server_io) = duplex();
    let broken = Arc::new(AtomicBool::new(false));
    {
        let srv = server.clone();
        std::thread::spawn(move || {
            let _ = srv.serve_connection(server_io);
        });
    }
    let remote = Arc::new(
        RemoteClient::connect(Breakable {
            inner: client_io,
            broken: broken.clone(),
        })
        .expect("handshake"),
    );
    let router = ShardRouter::new(vec![
        ("a".into(), engine_a.clone() as ShardService),
        ("b".into(), remote as ShardService),
    ]);
    (router, engine_a, engine_b, broken)
}

/// Both shards record known latencies into `dispatch_ns`; the fleet
/// merge must report quantiles over the union — shard A's p99 is three
/// orders of magnitude below the fleet's, because every slow dispatch
/// lives on shard B.
#[test]
fn fleet_p99_covers_the_union_of_shards() {
    let (router, engine_a, engine_b, _broken) = fleet();
    // Shard A: 50 fast dispatches (1 µs — bucket ceiling 1023 ns).
    let hist_a = engine_a.obs().registry().histogram("dispatch_ns");
    for _ in 0..50 {
        hist_a.record(1_000);
    }
    // Shard B (reached over the wire): 50 slow dispatches (1 ms —
    // bucket ceiling 1_048_575 ns).
    let hist_b = engine_b.obs().registry().histogram("dispatch_ns");
    for _ in 0..50 {
        hist_b.record(1_000_000);
    }
    engine_a.obs().registry().counter("test_total").add(3);
    engine_b.obs().registry().counter("test_total").add(4);

    let fleet = router.fleet_diagnostics();
    assert_eq!(fleet.shards_down(), 0);
    assert_eq!(
        fleet
            .shards
            .iter()
            .map(|(n, _)| n.as_str())
            .collect::<Vec<_>>(),
        ["a", "b"]
    );

    // The merged distribution covers all 100 observations.
    let merged = fleet.histogram("dispatch_ns").expect("merged histogram");
    assert_eq!(merged.total(), 100);
    assert_eq!(merged.quantile(0.5), 1_023, "fleet p50 is a fast dispatch");
    assert_eq!(
        merged.quantile(0.99),
        1_048_575,
        "fleet p99 must come from shard B's slow half"
    );
    // Shard A alone never saw a slow dispatch.
    let a_alone = fleet.shards[0].1.as_ref().expect("shard A reported");
    assert_eq!(
        a_alone.histogram("dispatch_ns").unwrap().quantile(0.99),
        1_023
    );
    // Counters sum across shards.
    assert_eq!(fleet.counter("test_total"), Some(7));

    // The strict trait form agrees with the degraded-tolerant one.
    let strict = router.diagnostics().expect("all shards up");
    assert_eq!(strict.histogram("dispatch_ns"), Some(merged));
    assert_eq!(strict.counter("test_total"), Some(7));
}

/// A severed shard degrades `fleet_diagnostics` (reported as `None`,
/// left out of the merge) but fails the strict trait call with the
/// typed error.
#[test]
fn fleet_diagnostics_tolerates_a_down_shard() {
    let (router, engine_a, _engine_b, broken) = fleet();
    engine_a
        .obs()
        .registry()
        .histogram("dispatch_ns")
        .record(1_000);
    broken.store(true, Ordering::Relaxed);

    let fleet = router.fleet_diagnostics();
    assert_eq!(fleet.shards_down(), 1);
    assert!(fleet.shards[0].1.is_some(), "shard A still reports");
    assert!(fleet.shards[1].1.is_none(), "shard B is unreachable");
    // Shard A's data still reaches the merge.
    assert_eq!(fleet.histogram("dispatch_ns").unwrap().total(), 1);

    match router.diagnostics() {
        Err(ServiceError::ShardDown { shard, .. }) => assert_eq!(shard, "b"),
        other => panic!("strict diagnostics must fail typed, got {other:?}"),
    }
}

/// Flight events crossing the router carry namespaced session ids: a
/// session run on shard B (slot 1) shows up with slot bits set, and
/// unowned work (`NO_SESSION`) passes through untouched.
#[test]
fn strict_diagnostics_namespaces_event_session_ids() {
    let (router, _engine_a, _engine_b, _broken) = fleet();
    let repo_b = {
        // Register footage directly on shard B's engine (slot 1).
        let infos = router.repos().expect("catalog");
        assert!(infos.is_empty(), "fresh fleet");
        _engine_b.register_repo("cam-b", truth(5), NoiseModel::none(), 5);
        router
            .repos()
            .expect("catalog")
            .into_iter()
            .find(|r| r.name == "cam-b")
            .expect("shard B repo in fleet catalog")
            .id
    };
    let id = router
        .submit(QuerySpec::new(repo_b, ClassId(0), StopCond::samples(200)).seed(4))
        .expect("submit routes to shard B");
    router.wait(id).expect("session finishes");
    assert_eq!(split_session(id).0, 1, "session lives on slot 1");

    let diag = router.diagnostics().expect("fleet diagnostics");
    let owned: Vec<u64> = diag
        .events
        .iter()
        .filter(|e| e.session != NO_SESSION)
        .map(|e| e.session)
        .collect();
    assert!(!owned.is_empty(), "the session left events behind");
    // Every owned event from this fleet belongs to slot 1 and maps back
    // to the session the router handed out.
    for s in owned {
        assert_eq!(split_session(SessionId(s)).0, 1);
    }
    assert!(
        diag.events.iter().any(|e| e.session == id.0),
        "events carry the router-visible session id"
    );
}
