//! Admission errors cross the router as *per-request* answers, not
//! shard failures. `Overloaded { retry_after_ms }` and `Unauthorized`
//! come from a shard that is healthy but busy (or strict) — a router
//! that marked it down on those would amplify a momentary shed into an
//! outage, and a retrying client (`RemoteClient::submit_with_retry`)
//! would never get its second chance.

use exsample_cluster::{global_repo, global_session, split_session, ShardRouter, ShardService};
use exsample_engine::{
    QuerySpec, RepoId, RepoInfo, SearchService, ServiceError, ServiceStats, SessionId,
    SessionReport, SessionSnapshot, SessionStatus, SubmitError,
};
use exsample_videosim::ClassId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shard stub that answers like a reactor under admission pressure:
/// while `shedding`, submits and polls return `Overloaded` and waits
/// return `Unauthorized`; once the pressure clears, calls succeed.
struct BusyShard {
    repo_name: &'static str,
    shedding: AtomicBool,
}

impl BusyShard {
    fn new(repo_name: &'static str, shedding: bool) -> Arc<Self> {
        Arc::new(BusyShard {
            repo_name,
            shedding: AtomicBool::new(shedding),
        })
    }

    fn shedding(&self) -> bool {
        self.shedding.load(Ordering::Relaxed)
    }
}

impl SearchService for BusyShard {
    fn repos(&self) -> Result<Vec<RepoInfo>, ServiceError> {
        Ok(vec![RepoInfo {
            id: RepoId(0),
            name: self.repo_name.to_owned(),
            frames: 1000,
            classes: 1,
            dataset_fingerprint: 7,
        }])
    }

    fn submit(&self, _spec: QuerySpec) -> Result<SessionId, SubmitError> {
        if self.shedding() {
            return Err(SubmitError::Overloaded { retry_after_ms: 35 });
        }
        Ok(SessionId(11))
    }

    fn poll(
        &self,
        _id: SessionId,
        _cursor: u64,
        _window: Option<u32>,
    ) -> Result<SessionSnapshot, ServiceError> {
        if self.shedding() {
            return Err(ServiceError::Overloaded { retry_after_ms: 35 });
        }
        Ok(SessionSnapshot {
            status: SessionStatus::Done,
            found: 1,
            samples: 2,
            charges: Default::default(),
            events: Vec::new(),
            next_cursor: 0,
        })
    }

    fn cancel(&self, _id: SessionId) -> Result<(), ServiceError> {
        Ok(())
    }

    fn wait(&self, _id: SessionId) -> Result<SessionReport, ServiceError> {
        Err(ServiceError::Unauthorized("no ticket".to_owned()))
    }

    fn forget(&self, id: SessionId) -> Result<SessionReport, ServiceError> {
        Err(ServiceError::UnknownSession(id))
    }

    fn stats(&self) -> Result<ServiceStats, ServiceError> {
        Ok(ServiceStats::default())
    }

    fn diagnostics(&self) -> Result<exsample_engine::Diagnostics, ServiceError> {
        Ok(exsample_engine::Diagnostics::default())
    }
}

fn spec(repo: RepoId) -> QuerySpec {
    QuerySpec::new(
        repo,
        ClassId(0),
        exsample_core::driver::StopCond::results(1),
    )
}

fn assert_all_up(router: &ShardRouter) {
    for h in router.health() {
        assert!(
            h.up,
            "shard {:?} wrongly marked down: {:?}",
            h.name, h.cause
        );
    }
}

#[test]
fn overloaded_submits_pass_through_without_marking_the_shard_down() {
    let busy = BusyShard::new("busy-repo", true);
    let calm = BusyShard::new("calm-repo", false);
    let router = ShardRouter::new(vec![
        ("a-busy".to_owned(), busy.clone() as ShardService),
        ("b-calm".to_owned(), calm as ShardService),
    ]);

    let busy_repo = global_repo(0, RepoId(0)).unwrap();
    let calm_repo = global_repo(1, RepoId(0)).unwrap();

    // The busy shard sheds: the typed answer crosses the router intact,
    // retry hint and all...
    assert_eq!(
        router.submit(spec(busy_repo)),
        Err(SubmitError::Overloaded { retry_after_ms: 35 })
    );
    // ...and the shard stays in rotation — a shed is not an outage.
    assert_all_up(&router);

    // Traffic to the other shard is untouched, and its session id comes
    // back namespaced under its slot.
    let sid = router.submit(spec(calm_repo)).expect("calm shard accepts");
    assert_eq!(split_session(sid), (1, SessionId(11)));

    // Once the pressure clears, the *same* router lands the submit with
    // no revive step — nothing was ever marked down.
    busy.shedding.store(false, Ordering::Relaxed);
    let sid = router.submit(spec(busy_repo)).expect("retry lands");
    assert_eq!(split_session(sid), (0, SessionId(11)));
}

#[test]
fn overloaded_and_unauthorized_lifecycle_calls_are_per_request_answers() {
    let busy = BusyShard::new("busy-repo", true);
    let router = ShardRouter::new(vec![("only".to_owned(), busy.clone() as ShardService)]);
    let sid = global_session(0, SessionId(11)).unwrap();

    assert!(matches!(
        router.poll(sid, 0, None),
        Err(ServiceError::Overloaded { retry_after_ms: 35 })
    ));
    assert_all_up(&router);

    assert!(matches!(
        router.wait(sid),
        Err(ServiceError::Unauthorized(why)) if why == "no ticket"
    ));
    assert_all_up(&router);

    // The shard was never marked down, so the moment it stops shedding
    // the identical poll succeeds.
    busy.shedding.store(false, Ordering::Relaxed);
    let snap = router.poll(sid, 0, None).expect("poll lands after shed");
    assert_eq!(snap.status, SessionStatus::Done);
}
