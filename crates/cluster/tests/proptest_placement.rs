//! Property tests for rendezvous placement: deterministic, balanced
//! within ±20% over 1k synthetic repositories, stable under shard-list
//! permutation, and minimally disruptive under shard addition/removal —
//! only the repositories the changed shard gains or loses move.

use exsample_cluster::place;
use proptest::prelude::*;

/// SplitMix64 step: deterministic synthetic dataset fingerprints.
fn fingerprint(seed: u64, j: u64) -> u64 {
    let mut z = seed
        .wrapping_add(j.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// 1k synthetic repository identities, as the durable
/// `(name, dataset fingerprint)` pairs placement hashes.
fn synthetic_repos(salt: u64) -> Vec<(String, u64)> {
    (0..1_000u64)
        .map(|j| (format!("repo-{j}"), fingerprint(salt, j)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn placement_is_deterministic_and_uniform(
        nshards in 3usize..7,
        salt in any::<u64>(),
    ) {
        let shards: Vec<String> = (0..nshards)
            .map(|i| format!("shard-{:x}-{i}", salt & 0xFFFF))
            .collect();
        let repos = synthetic_repos(salt);
        let mut counts = vec![0u64; nshards];
        for (name, fp) in &repos {
            let owner = place(&shards, name, *fp).expect("nonempty shard list");
            // Deterministic: the same identity always lands on the same
            // shard.
            prop_assert_eq!(place(&shards, name, *fp), Some(owner));
            counts[owner] += 1;
        }
        // Uniform within ±20% of the fair share over 1k repositories.
        let fair = repos.len() as f64 / nshards as f64;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) >= 0.8 * fair && (c as f64) <= 1.2 * fair,
                "shard {} owns {} of {} repos (fair share {:.0} ±20%): {:?}",
                shards[i], c, repos.len(), fair, counts
            );
        }
    }

    #[test]
    fn placement_ignores_shard_list_order(
        nshards in 3usize..7,
        salt in any::<u64>(),
        rot in 1usize..6,
    ) {
        let shards: Vec<String> = (0..nshards)
            .map(|i| format!("shard-{:x}-{i}", salt & 0xFFFF))
            .collect();
        let mut permuted = shards.clone();
        permuted.rotate_left(rot % nshards);
        permuted.reverse();
        for (name, fp) in synthetic_repos(salt) {
            let a = place(&shards, &name, fp).unwrap();
            let b = place(&permuted, &name, fp).unwrap();
            prop_assert_eq!(&shards[a], &permuted[b], "owner depends on list order");
        }
    }

    #[test]
    fn only_the_changed_shards_repos_move(
        nshards in 3usize..7,
        salt in any::<u64>(),
        removed in 0usize..6,
    ) {
        let shards: Vec<String> = (0..nshards)
            .map(|i| format!("shard-{:x}-{i}", salt & 0xFFFF))
            .collect();
        let removed = removed % nshards;
        let mut without: Vec<String> = shards.clone();
        let gone = without.remove(removed);
        let repos = synthetic_repos(salt);

        // Removal: a repository not owned by the removed shard keeps its
        // owner; the removed shard's repositories redistribute.
        let mut moved = 0u64;
        for (name, fp) in &repos {
            let before = &shards[place(&shards, name, *fp).unwrap()];
            let after = &without[place(&without, name, *fp).unwrap()];
            if before == &gone {
                moved += 1;
                prop_assert_ne!(after, &gone);
            } else {
                prop_assert_eq!(before, after, "unaffected repo moved on removal");
            }
        }
        prop_assert!(moved > 0, "the removed shard owned nothing out of 1k repos");

        // Addition (the inverse view): going from `without` back to
        // `shards`, every mover lands exactly on the re-added shard.
        for (name, fp) in &repos {
            let small = &without[place(&without, name, *fp).unwrap()];
            let big = &shards[place(&shards, name, *fp).unwrap()];
            if small != big {
                prop_assert_eq!(big, &gone, "a mover landed somewhere other than the new shard");
            }
        }
    }
}
