//! Compaction: fold sealed detection-log segments into the columnar
//! container, atomically and crash-safely.
//!
//! The invariant defended at every step is **the log stays authoritative
//! until the container is fsync'd, re-opened, and verified**. The
//! protocol:
//!
//! 1. sweep orphaned `*.xsc.tmp` files (a previous crash mid-write);
//! 2. list sealed segments (the log writer never appends to an existing
//!    file, so everything on disk before our log opens is immutable);
//! 3. merge: prior same-fingerprint container (carry-forward) + every
//!    matching segment's records, keyed by `(repo, frame)` — duplicates
//!    collapse (first write wins; detections are deterministic per
//!    fingerprint, so any copy is the same bytes);
//! 4. write `detections.xsc.tmp`, `fsync` it;
//! 5. *verify*: re-open the temp file through the real reader and run the
//!    eager full-container check ([`ColumnarStore::verify`]);
//! 6. `rename` over `detections.xsc` (atomic on POSIX), `fsync` the
//!    directory;
//! 7. only now delete the folded segments (and `fsync` the directory
//!    again).
//!
//! A crash at any point leaves a readable state: before the rename the old
//! container (if any) plus the full log; after the rename but before the
//! cleanup, the new container plus segments it already contains —
//! duplicates that the keyed merge and the engine's first-fill-wins cache
//! both collapse. Segments with a *different* fingerprint are never
//! folded and never deleted.
//!
//! [`KillPoint`] injects a simulated crash at each boundary for tests; the
//! production entry point [`compact`] never kills.

use crate::format::{build_container, ColumnarStore, OpenError, CONTAINER_NAME, TMP_SUFFIX};
use exsample_detect::Detection;
use exsample_persist::{scan_segment_file, sealed_segments, RecordVerdict, SegmentOutcome};
use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Simulated crash boundaries for crash-safety tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillPoint {
    /// Die after writing only half the temp container, no fsync.
    MidTmpWrite,
    /// Die after the temp container is written, fsync'd, and verified —
    /// but before the atomic rename makes it live.
    BeforeRename,
    /// Die after the rename but before the folded segments are deleted.
    BeforeCleanup,
}

/// Why a compaction did not complete.
#[derive(Debug)]
pub enum CompactError {
    /// Filesystem failure (the log is untouched).
    Io(std::io::Error),
    /// The merged records could not be serialized (pathological shape,
    /// e.g. a chunk id beyond `u32`).
    Build(&'static str),
    /// The freshly written temp container failed re-open verification;
    /// the temp file was removed and the log remains authoritative.
    Verify(String),
}

impl std::fmt::Display for CompactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompactError::Io(e) => write!(f, "compaction io error: {e}"),
            CompactError::Build(why) => write!(f, "compaction build error: {why}"),
            CompactError::Verify(why) => write!(f, "compaction verify error: {why}"),
        }
    }
}

impl std::error::Error for CompactError {}

impl From<std::io::Error> for CompactError {
    fn from(e: std::io::Error) -> Self {
        CompactError::Io(e)
    }
}

/// What one compaction run did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Whether the run reached the end (false only under a [`KillPoint`]).
    pub completed: bool,
    /// Whether a new container was actually written (false when there was
    /// nothing to fold — the existing state was already compact).
    pub rewritten: bool,
    /// Sealed segments folded (and deleted on completion).
    pub segments_folded: u64,
    /// Log records folded out of those segments.
    pub records_folded: u64,
    /// Frames carried forward from the prior container.
    pub carried_frames: u64,
    /// Distinct `(repo, frame)` entries in the new container.
    pub frames: u64,
    /// `(repo, chunk)` column groups in the new container.
    pub groups: u64,
    /// Size of the new container in bytes.
    pub container_bytes: u64,
    /// Bytes of folded segments reclaimed by the cleanup.
    pub reclaimed_bytes: u64,
}

/// Canonical container path inside a persist directory.
pub fn container_path(dir: &Path) -> PathBuf {
    dir.join(CONTAINER_NAME)
}

fn sync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Remove `*.xsc.tmp` leftovers of crashed compactions. Returns how many
/// were swept. Runs before every compaction and every engine startup — a
/// half-written temp file is never readable state.
pub fn sweep_orphans(dir: &Path) -> std::io::Result<u64> {
    let mut swept = 0;
    if !dir.exists() {
        return Ok(swept);
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let is_tmp = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(TMP_SUFFIX));
        if is_tmp && fs::remove_file(&path).is_ok() {
            swept += 1;
            eprintln!(
                "exsample-colstore: swept orphaned compaction temp {}",
                path.display()
            );
        }
    }
    Ok(swept)
}

/// Compact `dir`: fold every sealed segment matching `fingerprint` (plus
/// the prior container, if usable) into a fresh container, then delete
/// the folded segments. No-op (`rewritten: false`) when there is nothing
/// to fold. See the module docs for the crash-safety protocol.
pub fn compact(
    dir: &Path,
    fingerprint: u64,
    chunk_frames: u64,
) -> Result<CompactionReport, CompactError> {
    compact_with_kill(dir, fingerprint, chunk_frames, None)
}

/// [`compact`] with an injected crash for tests: execution stops dead at
/// `kill` (returning `completed: false`), leaving the filesystem exactly
/// as a real crash there would.
pub fn compact_with_kill(
    dir: &Path,
    fingerprint: u64,
    chunk_frames: u64,
    kill: Option<KillPoint>,
) -> Result<CompactionReport, CompactError> {
    let mut report = CompactionReport::default();
    sweep_orphans(dir)?;
    let segments = sealed_segments(dir)?;

    // Carry the prior container forward. A missing container is the
    // common fresh case; a mismatched or damaged one contributes nothing
    // (its data is unusable) and is only *replaced* if this run has
    // something real to write.
    let final_path = container_path(dir);
    let mut merged: BTreeMap<(u32, u64), Vec<Detection>> = BTreeMap::new();
    let prior_usable = match ColumnarStore::open(&final_path, fingerprint) {
        Ok(prior) => {
            let skipped = prior.for_each_frame(|repo, frame, dets| {
                merged.entry((repo, frame)).or_insert_with(|| dets.to_vec());
            });
            if skipped > 0 {
                eprintln!(
                    "exsample-colstore: carried prior container with {skipped} damaged group(s)"
                );
            }
            report.carried_frames = merged.len() as u64;
            true
        }
        Err(OpenError::Missing) => false,
        Err(e) => {
            eprintln!("exsample-colstore: prior container unusable ({e}); will replace");
            false
        }
    };

    // Fold matching segments. A segment is deletable once its surviving
    // records are merged — a damaged tail holds nothing any reader would
    // ever serve. Foreign-fingerprint segments are left alone entirely.
    let mut deletable: Vec<PathBuf> = Vec::new();
    for (_, path) in &segments {
        let outcome = match scan_segment_file(path, fingerprint, |raw| match raw.decode() {
            Ok(rec) => {
                merged.entry((rec.repo, rec.frame)).or_insert(rec.dets);
                RecordVerdict::Keep
            }
            Err(_) => RecordVerdict::Abandon,
        }) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!(
                    "exsample-colstore: leaving unreadable segment {}: {e}",
                    path.display()
                );
                continue;
            }
        };
        if let SegmentOutcome::Loaded { records, .. } = outcome {
            report.segments_folded += 1;
            report.records_folded += records;
            deletable.push(path.clone());
        }
    }

    // Nothing to fold: the current state is already as compact as it
    // gets. Never replace an unusable prior container with an empty one
    // here — that would destroy (stale but intact) bytes for no gain.
    if report.segments_folded == 0 && (prior_usable || merged.is_empty()) {
        report.completed = true;
        return Ok(report);
    }

    let bytes = build_container(&merged, fingerprint, chunk_frames).map_err(CompactError::Build)?;
    report.frames = merged.len() as u64;
    report.container_bytes = bytes.len() as u64;

    // Write + fsync the temp file.
    let tmp_path = dir.join(format!("{CONTAINER_NAME}.tmp"));
    debug_assert!(tmp_path.to_string_lossy().ends_with(TMP_SUFFIX));
    {
        let mut f = File::create(&tmp_path)?;
        if kill == Some(KillPoint::MidTmpWrite) {
            f.write_all(&bytes[..bytes.len() / 2])?;
            f.flush()?;
            return Ok(report);
        }
        f.write_all(&bytes)?;
        f.sync_all()?;
    }

    // Verify through the real reader before the rename: the log stays
    // authoritative until these bytes are proven readable.
    match ColumnarStore::open(&tmp_path, fingerprint) {
        Ok(store) => {
            report.groups = store.group_count() as u64;
            if let Err(why) = store.verify() {
                let _ = fs::remove_file(&tmp_path);
                return Err(CompactError::Verify(why.to_string()));
            }
        }
        Err(e) => {
            let _ = fs::remove_file(&tmp_path);
            return Err(CompactError::Verify(e.to_string()));
        }
    }

    if kill == Some(KillPoint::BeforeRename) {
        return Ok(report);
    }

    fs::rename(&tmp_path, &final_path)?;
    sync_dir(dir)?;
    report.rewritten = true;

    if kill == Some(KillPoint::BeforeCleanup) {
        return Ok(report);
    }

    for path in &deletable {
        let len = fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        match fs::remove_file(path) {
            Ok(()) => report.reclaimed_bytes += len,
            Err(e) => eprintln!(
                "exsample-colstore: folded segment {} not deleted: {e}",
                path.display()
            ),
        }
    }
    sync_dir(dir)?;
    report.completed = true;
    Ok(report)
}
