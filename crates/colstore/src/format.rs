//! The immutable, memory-mapped columnar container format.
//!
//! One file (`detections.xsc`) holds every compacted detection of a
//! persist directory, laid out for the *sampling* access pattern: a warm
//! start touches the fixed header and the chunk index (a few KiB), then
//! reads only the column groups of chunks a query actually samples —
//! O(touched chunks), not O(total detections).
//!
//! ```text
//! [ header     ]  96 bytes, fixed, little-endian (see [`HEADER_LEN`]):
//!                 magic "XSCS" | version u16 | header_len u16
//!                 | fingerprint u64 (detector ⊕ dataset)
//!                 | chunk_frames u64 | groups u32
//!                 | index_off u64 | index_len u64 | index_crc u32
//!                 | data_off u64  | data_len u64  | data_crc u32
//!                 | header_crc u32 | reserved [u8; 24]
//! [ chunk index]  groups × 64-byte entries (see [`INDEX_ENTRY_LEN`]):
//!                 repo u32 | chunk u32 | off u64 | len u64 | crc u32
//!                 | frames u32 | dets u32 | min_frame u64 | max_frame u64
//!                 | max_score f32-bits | score_sum f64-bits
//! [ data       ]  concatenated column groups, one per (repo, chunk)
//! ```
//!
//! Each **column group** packs the detections of one `(repo, chunk)` as
//! four independently-delimited columns (lengths as varints up front):
//! frame ids (first absolute, then strictly-positive deltas, LEB128),
//! per-frame detection counts, scores (raw `f32` bit patterns as
//! varints — bitwise round trip, NaN-safe), and box/class/truth bytes.
//!
//! Integrity is sectioned so damage costs exactly what it touched: the
//! header and chunk index are CRC-verified at [`ColumnarStore::open`]
//! (they are the only bytes open *reads*), while each group's CRC is
//! verified lazily on first touch — a flipped bit inside one chunk turns
//! only that chunk into misses (counted, never fatal), and
//! [`ColumnarStore::verify`] checks everything eagerly for the
//! compactor's write-then-verify step.

use crate::mmap::MappedFile;
use crate::varint::{get_u64, put_u64};
use exsample_detect::Detection;
use exsample_stats::FxHashMap;
use exsample_store::crc::crc32;
use exsample_videosim::{BBox, ClassId, InstanceId};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic of columnar containers ("eXSample Columnar Store").
pub const MAGIC: &[u8; 4] = b"XSCS";
/// Current container format version.
pub const FORMAT_VERSION: u16 = 1;
/// Fixed byte length of the container header.
pub const HEADER_LEN: usize = 96;
/// Fixed byte length of one chunk-index entry.
pub const INDEX_ENTRY_LEN: usize = 64;
/// Canonical container file name inside a persist directory.
pub const CONTAINER_NAME: &str = "detections.xsc";
/// Suffix of in-flight compaction outputs (swept if orphaned by a crash).
pub const TMP_SUFFIX: &str = ".xsc.tmp";

fn read_u16(data: &[u8], off: usize) -> u16 {
    u16::from_le_bytes(data[off..off + 2].try_into().expect("2 bytes"))
}

fn read_u32(data: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(data[off..off + 4].try_into().expect("4 bytes"))
}

fn read_u64(data: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(data[off..off + 8].try_into().expect("8 bytes"))
}

/// One chunk-index entry: where a `(repo, chunk)` group's columns live
/// and what they summarize — enough to answer "is this chunk worth
/// touching?" without reading the columns themselves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexEntry {
    /// Repository id (the engine's durable catalog id).
    pub repo: u32,
    /// Temporal chunk index: `frame / chunk_frames`.
    pub chunk: u32,
    /// Byte offset of the group inside the data section.
    pub off: u64,
    /// Byte length of the group.
    pub len: u64,
    /// CRC-32 of the group bytes (verified on first touch).
    pub crc: u32,
    /// Frames recorded in the group.
    pub frames: u32,
    /// Total detections across those frames.
    pub dets: u32,
    /// Smallest recorded frame id.
    pub min_frame: u64,
    /// Largest recorded frame id.
    pub max_frame: u64,
    /// Maximum non-NaN detection score (−∞ when the group has none).
    pub max_score: f32,
    /// Sum of non-NaN detection scores (belief seeding / ranking hint).
    pub score_sum: f64,
}

impl IndexEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.repo.to_le_bytes());
        out.extend_from_slice(&self.chunk.to_le_bytes());
        out.extend_from_slice(&self.off.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.crc.to_le_bytes());
        out.extend_from_slice(&self.frames.to_le_bytes());
        out.extend_from_slice(&self.dets.to_le_bytes());
        out.extend_from_slice(&self.min_frame.to_le_bytes());
        out.extend_from_slice(&self.max_frame.to_le_bytes());
        out.extend_from_slice(&self.max_score.to_bits().to_le_bytes());
        out.extend_from_slice(&self.score_sum.to_bits().to_le_bytes());
    }

    fn decode(data: &[u8]) -> IndexEntry {
        IndexEntry {
            repo: read_u32(data, 0),
            chunk: read_u32(data, 4),
            off: read_u64(data, 8),
            len: read_u64(data, 16),
            crc: read_u32(data, 24),
            frames: read_u32(data, 28),
            dets: read_u32(data, 32),
            min_frame: read_u64(data, 36),
            max_frame: read_u64(data, 44),
            max_score: f32::from_bits(read_u32(data, 52)),
            score_sum: f64::from_bits(read_u64(data, 56)),
        }
    }
}

/// Why a container file was rejected at [`ColumnarStore::open`].
#[derive(Debug)]
pub enum OpenError {
    /// No container file at the path (a fresh directory — not damage).
    Missing,
    /// File-level IO failure (permissions, unreadable directory).
    Io(std::io::Error),
    /// Structurally invalid: bad magic/version, truncation, a failed
    /// header or index CRC, or out-of-bounds section table.
    Invalid(&'static str),
    /// The container was written under a different detector/dataset
    /// fingerprint — a model or footage upgrade invalidates it.
    FingerprintMismatch {
        /// Fingerprint recorded in the container header.
        found: u64,
        /// Fingerprint the reader expected.
        expected: u64,
    },
}

impl std::fmt::Display for OpenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpenError::Missing => write!(f, "no container file"),
            OpenError::Io(e) => write!(f, "container io error: {e}"),
            OpenError::Invalid(why) => write!(f, "invalid container: {why}"),
            OpenError::FingerprintMismatch { found, expected } => write!(
                f,
                "container fingerprint {found:#x} does not match expected {expected:#x}"
            ),
        }
    }
}

impl std::error::Error for OpenError {}

/// Encode the columns of one `(repo, chunk)` group. `frames` must be
/// sorted by frame id, strictly increasing, and non-empty. Returns the
/// summary the chunk index records.
pub fn encode_group(frames: &[(u64, Vec<Detection>)], out: &mut Vec<u8>) -> GroupSummary {
    debug_assert!(!frames.is_empty(), "groups are never empty");
    debug_assert!(frames.windows(2).all(|w| w[0].0 < w[1].0));
    let mut frames_col = Vec::new();
    let mut counts_col = Vec::new();
    let mut scores_col = Vec::new();
    let mut boxes_col = Vec::new();
    let mut n_dets = 0u64;
    let mut max_score = f32::NEG_INFINITY;
    let mut score_sum = 0.0f64;
    let mut prev = 0u64;
    for (i, (frame, dets)) in frames.iter().enumerate() {
        put_u64(&mut frames_col, if i == 0 { *frame } else { frame - prev });
        prev = *frame;
        put_u64(&mut counts_col, dets.len() as u64);
        n_dets += dets.len() as u64;
        for d in dets {
            put_u64(&mut scores_col, u64::from(d.score.to_bits()));
            if !d.score.is_nan() {
                if d.score > max_score {
                    max_score = d.score;
                }
                score_sum += f64::from(d.score);
            }
            for c in [d.bbox.x1, d.bbox.y1, d.bbox.x2, d.bbox.y2] {
                boxes_col.extend_from_slice(&c.to_le_bytes());
            }
            boxes_col.extend_from_slice(&d.class.0.to_le_bytes());
            match d.truth {
                Some(id) => {
                    boxes_col.push(1);
                    boxes_col.extend_from_slice(&id.0.to_le_bytes());
                }
                None => boxes_col.push(0),
            }
        }
    }
    put_u64(out, frames.len() as u64);
    put_u64(out, n_dets);
    for col in [&frames_col, &counts_col, &scores_col, &boxes_col] {
        put_u64(out, col.len() as u64);
        out.extend_from_slice(col);
    }
    GroupSummary {
        frames: frames.len() as u64,
        dets: n_dets,
        min_frame: frames[0].0,
        max_frame: frames[frames.len() - 1].0,
        max_score,
        score_sum,
    }
}

/// What [`encode_group`] summarizes for the chunk index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupSummary {
    /// Frames in the group.
    pub frames: u64,
    /// Detections in the group.
    pub dets: u64,
    /// Smallest frame id.
    pub min_frame: u64,
    /// Largest frame id.
    pub max_frame: u64,
    /// Maximum non-NaN score (−∞ when none).
    pub max_score: f32,
    /// Sum of non-NaN scores.
    pub score_sum: f64,
}

/// The decoded columns of one group: sorted frame ids plus each frame's
/// detections, reassembled bit-identically to what was encoded.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodedGroup {
    frames: Vec<u64>,
    dets: Vec<Vec<Detection>>,
}

impl DecodedGroup {
    /// The group's sorted frame ids.
    pub fn frames(&self) -> &[u64] {
        &self.frames
    }

    /// Detections of `frame`, if recorded (binary search).
    pub fn get(&self, frame: u64) -> Option<&[Detection]> {
        let i = self.frames.binary_search(&frame).ok()?;
        Some(&self.dets[i])
    }

    /// Iterate `(frame, detections)` in frame order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[Detection])> {
        self.frames
            .iter()
            .zip(&self.dets)
            .map(|(f, d)| (*f, d.as_slice()))
    }
}

/// Decode one group's columns (CRC already verified by the caller).
pub fn decode_group(data: &[u8]) -> Result<DecodedGroup, &'static str> {
    let mut pos = 0usize;
    let bad = |_| "bad group varint";
    let n_frames = get_u64(data, &mut pos).map_err(bad)? as usize;
    let n_dets = get_u64(data, &mut pos).map_err(bad)? as usize;
    // A group can't hold more frames/detections than bytes; reject before
    // allocating on absurd counts.
    if n_frames > data.len() || n_dets > data.len() {
        return Err("group counts exceed payload");
    }
    let mut cols: [&[u8]; 4] = [&[]; 4];
    for col in cols.iter_mut() {
        let len = get_u64(data, &mut pos).map_err(bad)? as usize;
        let end = pos.checked_add(len).ok_or("column length overflow")?;
        if end > data.len() {
            return Err("column exceeds group");
        }
        *col = &data[pos..end];
        pos = end;
    }
    if pos != data.len() {
        return Err("trailing bytes after columns");
    }
    let [frames_col, counts_col, scores_col, boxes_col] = cols;

    let mut frames = Vec::with_capacity(n_frames);
    let mut fpos = 0usize;
    let mut prev = 0u64;
    for i in 0..n_frames {
        let v = get_u64(frames_col, &mut fpos).map_err(bad)?;
        let frame = if i == 0 {
            v
        } else {
            if v == 0 {
                return Err("non-increasing frame delta");
            }
            prev.checked_add(v).ok_or("frame id overflow")?
        };
        frames.push(frame);
        prev = frame;
    }
    if fpos != frames_col.len() {
        return Err("trailing bytes in frame column");
    }

    let mut counts = Vec::with_capacity(n_frames);
    let mut cpos = 0usize;
    let mut total = 0u64;
    for _ in 0..n_frames {
        let c = get_u64(counts_col, &mut cpos).map_err(bad)?;
        total += c;
        counts.push(c as usize);
    }
    if cpos != counts_col.len() {
        return Err("trailing bytes in count column");
    }
    if total != n_dets as u64 {
        return Err("count column disagrees with detection total");
    }

    let mut spos = 0usize;
    let mut bpos = 0usize;
    let mut dets = Vec::with_capacity(n_frames);
    for &count in &counts {
        let mut frame_dets = Vec::with_capacity(count);
        for _ in 0..count {
            let score_bits = get_u64(scores_col, &mut spos).map_err(bad)?;
            let score_bits = u32::try_from(score_bits).map_err(|_| "score bits exceed f32")?;
            if bpos + 19 > boxes_col.len() {
                return Err("box column truncated");
            }
            let x1 = f32::from_le_bytes(boxes_col[bpos..bpos + 4].try_into().expect("4"));
            let y1 = f32::from_le_bytes(boxes_col[bpos + 4..bpos + 8].try_into().expect("4"));
            let x2 = f32::from_le_bytes(boxes_col[bpos + 8..bpos + 12].try_into().expect("4"));
            let y2 = f32::from_le_bytes(boxes_col[bpos + 12..bpos + 16].try_into().expect("4"));
            let class = ClassId(u16::from_le_bytes(
                boxes_col[bpos + 16..bpos + 18].try_into().expect("2"),
            ));
            let tag = boxes_col[bpos + 18];
            bpos += 19;
            let truth = match tag {
                0 => None,
                1 => {
                    if bpos + 4 > boxes_col.len() {
                        return Err("box column truncated");
                    }
                    let id = read_u32(boxes_col, bpos);
                    bpos += 4;
                    Some(InstanceId(id))
                }
                _ => return Err("bad truth tag"),
            };
            frame_dets.push(Detection {
                bbox: BBox { x1, y1, x2, y2 },
                class,
                score: f32::from_bits(score_bits),
                truth,
            });
        }
        dets.push(frame_dets);
    }
    if spos != scores_col.len() {
        return Err("trailing bytes in score column");
    }
    if bpos != boxes_col.len() {
        return Err("trailing bytes in box column");
    }
    Ok(DecodedGroup { frames, dets })
}

/// Serialize a full container from merged `(repo, frame) → detections`
/// records. Frames group into temporal chunks of `chunk_frames`; groups
/// are laid out `(repo, chunk)`-sorted.
///
/// Fails (with a diagnostic, never a panic) only on pathological shapes:
/// a chunk id or per-group count that does not fit the index's `u32`
/// fields.
pub fn build_container(
    records: &BTreeMap<(u32, u64), Vec<Detection>>,
    fingerprint: u64,
    chunk_frames: u64,
) -> Result<Vec<u8>, &'static str> {
    let chunk_frames = chunk_frames.max(1);
    // Group in key order: BTreeMap iteration is (repo, frame)-sorted, so
    // chunks emerge already sorted and each group's frames ascend.
    type GroupBuf = Vec<(u64, Vec<Detection>)>;
    let mut groups: Vec<(u32, u32, GroupBuf)> = Vec::new();
    for ((repo, frame), dets) in records {
        let chunk = u32::try_from(frame / chunk_frames).map_err(|_| "chunk id exceeds u32")?;
        match groups.last_mut() {
            Some((r, c, g)) if *r == *repo && *c == chunk => g.push((*frame, dets.clone())),
            _ => groups.push((*repo, chunk, vec![(*frame, dets.clone())])),
        }
    }
    let mut data = Vec::new();
    let mut index = Vec::with_capacity(groups.len() * INDEX_ENTRY_LEN);
    let n_groups = u32::try_from(groups.len()).map_err(|_| "group count exceeds u32")?;
    for (repo, chunk, frames) in &groups {
        let off = data.len() as u64;
        let mut group = Vec::new();
        let summary = encode_group(frames, &mut group);
        let entry = IndexEntry {
            repo: *repo,
            chunk: *chunk,
            off,
            len: group.len() as u64,
            crc: crc32(&group),
            frames: u32::try_from(summary.frames).map_err(|_| "group frames exceed u32")?,
            dets: u32::try_from(summary.dets).map_err(|_| "group detections exceed u32")?,
            min_frame: summary.min_frame,
            max_frame: summary.max_frame,
            max_score: summary.max_score,
            score_sum: summary.score_sum,
        };
        entry.encode(&mut index);
        data.extend_from_slice(&group);
    }
    let index_off = HEADER_LEN as u64;
    let data_off = index_off + index.len() as u64;
    let mut out = Vec::with_capacity(HEADER_LEN + index.len() + data.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(HEADER_LEN as u16).to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&chunk_frames.to_le_bytes());
    out.extend_from_slice(&n_groups.to_le_bytes());
    out.extend_from_slice(&index_off.to_le_bytes());
    out.extend_from_slice(&(index.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&index).to_le_bytes());
    out.extend_from_slice(&data_off.to_le_bytes());
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(&data).to_le_bytes());
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    out.resize(HEADER_LEN, 0);
    out.extend_from_slice(&index);
    out.extend_from_slice(&data);
    Ok(out)
}

/// State of one lazily-decoded group in the reader.
enum GroupState {
    /// Decoded and CRC-verified.
    Ready(std::sync::Arc<DecodedGroup>),
    /// CRC or decode failure: the chunk is dead (counted), reads miss.
    Damaged,
}

/// The memory-mapped reader over a compacted container.
///
/// Opening validates the header and the chunk index (both CRC-checked) —
/// the only bytes read eagerly. Column groups are decoded on first touch,
/// CRC-verified, and cached; a damaged group is counted and reads of its
/// chunk return `None` (a cache miss, never an error). The mapping is
/// `Sync`: many engines on one host can share one `Arc<ColumnarStore>`,
/// or map the same file independently and share pages through the OS.
pub struct ColumnarStore {
    map: MappedFile,
    fingerprint: u64,
    chunk_frames: u64,
    data_off: usize,
    data_len: usize,
    data_crc: u32,
    index: Vec<IndexEntry>,
    /// `(repo, chunk) → index position`.
    lookup: FxHashMap<(u32, u32), usize>,
    /// Lazily decoded groups by index position.
    groups: Mutex<FxHashMap<usize, GroupState>>,
    /// Bytes actually consulted: header + index at open, plus each
    /// touched group once — the "I/O actually paid" a warm start reads.
    bytes_touched: AtomicU64,
    /// Groups whose CRC or decode failed on touch.
    damaged_groups: AtomicU64,
}

impl ColumnarStore {
    /// Map and validate the container at `path` against
    /// `expected_fingerprint`. See [`OpenError`] for the failure split —
    /// callers treat everything except [`OpenError::Io`] as "no container,
    /// recompute" (never fatal).
    pub fn open(path: &Path, expected_fingerprint: u64) -> Result<ColumnarStore, OpenError> {
        let map = match MappedFile::open(path) {
            Ok(map) => map,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(OpenError::Missing),
            Err(e) => return Err(OpenError::Io(e)),
        };
        let data = &*map;
        if data.len() < HEADER_LEN {
            return Err(OpenError::Invalid("shorter than the fixed header"));
        }
        if &data[..4] != MAGIC {
            return Err(OpenError::Invalid("bad magic"));
        }
        if read_u16(data, 4) != FORMAT_VERSION {
            return Err(OpenError::Invalid("unsupported format version"));
        }
        if read_u16(data, 6) as usize != HEADER_LEN {
            return Err(OpenError::Invalid("unexpected header length"));
        }
        let header_crc = read_u32(data, 68);
        if crc32(&data[..68]) != header_crc {
            return Err(OpenError::Invalid("header checksum mismatch"));
        }
        // The reserved tail sits outside the checksummed prefix; requiring
        // it to be zero keeps every header byte validated (and reserves it
        // for future versions, which will bump FORMAT_VERSION anyway).
        if data[72..HEADER_LEN].iter().any(|&b| b != 0) {
            return Err(OpenError::Invalid("nonzero reserved header bytes"));
        }
        let fingerprint = read_u64(data, 8);
        if fingerprint != expected_fingerprint {
            return Err(OpenError::FingerprintMismatch {
                found: fingerprint,
                expected: expected_fingerprint,
            });
        }
        let chunk_frames = read_u64(data, 16).max(1);
        let n_groups = read_u32(data, 24) as usize;
        let index_off = read_u64(data, 28) as usize;
        let index_len = read_u64(data, 36) as usize;
        let index_crc = read_u32(data, 44);
        let data_off = read_u64(data, 48) as usize;
        let data_len = read_u64(data, 56) as usize;
        let data_crc = read_u32(data, 64);
        if index_len != n_groups * INDEX_ENTRY_LEN {
            return Err(OpenError::Invalid(
                "index length disagrees with group count",
            ));
        }
        let index_end = index_off.checked_add(index_len);
        let data_end = data_off.checked_add(data_len);
        match (index_end, data_end) {
            (Some(ie), Some(de)) if ie <= data.len() && de <= data.len() => {}
            _ => return Err(OpenError::Invalid("section table out of bounds")),
        }
        let index_bytes = &data[index_off..index_off + index_len];
        if crc32(index_bytes) != index_crc {
            return Err(OpenError::Invalid("index checksum mismatch"));
        }
        let mut index = Vec::with_capacity(n_groups);
        let mut lookup = FxHashMap::default();
        for i in 0..n_groups {
            let entry = IndexEntry::decode(&index_bytes[i * INDEX_ENTRY_LEN..]);
            let end = entry.off.checked_add(entry.len);
            if end.is_none() || end.expect("checked") > data_len as u64 {
                return Err(OpenError::Invalid("group extent out of bounds"));
            }
            if lookup.insert((entry.repo, entry.chunk), i).is_some() {
                return Err(OpenError::Invalid("duplicate (repo, chunk) group"));
            }
            index.push(entry);
        }
        Ok(ColumnarStore {
            fingerprint,
            chunk_frames,
            data_off,
            data_len,
            data_crc,
            index,
            lookup,
            groups: Mutex::new(FxHashMap::default()),
            bytes_touched: AtomicU64::new((HEADER_LEN + index_len) as u64),
            damaged_groups: AtomicU64::new(0),
            map,
        })
    }

    /// Fingerprint the container was written under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Temporal chunk width (frames per index chunk).
    pub fn chunk_frames(&self) -> u64 {
        self.chunk_frames
    }

    /// Total container size in bytes.
    pub fn file_len(&self) -> u64 {
        self.map.len() as u64
    }

    /// Chunk-index entries (one per `(repo, chunk)` group).
    pub fn group_count(&self) -> usize {
        self.index.len()
    }

    /// Total frames indexed across all groups.
    pub fn frames_indexed(&self) -> u64 {
        self.index.iter().map(|e| u64::from(e.frames)).sum()
    }

    /// Largest repository id appearing in the index, if any. Engines fold
    /// this into their catalog-reservation safety net so a lost catalog
    /// can never remap container detections onto other footage.
    pub fn max_repo(&self) -> Option<u32> {
        self.index.iter().map(|e| e.repo).max()
    }

    /// Bytes of the mapping actually consulted so far: header + chunk
    /// index, plus each touched group counted once.
    pub fn bytes_touched(&self) -> u64 {
        self.bytes_touched.load(Ordering::Relaxed)
    }

    /// Groups rejected on touch (CRC or decode failure). Damage costs
    /// recomputation of that chunk only, never an error.
    pub fn damaged_groups(&self) -> u64 {
        self.damaged_groups.load(Ordering::Relaxed)
    }

    /// Whether the chunk index *may* hold `(repo, frame)` — index-only
    /// (no column read): true iff the frame's chunk has a group whose
    /// `[min_frame, max_frame]` covers it.
    pub fn covers(&self, repo: u32, frame: u64) -> bool {
        let Ok(chunk) = u32::try_from(frame / self.chunk_frames) else {
            return false;
        };
        self.lookup
            .get(&(repo, chunk))
            .map(|&i| {
                let e = &self.index[i];
                frame >= e.min_frame && frame <= e.max_frame
            })
            .unwrap_or(false)
    }

    /// The chunk-index entries of `repo`, chunk-sorted — per-chunk frame
    /// and detection counts plus score summaries, read without touching
    /// any column bytes (this is what makes belief imports and chunk
    /// prioritization O(index), not O(detections)).
    pub fn chunk_summaries(&self, repo: u32) -> Vec<IndexEntry> {
        let mut entries: Vec<IndexEntry> = self
            .index
            .iter()
            .filter(|e| e.repo == repo)
            .copied()
            .collect();
        entries.sort_by_key(|e| e.chunk);
        entries
    }

    fn group(&self, pos: usize) -> Option<std::sync::Arc<DecodedGroup>> {
        {
            let groups = self.groups.lock().expect("group cache poisoned");
            match groups.get(&pos) {
                Some(GroupState::Ready(g)) => return Some(g.clone()),
                Some(GroupState::Damaged) => return None,
                None => {}
            }
        }
        // Decode outside the cache lock: group decode is the expensive
        // part and must not serialize readers of other chunks. A racing
        // decode of the same group is harmless (identical result).
        let entry = &self.index[pos];
        let start = self.data_off + entry.off as usize;
        let bytes = &self.map[start..start + entry.len as usize];
        self.bytes_touched.fetch_add(entry.len, Ordering::Relaxed);
        let decoded = if crc32(bytes) != entry.crc {
            Err("group checksum mismatch")
        } else {
            decode_group(bytes)
        };
        let state = match decoded {
            Ok(group) => GroupState::Ready(std::sync::Arc::new(group)),
            Err(why) => {
                self.damaged_groups.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "exsample-colstore: chunk (repo {}, chunk {}) unusable: {why}",
                    entry.repo, entry.chunk
                );
                GroupState::Damaged
            }
        };
        let mut groups = self.groups.lock().expect("group cache poisoned");
        let state = groups.entry(pos).or_insert(state);
        match state {
            GroupState::Ready(g) => Some(g.clone()),
            GroupState::Damaged => None,
        }
    }

    /// Detections of `(repo, frame)`, if recorded. Touches (decodes and
    /// CRC-verifies) only the frame's chunk group; `None` on any miss —
    /// unknown chunk, unrecorded frame, or damaged group.
    pub fn get(&self, repo: u32, frame: u64) -> Option<Vec<Detection>> {
        let chunk = u32::try_from(frame / self.chunk_frames).ok()?;
        let &pos = self.lookup.get(&(repo, chunk))?;
        let entry = &self.index[pos];
        if frame < entry.min_frame || frame > entry.max_frame {
            return None;
        }
        self.group(pos)?.get(frame).map(<[_]>::to_vec)
    }

    /// Visit every recorded `(repo, frame, detections)` in `(repo,
    /// chunk, frame)` order, skipping damaged groups. Returns how many
    /// groups were skipped. This is the compactor's carry-forward path —
    /// per-frame readers use [`ColumnarStore::get`].
    pub fn for_each_frame(&self, mut f: impl FnMut(u32, u64, &[Detection])) -> u64 {
        let mut skipped = 0;
        for pos in 0..self.index.len() {
            let repo = self.index[pos].repo;
            match self.group(pos) {
                Some(group) => {
                    for (frame, dets) in group.iter() {
                        f(repo, frame, dets);
                    }
                }
                None => skipped += 1,
            }
        }
        skipped
    }

    /// Eagerly verify everything open deferred: the data-section CRC and
    /// every group (CRC + full column decode). The compactor runs this on
    /// the freshly written temp file before the atomic rename makes it
    /// live — the log stays authoritative until this passes.
    pub fn verify(&self) -> Result<(), &'static str> {
        let data = &self.map[self.data_off..self.data_off + self.data_len];
        if crc32(data) != self.data_crc {
            return Err("data section checksum mismatch");
        }
        for pos in 0..self.index.len() {
            let entry = &self.index[pos];
            let start = self.data_off + entry.off as usize;
            let bytes = &self.map[start..start + entry.len as usize];
            if crc32(bytes) != entry.crc {
                return Err("group checksum mismatch");
            }
            let group = decode_group(bytes)?;
            if group.frames().len() as u64 != u64::from(entry.frames) {
                return Err("index frame count disagrees with column");
            }
        }
        Ok(())
    }
}

impl std::fmt::Debug for ColumnarStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnarStore")
            .field("fingerprint", &self.fingerprint)
            .field("chunk_frames", &self.chunk_frames)
            .field("groups", &self.index.len())
            .field("frames_indexed", &self.frames_indexed())
            .field("file_len", &self.file_len())
            .finish()
    }
}
