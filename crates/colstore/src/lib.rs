//! Memory-mapped columnar detection store.
//!
//! The detection log (`exsample-persist`) is the right *write* path —
//! append-only, crash-safe, cheap per miss — but the wrong *read* shape:
//! every restart replays it linearly, O(total detections) per engine.
//! This crate gives durable detections a read-optimized second life. A
//! [`compact()`] pass folds sealed log segments into one immutable,
//! self-describing columnar container ([`mod@format`]): varint-delta frame-id
//! columns and raw-bit score columns grouped by `(repo, chunk)`, fronted
//! by a per-chunk temporal index. A warm start then maps the file
//! ([`ColumnarStore::open`]) and reads the header plus index — a few KiB —
//! and pays column I/O only for chunks a query actually touches.
//!
//! Division of labor with the log:
//!
//! * the **log** is authoritative and takes every new write;
//! * the **container** is a compacted, verified snapshot of sealed
//!   segments — replaced atomically, never mutated;
//! * compaction deletes only segments whose content the verified
//!   container provably holds; a crash anywhere leaves a correct (at
//!   worst duplicated, never lossy) combined state.
//!
//! Because the container is immutable and read via `mmap`, any number of
//! engines on one host share a single page-cache copy of the columns —
//! zero-copy, no per-engine heap duplication.

#![warn(missing_docs)]

pub mod compact;
pub mod format;
pub mod mmap;
pub mod varint;

pub use compact::{
    compact, compact_with_kill, container_path, sweep_orphans, CompactError, CompactionReport,
    KillPoint,
};
pub use format::{
    build_container, decode_group, encode_group, ColumnarStore, DecodedGroup, GroupSummary,
    IndexEntry, OpenError, CONTAINER_NAME, FORMAT_VERSION, HEADER_LEN, MAGIC, TMP_SUFFIX,
};
pub use mmap::MappedFile;
