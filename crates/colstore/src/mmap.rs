//! Read-only file mappings for zero-copy container access.
//!
//! A compacted container is immutable, so every engine on a host can map
//! the same file and share one copy of its pages: reads go straight
//! through the page cache with no per-engine heap copy of the column
//! data. On Unix this is a real `mmap(PROT_READ, MAP_SHARED)` (declared
//! directly against the libc the standard library already links — this
//! build environment has no `libc` crate); elsewhere the file is read
//! into an owned buffer with identical semantics, just without the
//! sharing.

use std::fs::File;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use core::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_SHARED: i32 = 1;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

enum Backing {
    /// Live `mmap` region (Unix). `ptr` is non-null and `len > 0`.
    #[cfg(unix)]
    Mapped { ptr: *const u8, len: usize },
    /// Owned fallback: empty files (zero-length maps are invalid) and
    /// non-Unix targets.
    Owned(Vec<u8>),
}

/// A read-only view of a whole file, `Deref`-able to `&[u8]`.
///
/// The mapping is private to this value and unmapped on drop; clones of
/// the *data* are never taken — readers slice directly into it.
pub struct MappedFile {
    backing: Backing,
}

// SAFETY: the region is mapped PROT_READ and never mutated or remapped
// after construction; concurrent reads from any thread are safe.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Map `path` read-only. Empty files yield an empty (owned) view.
    pub fn open(path: &Path) -> std::io::Result<MappedFile> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(MappedFile {
                backing: Backing::Owned(Vec::new()),
            });
        }
        Self::from_file(&file, len as usize)
    }

    #[cfg(unix)]
    fn from_file(file: &File, len: usize) -> std::io::Result<MappedFile> {
        use std::os::unix::io::AsRawFd;
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() || ptr.is_null() {
            return Err(std::io::Error::last_os_error());
        }
        Ok(MappedFile {
            backing: Backing::Mapped {
                ptr: ptr as *const u8,
                len,
            },
        })
    }

    #[cfg(not(unix))]
    fn from_file(file: &File, _len: usize) -> std::io::Result<MappedFile> {
        use std::io::Read;
        let mut buf = Vec::new();
        let mut file = file;
        file.read_to_end(&mut buf)?;
        Ok(MappedFile {
            backing: Backing::Owned(buf),
        })
    }
}

impl std::ops::Deref for MappedFile {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            // SAFETY: ptr/len describe a live PROT_READ mapping owned by
            // this value; it stays valid until drop.
            Backing::Mapped { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Owned(buf) => buf,
        }
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: exactly one munmap per successful mmap.
            unsafe {
                sys::munmap(ptr as *mut core::ffi::c_void, len);
            }
        }
    }
}

impl std::fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents() {
        let dir =
            std::env::temp_dir().join(format!("exsample-colstore-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert_eq!(&*map, &payload[..]);
        // Two independent mappings of one file see identical bytes.
        let again = MappedFile::open(&path).unwrap();
        assert_eq!(&*again, &*map);
        drop(map);
        drop(again);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_file_is_empty_view() {
        let dir =
            std::env::temp_dir().join(format!("exsample-colstore-mmap0-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let map = MappedFile::open(&path).unwrap();
        assert!(map.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(MappedFile::open(Path::new("/nonexistent/exsample-colstore")).is_err());
    }
}
