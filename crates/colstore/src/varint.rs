//! LEB128 variable-length integers — the column compression primitive.
//!
//! Frame-id columns store the first frame absolute and every subsequent
//! frame as a delta (strictly positive, since a group's frames are sorted
//! and unique), so dense chunks compress to ~1 byte per frame. Score
//! columns store raw IEEE-754 `f32` bit patterns as varints — the value
//! round-trips **bitwise** (NaN payloads included), which keeps persisted
//! detections byte-identical to what the detector produced.

/// Maximum encoded length of a `u64` (10 × 7 bits ≥ 64 bits).
pub const MAX_VARINT_LEN: usize = 10;

/// Append `v` to `out` in LEB128 (little-endian base-128) encoding.
pub fn put_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode failure inside a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VarintError(pub &'static str);

impl std::fmt::Display for VarintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed varint: {}", self.0)
    }
}

impl std::error::Error for VarintError {}

/// Read one LEB128 `u64` from `data` starting at `*pos`, advancing `*pos`
/// past it. Rejects truncation and encodings longer than
/// [`MAX_VARINT_LEN`] (which would silently wrap).
pub fn get_u64(data: &[u8], pos: &mut usize) -> Result<u64, VarintError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = data.get(*pos) else {
            return Err(VarintError("truncated"));
        };
        *pos += 1;
        if shift == 63 && byte > 1 {
            return Err(VarintError("overflows u64"));
        }
        v |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(VarintError("overflows u64"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) -> usize {
        let mut buf = Vec::new();
        put_u64(&mut buf, v);
        let mut pos = 0;
        assert_eq!(get_u64(&buf, &mut pos), Ok(v));
        assert_eq!(pos, buf.len());
        buf.len()
    }

    #[test]
    fn round_trips_and_lengths() {
        assert_eq!(round_trip(0), 1);
        assert_eq!(round_trip(127), 1);
        assert_eq!(round_trip(128), 2);
        assert_eq!(round_trip(16_383), 2);
        assert_eq!(round_trip(16_384), 3);
        assert_eq!(round_trip(u64::MAX), MAX_VARINT_LEN);
        for shift in 0..64 {
            round_trip(1u64 << shift);
            round_trip((1u64 << shift).wrapping_sub(1));
        }
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(get_u64(&buf[..cut], &mut pos).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn overlong_and_overflowing_rejected() {
        // 11 continuation bytes: longer than any canonical u64.
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert!(get_u64(&buf, &mut pos).is_err());
        // 10 bytes whose top bits exceed 64 bits of payload.
        let buf = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F];
        let mut pos = 0;
        assert!(get_u64(&buf, &mut pos).is_err());
    }
}
