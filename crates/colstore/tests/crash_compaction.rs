//! Crash-safety tests for the compactor: a simulated kill at every
//! protocol boundary must leave the detection log authoritative, leak no
//! readable garbage, and let the next clean compaction converge to the
//! exact same container with no loss and no duplicates.

use exsample_colstore::{
    compact, compact_with_kill, container_path, sweep_orphans, ColumnarStore, KillPoint, TMP_SUFFIX,
};
use exsample_detect::Detection;
use exsample_persist::{scan_detections, sealed_segments, DetectionLog, PersistConfig};
use exsample_videosim::{BBox, ClassId, InstanceId};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

const FINGERPRINT: u64 = 0xC0FFEE;
const CHUNK_FRAMES: u64 = 64;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn make_det(seed: u64) -> Detection {
    let f = |shift: u64| ((seed >> shift) & 0xFF) as f32;
    Detection {
        bbox: BBox::new(f(0), f(8), f(0) + 10.0, f(8) + 10.0),
        class: ClassId((seed % 7) as u16),
        score: (seed % 1000) as f32 / 1000.0,
        truth: if seed.is_multiple_of(3) {
            None
        } else {
            Some(InstanceId((seed >> 16) as u32))
        },
    }
}

/// Write `n` records across several sealed segments and return the
/// ground-truth `(repo, frame) → detections` map.
fn seed_log(dir: &Path, n: u64) -> BTreeMap<(u32, u64), Vec<Detection>> {
    let cfg = PersistConfig::new(dir)
        .fingerprint(FINGERPRINT)
        .segment_records(16)
        .flush_every(1);
    let mut log = DetectionLog::open(&cfg).expect("open log");
    let mut truth = BTreeMap::new();
    for i in 0..n {
        let repo = (i % 3) as u32;
        let frame = i * 5 + u64::from(repo);
        let dets = vec![make_det(i.wrapping_mul(0x9E37_79B9)), make_det(i ^ 0xDEAD)];
        log.append(repo, frame, &dets);
        truth.insert((repo, frame), dets);
    }
    assert_eq!(log.write_errors(), 0);
    drop(log);
    truth
}

/// Everything currently readable from the log segments.
fn log_view(dir: &Path) -> BTreeMap<(u32, u64), Vec<Detection>> {
    let mut out = BTreeMap::new();
    scan_detections(dir, FINGERPRINT, |rec| {
        assert!(
            out.insert((rec.repo, rec.frame), rec.dets).is_none(),
            "log replay produced a duplicate record"
        );
    })
    .expect("scan log");
    out
}

/// Everything a restarted engine would see: container (when live and
/// matching) unioned with the log — the exact merge the engine performs.
fn merged_view(dir: &Path) -> BTreeMap<(u32, u64), Vec<Detection>> {
    let mut out = BTreeMap::new();
    if let Ok(store) = ColumnarStore::open(&container_path(dir), FINGERPRINT) {
        store.for_each_frame(|repo, frame, dets| {
            out.insert((repo, frame), dets.to_vec());
        });
    }
    for (key, dets) in log_view(dir) {
        out.entry(key).or_insert(dets);
    }
    out
}

fn container_view(dir: &Path) -> BTreeMap<(u32, u64), Vec<Detection>> {
    let store = ColumnarStore::open(&container_path(dir), FINGERPRINT).expect("open container");
    let mut out = BTreeMap::new();
    let skipped = store.for_each_frame(|repo, frame, dets| {
        out.insert((repo, frame), dets.to_vec());
    });
    assert_eq!(skipped, 0, "container has damaged groups");
    out
}

fn tmp_files(dir: &Path) -> Vec<PathBuf> {
    std::fs::read_dir(dir)
        .expect("read dir")
        .filter_map(|e| {
            let p = e.expect("entry").path();
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(TMP_SUFFIX))
                .then_some(p)
        })
        .collect()
}

#[test]
fn kill_mid_tmp_write_leaves_log_authoritative() {
    let dir = scratch_dir("kill-mid-tmp-write");
    let truth = seed_log(&dir, 100);

    let report = compact_with_kill(
        &dir,
        FINGERPRINT,
        CHUNK_FRAMES,
        Some(KillPoint::MidTmpWrite),
    )
    .expect("killed run still returns");
    assert!(!report.completed);
    assert!(!report.rewritten);

    // The crash left a half-written temp file; it is not readable state.
    assert_eq!(tmp_files(&dir).len(), 1, "expected the torn temp file");
    assert!(!container_path(&dir).exists());
    assert_eq!(log_view(&dir), truth, "log damaged by a failed compaction");
    assert_eq!(merged_view(&dir), truth);

    // Recovery: the next compaction sweeps the orphan and completes.
    let report = compact(&dir, FINGERPRINT, CHUNK_FRAMES).expect("clean compact");
    assert!(report.completed && report.rewritten);
    assert_eq!(report.frames, truth.len() as u64);
    assert!(tmp_files(&dir).is_empty());
    assert!(sealed_segments(&dir).expect("list").is_empty());
    assert_eq!(container_view(&dir), truth);
    assert_eq!(merged_view(&dir), truth);
}

#[test]
fn kill_before_rename_leaves_log_authoritative() {
    let dir = scratch_dir("kill-before-rename");
    let truth = seed_log(&dir, 100);

    let report = compact_with_kill(
        &dir,
        FINGERPRINT,
        CHUNK_FRAMES,
        Some(KillPoint::BeforeRename),
    )
    .expect("killed run still returns");
    assert!(!report.completed);
    assert!(!report.rewritten);

    // Fully written and verified, but never made live: still just a temp.
    assert_eq!(tmp_files(&dir).len(), 1);
    assert!(!container_path(&dir).exists());
    assert_eq!(log_view(&dir), truth);
    assert_eq!(merged_view(&dir), truth);

    // An explicit sweep (what an engine restart does) removes the orphan.
    assert_eq!(sweep_orphans(&dir).expect("sweep"), 1);
    assert!(tmp_files(&dir).is_empty());

    let report = compact(&dir, FINGERPRINT, CHUNK_FRAMES).expect("clean compact");
    assert!(report.completed && report.rewritten);
    assert!(sealed_segments(&dir).expect("list").is_empty());
    assert_eq!(container_view(&dir), truth);
}

#[test]
fn kill_before_cleanup_duplicates_but_never_loses() {
    let dir = scratch_dir("kill-before-cleanup");
    let truth = seed_log(&dir, 100);
    let n_segments = sealed_segments(&dir).expect("list").len();
    assert!(n_segments > 1, "test needs several segments");

    let report = compact_with_kill(
        &dir,
        FINGERPRINT,
        CHUNK_FRAMES,
        Some(KillPoint::BeforeCleanup),
    )
    .expect("killed run still returns");
    assert!(!report.completed);
    assert!(report.rewritten, "rename already happened");

    // Both the container and the folded segments exist: duplicated state,
    // and the keyed merge collapses it without loss.
    assert!(container_path(&dir).exists());
    assert_eq!(sealed_segments(&dir).expect("list").len(), n_segments);
    assert_eq!(container_view(&dir), truth);
    assert_eq!(log_view(&dir), truth);
    assert_eq!(merged_view(&dir), truth);

    // The follow-up compaction carries the container, re-folds the
    // segments (pure duplicates), and finally deletes them.
    let report = compact(&dir, FINGERPRINT, CHUNK_FRAMES).expect("clean compact");
    assert!(report.completed && report.rewritten);
    assert_eq!(report.carried_frames, truth.len() as u64);
    assert_eq!(
        report.frames,
        truth.len() as u64,
        "duplicates not collapsed"
    );
    assert!(sealed_segments(&dir).expect("list").is_empty());
    assert_eq!(container_view(&dir), truth);
    assert_eq!(merged_view(&dir), truth);
}

#[test]
fn every_kill_point_chain_converges() {
    // A worst-case history: crash at every boundary in sequence, with new
    // records arriving between crashes. Nothing may be lost at any step.
    let dir = scratch_dir("kill-chain");
    let mut truth = seed_log(&dir, 60);

    for (round, kill) in [
        KillPoint::MidTmpWrite,
        KillPoint::BeforeRename,
        KillPoint::BeforeCleanup,
    ]
    .into_iter()
    .enumerate()
    {
        let report = compact_with_kill(&dir, FINGERPRINT, CHUNK_FRAMES, Some(kill))
            .expect("killed run still returns");
        assert!(!report.completed);
        assert_eq!(merged_view(&dir), truth, "loss after {kill:?}");

        // More records land after the crash (a new engine incarnation).
        let cfg = PersistConfig::new(&dir)
            .fingerprint(FINGERPRINT)
            .segment_records(16)
            .flush_every(1);
        let mut log = DetectionLog::open(&cfg).expect("reopen log");
        for i in 0..10u64 {
            let frame = 10_000 + round as u64 * 100 + i;
            let dets = vec![make_det(frame)];
            log.append(9, frame, &dets);
            truth.insert((9, frame), dets);
        }
        drop(log);
        assert_eq!(merged_view(&dir), truth, "append lost after {kill:?}");
    }

    let report = compact(&dir, FINGERPRINT, CHUNK_FRAMES).expect("final compact");
    assert!(report.completed && report.rewritten);
    assert_eq!(container_view(&dir), truth);
    assert!(sealed_segments(&dir).expect("list").is_empty());
    assert_eq!(merged_view(&dir), truth);
}

#[test]
fn no_op_and_foreign_fingerprint_segments_survive() {
    let dir = scratch_dir("compact-noop-foreign");

    // Empty directory: a completed no-op, nothing written.
    let report = compact(&dir, FINGERPRINT, CHUNK_FRAMES).expect("empty compact");
    assert!(report.completed && !report.rewritten);
    assert!(!container_path(&dir).exists());

    // Segments under a different fingerprint are never folded or deleted.
    let foreign = seed_log(&dir, 30);
    let report = compact(&dir, FINGERPRINT ^ 1, CHUNK_FRAMES).expect("foreign compact");
    assert!(report.completed && !report.rewritten);
    assert_eq!(report.segments_folded, 0);
    assert!(!container_path(&dir).exists());
    assert_eq!(
        log_view(&dir),
        foreign,
        "foreign segments must be untouched"
    );

    // The matching compactor folds them fine afterwards.
    let report = compact(&dir, FINGERPRINT, CHUNK_FRAMES).expect("matching compact");
    assert!(report.completed && report.rewritten);
    assert_eq!(container_view(&dir), foreign);
}
