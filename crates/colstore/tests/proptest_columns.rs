//! Property tests for the columnar container codec: bytewise round-trip
//! identity of the varint columns (NaN score bit patterns included),
//! full-container build→open→read identity, and rejection (never silent
//! acceptance) of truncation and single-byte corruption through the
//! section CRCs.

use exsample_colstore::{
    build_container, decode_group, encode_group, ColumnarStore, OpenError, HEADER_LEN,
};
use exsample_detect::Detection;
use exsample_videosim::{BBox, ClassId, InstanceId};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Expand case words into a deterministic `(repo, frame) → detections`
/// record map (duplicates collapse via the map).
fn make_records(keys: &[u64], repos: u32, span: u64) -> BTreeMap<(u32, u64), Vec<Detection>> {
    let mut records = BTreeMap::new();
    for &word in keys {
        let repo = (word % u64::from(repos)) as u32;
        let frame = (word >> 8) % span;
        records.insert((repo, frame), vec![make_det(word.rotate_left(13))]);
    }
    records
}

/// Deterministically expand a case word into a detection. The score is
/// raw `f32` bits — NaNs, infinities, subnormals, `-0.0` all occur and
/// must survive the column round trip bit-exactly.
fn make_det(word: u64) -> Detection {
    let f = |shift: u64| ((word >> shift) & 0xFFFF) as f32 * 0.125 - 1000.0;
    Detection {
        bbox: BBox {
            x1: f(0),
            y1: f(8),
            x2: f(16),
            y2: f(24),
        },
        class: ClassId((word >> 40) as u16),
        score: f32::from_bits((word >> 17) as u32),
        truth: if word & 1 == 0 {
            None
        } else {
            Some(InstanceId((word >> 5) as u32))
        },
    }
}

/// Build a sorted, unique `(frame, detections)` group from case input.
fn make_group(frames: &[u64], words: &[u64]) -> Vec<(u64, Vec<Detection>)> {
    let unique: BTreeSet<u64> = frames.iter().copied().collect();
    unique
        .into_iter()
        .map(|f| {
            let dets = words
                .iter()
                .take((f as usize % words.len().max(1)).max(1).min(words.len()))
                .map(|&w| make_det(w ^ f))
                .collect();
            (f, dets)
        })
        .collect()
}

fn unique_tmp_dir() -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "exsample-colstore-prop-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Bit-exact detection comparison (`==` on `f32` treats NaN as unequal,
/// which would mask a perfectly preserved NaN payload).
fn same_bits(a: &Detection, b: &Detection) -> bool {
    a.bbox.x1.to_bits() == b.bbox.x1.to_bits()
        && a.bbox.y1.to_bits() == b.bbox.y1.to_bits()
        && a.bbox.x2.to_bits() == b.bbox.x2.to_bits()
        && a.bbox.y2.to_bits() == b.bbox.y2.to_bits()
        && a.class == b.class
        && a.score.to_bits() == b.score.to_bits()
        && a.truth == b.truth
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// encode → decode → re-encode reproduces the exact bytes: the
    /// strongest identity the columns can have, and NaN-safe for free.
    #[test]
    fn group_columns_round_trip_bytewise(
        frames in prop::collection::vec(0u64..1_000_000, 1..40),
        words in prop::collection::vec(any::<u64>(), 1..16),
    ) {
        let group = make_group(&frames, &words);
        let mut bytes = Vec::new();
        let summary = encode_group(&group, &mut bytes);
        let decoded = decode_group(&bytes).expect("own encoding decodes");
        prop_assert_eq!(decoded.frames().len(), group.len());
        prop_assert_eq!(summary.frames as usize, group.len());
        for ((frame, dets), decoded_frame) in group.iter().zip(decoded.frames()) {
            prop_assert_eq!(frame, decoded_frame);
            let got = decoded.get(*frame).expect("frame present");
            prop_assert_eq!(got.len(), dets.len());
            for (a, b) in got.iter().zip(dets) {
                prop_assert!(same_bits(a, b), "detection bits changed");
            }
        }
        let reencoded: Vec<(u64, Vec<Detection>)> = decoded
            .iter()
            .map(|(f, d)| (f, d.to_vec()))
            .collect();
        let mut bytes2 = Vec::new();
        encode_group(&reencoded, &mut bytes2);
        prop_assert_eq!(bytes, bytes2, "re-encode is not bytewise identical");
    }

    /// A full container round-trips through the mmap reader: every
    /// `(repo, frame)` reads back bit-identically, nothing extra appears.
    #[test]
    fn container_build_open_read_identity(
        keys in prop::collection::vec(any::<u64>(), 1..60),
        words in prop::collection::vec(any::<u64>(), 1..8),
        chunk_frames in 1u64..10_000,
        fingerprint in any::<u64>(),
    ) {
        let mut records = make_records(&keys, 4, 100_000);
        for ((repo, frame), dets) in records.iter_mut() {
            *dets = words
                .iter()
                .map(|&w| make_det(w ^ *frame ^ u64::from(*repo)))
                .collect();
        }
        let bytes = build_container(&records, fingerprint, chunk_frames).expect("build");
        let dir = unique_tmp_dir();
        let path = dir.join("detections.xsc");
        std::fs::write(&path, &bytes).expect("write container");
        let store = ColumnarStore::open(&path, fingerprint).expect("open own container");
        prop_assert_eq!(store.frames_indexed(), records.len() as u64);
        for ((repo, frame), dets) in &records {
            prop_assert!(store.covers(*repo, *frame));
            let got = store.get(*repo, *frame).expect("recorded frame");
            prop_assert_eq!(got.len(), dets.len());
            for (a, b) in got.iter().zip(dets) {
                prop_assert!(same_bits(a, b), "container altered a detection");
            }
        }
        // Unrecorded neighbours miss rather than alias.
        let probes: Vec<(u32, u64)> = records.keys().take(8).copied().collect();
        for (repo, frame) in probes {
            if !records.contains_key(&(repo, frame + 1)) {
                prop_assert_eq!(store.get(repo, frame + 1), None);
            }
        }
        prop_assert_eq!(store.damaged_groups(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating the container anywhere is detected at open (the header
    /// and index are length- and CRC-guarded), or — if only column data
    /// is lost — at first touch of an affected group; a truncated file
    /// never serves altered detections.
    #[test]
    fn truncation_never_serves_silently(
        keys in prop::collection::vec(any::<u64>(), 1..30),
        cut in any::<prop::sample::Index>(),
    ) {
        let records = make_records(&keys, 3, 50_000);
        let bytes = build_container(&records, 7, 512).expect("build");
        let cut = cut.index(bytes.len()); // strictly shorter
        let dir = unique_tmp_dir();
        let path = dir.join("detections.xsc");
        std::fs::write(&path, &bytes[..cut]).expect("write truncated");
        match ColumnarStore::open(&path, 7) {
            Err(_) => {} // rejected outright: fine
            Ok(store) => {
                // Open can only succeed when header + full index survived,
                // i.e. only column data was cut. Every surviving read must
                // be pristine; reads into the lost suffix must miss.
                prop_assert!(cut >= HEADER_LEN);
                let mut served = 0u64;
                for ((repo, frame), dets) in &records {
                    if let Some(got) = store.get(*repo, *frame) {
                        prop_assert_eq!(got.len(), dets.len());
                        for (a, b) in got.iter().zip(dets) {
                            prop_assert!(same_bits(a, b));
                        }
                        served += 1;
                    }
                }
                prop_assert!(
                    served < records.len() as u64 || cut >= bytes.len(),
                    "cut at {cut} of {} lost no data", bytes.len()
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Any single-byte flip anywhere in the container is caught by the
    /// header CRC, the index CRC, or a group CRC: reads after the flip
    /// are refused (open error or per-chunk miss), never silently wrong.
    #[test]
    fn any_single_byte_flip_is_never_served_silently(
        keys in prop::collection::vec(any::<u64>(), 1..30),
        victim in any::<prop::sample::Index>(),
        flip in 1u32..256,
    ) {
        let records = make_records(&keys, 3, 50_000);
        let bytes = build_container(&records, 7, 512).expect("build");
        let mut flipped = bytes.clone();
        let idx = victim.index(flipped.len());
        flipped[idx] ^= flip as u8;
        let dir = unique_tmp_dir();
        let path = dir.join("detections.xsc");
        std::fs::write(&path, &flipped).expect("write flipped");
        match ColumnarStore::open(&path, 7) {
            Err(OpenError::Io(e)) => panic!("unexpected io error: {e}"),
            Err(_) => {} // header/index damage rejects the whole file
            Ok(store) => {
                // Data-section damage: the flipped group's CRC fails on
                // touch, everything else reads back pristine.
                let mut missed = 0u64;
                for ((repo, frame), dets) in &records {
                    match store.get(*repo, *frame) {
                        None => missed += 1,
                        Some(got) => {
                            prop_assert_eq!(got.len(), dets.len());
                            for (a, b) in got.iter().zip(dets) {
                                prop_assert!(
                                    same_bits(a, b),
                                    "flip at {} served altered data", idx
                                );
                            }
                        }
                    }
                }
                prop_assert!(missed > 0, "flip at {idx} went unnoticed");
                prop_assert!(store.damaged_groups() > 0);
                // The eager full check also notices.
                prop_assert!(store.verify().is_err());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
