//! Diagnostic: per-step cost of the ExSample sampler as a function of the
//! chunk count, exercising the grouped max-Gamma scoring path.
//!
//! ```text
//! cargo run --release -p exsample-core --example steptime
//! ```

use exsample_core::{exsample::*, policy::SamplingPolicy, Chunking, Feedback};
use exsample_stats::Rng64;

fn main() {
    for m in [60usize, 128, 1024, 1600] {
        let mut p = ExSample::new(Chunking::even(16_000_000, m), ExSampleConfig::default());
        let mut rng = Rng64::new(1);
        let t = std::time::Instant::now();
        let steps = 50_000;
        for _ in 0..steps {
            let f = p.next_frame(&mut rng).expect("frames remain");
            p.feedback(f, Feedback::NONE);
        }
        println!(
            "M={m}: {:.2} us/step",
            t.elapsed().as_secs_f64() * 1e6 / steps as f64
        );
    }
}
