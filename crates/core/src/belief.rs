//! Per-chunk belief state and chunk-selection rules.
//!
//! The heart of the paper: chunk `j`'s expected number of *new* results
//! from one more sample is estimated by the Good–Turing style statistic
//! `R̂_j(n_j + 1) = N1_j / n_j` (Eq. III.1), whose sampling uncertainty is
//! modelled as `R_j ~ Gamma(α = N1_j + α0, β = n_j + β0)` (Eq. III.4).
//! The Gamma shape matches the estimator's mean `N1/n` and the variance
//! bound `Var[R̂] <= E[R̂]/n` (Eq. III.3), and stays well-defined through
//! `N1 = 0` thanks to the `α0 = 0.1, β0 = 1` prior.

use exsample_stats::dist::{Continuous, Gamma};
use exsample_stats::Rng64;

/// Sufficient statistics of one chunk.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChunkStats {
    /// `N1`: number of distinct results seen **exactly once** so far in
    /// this chunk. Incremented by new results (`d0`), decremented when a
    /// result is matched for the second time (`d1`).
    pub n1: f64,
    /// `n`: number of frames sampled from this chunk.
    pub n: u64,
}

impl ChunkStats {
    /// Fold one frame's outcome into the statistics (Algorithm 1 lines
    /// 11-12). `N1` is clamped at zero: with a noisy discriminator a
    /// second match can occasionally arrive without its first having been
    /// credited here.
    pub fn update(&mut self, new_results: u32, matched_once: u32) {
        self.n1 = (self.n1 + new_results as f64 - matched_once as f64).max(0.0);
        self.n += 1;
    }
}

/// Prior pseudo-counts `(α0, β0)` added to `(N1, n)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeliefPrior {
    /// Added to the Gamma shape; keeps the belief sampleable at `N1 = 0`.
    pub alpha0: f64,
    /// Added to the Gamma rate; keeps the belief proper at `n = 0`.
    pub beta0: f64,
}

impl Default for BeliefPrior {
    /// The paper's values: `α0 = 0.1`, `β0 = 1` ("we did not observe a
    /// strong dependence on this value choice").
    fn default() -> Self {
        BeliefPrior {
            alpha0: 0.1,
            beta0: 1.0,
        }
    }
}

impl BeliefPrior {
    /// New prior.
    ///
    /// # Panics
    /// Panics unless both pseudo-counts are positive (the Gamma is not
    /// defined at zero).
    pub fn new(alpha0: f64, beta0: f64) -> Self {
        assert!(
            alpha0 > 0.0 && beta0 > 0.0,
            "prior pseudo-counts must be positive"
        );
        BeliefPrior { alpha0, beta0 }
    }

    /// The belief distribution for a chunk (Eq. III.4).
    pub fn belief(&self, s: &ChunkStats) -> Gamma {
        Gamma::new(s.n1 + self.alpha0, s.n as f64 + self.beta0)
    }

    /// Posterior-mean point estimate `(N1 + α0) / (n + β0)` — the smoothed
    /// version of Eq. III.1.
    pub fn point_estimate(&self, s: &ChunkStats) -> f64 {
        (s.n1 + self.alpha0) / (s.n as f64 + self.beta0)
    }

    /// One Thompson draw from the chunk's belief.
    pub fn thompson_draw(&self, s: &ChunkStats, rng: &mut Rng64) -> f64 {
        self.belief(s).sample(rng)
    }

    /// Bayes-UCB score: the `1 - 1/(t+1)` upper quantile of the belief
    /// (Kaufmann's index policy, referenced in paper §III-C as performing
    /// indistinguishably from Thompson sampling).
    pub fn bayes_ucb(&self, s: &ChunkStats, step: u64) -> f64 {
        let q = (1.0 - 1.0 / (step as f64 + 2.0)).min(0.999_999);
        self.belief(s).inv_cdf(q)
    }
}

/// Which chunk-selection rule to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Selector {
    /// Thompson sampling over the Gamma beliefs (the paper's default).
    #[default]
    Thompson,
    /// Deterministic Bayes-UCB upper-quantile index.
    BayesUcb,
    /// Greedy argmax of the point estimate — the strawman §III-B warns
    /// about (gets stuck on early luck); kept for ablations.
    Greedy,
}

impl Selector {
    /// Score a chunk under this rule.
    pub fn score(&self, prior: &BeliefPrior, s: &ChunkStats, step: u64, rng: &mut Rng64) -> f64 {
        match self {
            Selector::Thompson => prior.thompson_draw(s, rng),
            Selector::BayesUcb => prior.bayes_ucb(s, step),
            Selector::Greedy => prior.point_estimate(s),
        }
    }

    /// Short identifier for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Selector::Thompson => "thompson",
            Selector::BayesUcb => "bayes-ucb",
            Selector::Greedy => "greedy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_tracks_n1_and_n() {
        let mut s = ChunkStats::default();
        s.update(2, 0); // two new results
        assert_eq!(s.n1, 2.0);
        assert_eq!(s.n, 1);
        s.update(1, 1); // one new, one seen again
        assert_eq!(s.n1, 2.0);
        assert_eq!(s.n, 2);
        s.update(0, 2); // two seen again
        assert_eq!(s.n1, 0.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn n1_clamped_at_zero() {
        let mut s = ChunkStats::default();
        s.update(0, 5);
        assert_eq!(s.n1, 0.0);
    }

    #[test]
    fn belief_mean_matches_point_estimate() {
        let prior = BeliefPrior::default();
        let s = ChunkStats { n1: 7.0, n: 100 };
        let g = prior.belief(&s);
        assert!((g.mean() - prior.point_estimate(&s)).abs() < 1e-12);
        // Mean ≈ N1/n for n >> prior.
        assert!((g.mean() - 0.07).abs() < 0.001);
    }

    #[test]
    fn belief_variance_matches_eq_iii_3_shape() {
        // Var = α/β² = mean/β ≈ E[R̂]/n: the paper's variance bound.
        let prior = BeliefPrior::new(0.1, 1.0);
        let s = ChunkStats { n1: 10.0, n: 50 };
        let g = prior.belief(&s);
        assert!((g.variance() - g.mean() / (s.n as f64 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn thompson_draws_positive_even_with_no_data() {
        let prior = BeliefPrior::default();
        let s = ChunkStats::default();
        let mut rng = Rng64::new(50);
        for _ in 0..1000 {
            let r = prior.thompson_draw(&s, &mut rng);
            assert!(r > 0.0 && r.is_finite());
        }
    }

    #[test]
    fn thompson_concentrates_with_evidence() {
        // A chunk with strong evidence of reward should usually outdraw a
        // chunk with strong evidence of none.
        let prior = BeliefPrior::default();
        let hot = ChunkStats { n1: 50.0, n: 100 };
        let cold = ChunkStats { n1: 0.0, n: 100 };
        let mut rng = Rng64::new(51);
        let wins = (0..2000)
            .filter(|_| prior.thompson_draw(&hot, &mut rng) > prior.thompson_draw(&cold, &mut rng))
            .count();
        assert!(wins > 1950, "wins={wins}");
    }

    #[test]
    fn bayes_ucb_is_above_mean_and_shrinks() {
        let prior = BeliefPrior::default();
        let s = ChunkStats { n1: 5.0, n: 20 };
        let early = prior.bayes_ucb(&s, 10);
        assert!(early > prior.point_estimate(&s));
        let s_more = ChunkStats { n1: 25.0, n: 100 };
        // Same mean, more data: the UCB relative inflation must shrink.
        let later = prior.bayes_ucb(&s_more, 10);
        let infl_early = early / prior.point_estimate(&s);
        let infl_later = later / prior.point_estimate(&s_more);
        assert!(infl_later < infl_early, "{infl_later} !< {infl_early}");
    }

    #[test]
    fn greedy_is_deterministic() {
        let prior = BeliefPrior::default();
        let s = ChunkStats { n1: 3.0, n: 9 };
        let mut rng = Rng64::new(52);
        let a = Selector::Greedy.score(&prior, &s, 0, &mut rng);
        let b = Selector::Greedy.score(&prior, &s, 5, &mut rng);
        assert_eq!(a, b);
        assert!((a - 3.1 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn selector_names() {
        assert_eq!(Selector::Thompson.name(), "thompson");
        assert_eq!(Selector::BayesUcb.name(), "bayes-ucb");
        assert_eq!(Selector::Greedy.name(), "greedy");
    }
}
