//! Temporal chunk partitions — the arms of the ExSample bandit.
//!
//! A [`Chunking`] splits the global frame range `0..frames` into `M`
//! contiguous chunks. The paper uses 20-minute chunks for long videos and
//! one chunk per clip for datasets of short clips; §IV-C studies how the
//! choice of `M` trades off skew exploitation against learning overhead.

use crate::FrameIdx;

/// A partition of `0..frames` into contiguous chunks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunking {
    /// Chunk boundaries: `bounds[j]..bounds[j+1]` is chunk `j`.
    bounds: Vec<u64>,
}

impl Chunking {
    /// Build from explicit boundaries (`bounds[0] == 0`, strictly
    /// increasing; the final entry is the total frame count).
    ///
    /// # Panics
    /// Panics on malformed boundaries.
    pub fn from_bounds(bounds: Vec<u64>) -> Self {
        assert!(bounds.len() >= 2, "need at least one chunk");
        assert_eq!(bounds[0], 0, "first boundary must be 0");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        Chunking { bounds }
    }

    /// One single chunk covering everything. With one chunk, ExSample
    /// degenerates to its within-chunk sampler (paper §IV-C).
    pub fn single(frames: u64) -> Self {
        Chunking::from_bounds(vec![0, frames])
    }

    /// Split `frames` into `m` chunks of near-equal size.
    ///
    /// # Panics
    /// Panics if `m == 0` or `m > frames`.
    pub fn even(frames: u64, m: usize) -> Self {
        assert!(m > 0, "need at least one chunk");
        assert!(m as u64 <= frames, "more chunks than frames");
        let mut bounds = Vec::with_capacity(m + 1);
        for j in 0..=m as u64 {
            bounds.push(j * frames / m as u64);
        }
        Chunking::from_bounds(bounds)
    }

    /// Fixed-width chunks (the final chunk may be short).
    ///
    /// # Panics
    /// Panics if `width == 0` or `frames == 0`.
    pub fn fixed_width(frames: u64, width: u64) -> Self {
        assert!(width > 0, "chunk width must be positive");
        assert!(frames > 0, "need at least one frame");
        let mut bounds: Vec<u64> = (0..frames).step_by(width as usize).collect();
        bounds.push(frames);
        Chunking::from_bounds(bounds)
    }

    /// Number of chunks `M`.
    pub fn num_chunks(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total frames covered.
    pub fn frames(&self) -> u64 {
        *self.bounds.last().expect("bounds never empty")
    }

    /// Frame range of chunk `j`.
    pub fn range(&self, j: usize) -> std::ops::Range<u64> {
        self.bounds[j]..self.bounds[j + 1]
    }

    /// Number of frames in chunk `j`.
    pub fn len(&self, j: usize) -> u64 {
        self.bounds[j + 1] - self.bounds[j]
    }

    /// Whether the chunking covers zero frames. Valid chunkings never are;
    /// provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.frames() == 0
    }

    /// Chunk containing frame `f` (binary search).
    ///
    /// # Panics
    /// Panics if `f` is out of range.
    pub fn chunk_of(&self, f: FrameIdx) -> usize {
        assert!(f < self.frames(), "frame {f} out of range");
        self.bounds.partition_point(|&b| b <= f) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_chunking_covers_everything() {
        let c = Chunking::even(100, 7);
        assert_eq!(c.num_chunks(), 7);
        assert_eq!(c.frames(), 100);
        let total: u64 = (0..7).map(|j| c.len(j)).sum();
        assert_eq!(total, 100);
        let sizes: Vec<u64> = (0..7).map(|j| c.len(j)).collect();
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn chunk_of_agrees_with_ranges() {
        let c = Chunking::even(1000, 13);
        for f in 0..1000 {
            let j = c.chunk_of(f);
            assert!(c.range(j).contains(&f));
        }
    }

    #[test]
    fn chunk_of_boundary_frames() {
        let c = Chunking::from_bounds(vec![0, 10, 30, 35]);
        assert_eq!(c.chunk_of(0), 0);
        assert_eq!(c.chunk_of(9), 0);
        assert_eq!(c.chunk_of(10), 1);
        assert_eq!(c.chunk_of(29), 1);
        assert_eq!(c.chunk_of(30), 2);
        assert_eq!(c.chunk_of(34), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chunk_of_rejects_past_end() {
        Chunking::single(5).chunk_of(5);
    }

    #[test]
    fn single_chunk() {
        let c = Chunking::single(42);
        assert_eq!(c.num_chunks(), 1);
        assert_eq!(c.range(0), 0..42);
        assert!(!c.is_empty());
    }

    #[test]
    fn fixed_width_last_chunk_short() {
        let c = Chunking::fixed_width(10, 4);
        assert_eq!(c.num_chunks(), 3);
        assert_eq!(c.range(2), 8..10);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_bounds() {
        Chunking::from_bounds(vec![0, 10, 10, 20]);
    }

    #[test]
    #[should_panic(expected = "more chunks than frames")]
    fn rejects_more_chunks_than_frames() {
        Chunking::even(3, 4);
    }
}
