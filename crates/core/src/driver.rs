//! The search driver — Algorithm 1's outer loop, policy-agnostic.
//!
//! `run_search` repeatedly asks a [`SamplingPolicy`] for a frame, hands it
//! to an oracle (detector + discriminator bundle), feeds the outcome back,
//! and records a [`SearchTrace`]: the `(samples, found, seconds)` curve
//! that every figure and table of the evaluation is computed from.

use crate::policy::{Feedback, SamplingPolicy};
use crate::FrameIdx;
use exsample_stats::Rng64;

/// Linear cost model for a search: optional upfront seconds (e.g. a proxy
/// model's full scoring scan) plus constant seconds per processed frame
/// (detector + random-access decode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchCost {
    /// Charged before the first sample (BlazeIt-style scoring scans).
    pub upfront_s: f64,
    /// Charged per processed frame (the paper measures ≈ 1/20 s: detector
    /// bound).
    pub per_sample_s: f64,
}

impl SearchCost {
    /// Cost with no upfront component.
    pub fn per_sample(per_sample_s: f64) -> Self {
        SearchCost { upfront_s: 0.0, per_sample_s }
    }

    /// Seconds elapsed after `samples` frames.
    pub fn seconds(&self, samples: u64) -> f64 {
        self.upfront_s + samples as f64 * self.per_sample_s
    }
}

/// When to stop a search.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StopCond {
    /// Stop once this many distinct results were found (the query's
    /// `LIMIT` clause).
    pub max_results: Option<u64>,
    /// Stop after this many processed frames.
    pub max_samples: Option<u64>,
    /// Stop once the cost model says this much time has elapsed.
    pub max_seconds: Option<f64>,
}

impl StopCond {
    /// Stop at a result limit.
    pub fn results(limit: u64) -> Self {
        StopCond { max_results: Some(limit), ..Default::default() }
    }

    /// Stop at a sample budget.
    pub fn samples(budget: u64) -> Self {
        StopCond { max_samples: Some(budget), ..Default::default() }
    }

    /// Stop at a time budget.
    pub fn seconds(budget: f64) -> Self {
        StopCond { max_seconds: Some(budget), ..Default::default() }
    }

    /// Combine with a sample budget.
    pub fn or_samples(mut self, budget: u64) -> Self {
        self.max_samples = Some(budget);
        self
    }

    fn done(&self, found: u64, samples: u64, seconds: f64) -> bool {
        self.max_results.is_some_and(|r| found >= r)
            || self.max_samples.is_some_and(|s| samples >= s)
            || self.max_seconds.is_some_and(|t| seconds >= t)
    }
}

/// One point on the discovery curve, recorded whenever `found` increases
/// (plus one final point at termination).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Frames processed so far.
    pub samples: u64,
    /// Distinct results found so far.
    pub found: u64,
    /// Modelled elapsed seconds.
    pub seconds: f64,
}

/// The recorded outcome of one search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchTrace {
    points: Vec<TracePoint>,
    samples: u64,
    found: u64,
    seconds: f64,
    exhausted: bool,
}

impl SearchTrace {
    /// Discovery-curve points (monotone in samples and found).
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Total frames processed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Total distinct results found.
    pub fn found(&self) -> u64 {
        self.found
    }

    /// Total modelled seconds (including any upfront cost).
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// True if the policy ran out of frames before the stop condition hit.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Samples needed to reach `target` results, if reached.
    pub fn samples_to_results(&self, target: u64) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.found >= target)
            .map(|p| p.samples)
    }

    /// Seconds needed to reach `target` results, if reached.
    pub fn seconds_to_results(&self, target: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.found >= target)
            .map(|p| p.seconds)
    }

    /// Results found within the first `samples` frames.
    pub fn found_at_samples(&self, samples: u64) -> u64 {
        self.points
            .iter()
            .take_while(|p| p.samples <= samples)
            .map(|p| p.found)
            .max()
            .unwrap_or(0)
    }
}

/// Run a search to completion under a stop condition.
///
/// The `oracle` maps a frame index to the discriminator outcome for that
/// frame ([`Feedback`]); it is also where callers count what was actually
/// found (the driver trusts `fb.new_results`).
pub fn run_search<O>(
    policy: &mut dyn SamplingPolicy,
    oracle: &mut O,
    cost: &SearchCost,
    stop: &StopCond,
    rng: &mut Rng64,
) -> SearchTrace
where
    O: FnMut(FrameIdx) -> Feedback,
{
    let mut trace = SearchTrace {
        points: Vec::new(),
        samples: 0,
        found: 0,
        seconds: cost.seconds(0),
        exhausted: false,
    };
    if stop.done(0, 0, trace.seconds) {
        trace.points.push(TracePoint { samples: 0, found: 0, seconds: trace.seconds });
        return trace;
    }
    loop {
        let Some(frame) = policy.next_frame(rng) else {
            trace.exhausted = true;
            break;
        };
        let fb = oracle(frame);
        policy.feedback(frame, fb);
        trace.samples += 1;
        trace.seconds = cost.seconds(trace.samples);
        if fb.new_results > 0 {
            trace.found += fb.new_results as u64;
            trace.points.push(TracePoint {
                samples: trace.samples,
                found: trace.found,
                seconds: trace.seconds,
            });
        }
        if stop.done(trace.found, trace.samples, trace.seconds) {
            break;
        }
    }
    trace.points.push(TracePoint {
        samples: trace.samples,
        found: trace.found,
        seconds: trace.seconds,
    });
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunking::Chunking;
    use crate::exsample::{ExSample, ExSampleConfig};

    fn policy() -> ExSample {
        ExSample::new(Chunking::even(1000, 10), ExSampleConfig::default())
    }

    #[test]
    fn stops_at_result_limit() {
        let mut p = policy();
        let mut rng = Rng64::new(80);
        let mut oracle = |f: u64| {
            if f.is_multiple_of(10) {
                Feedback::new(1, 0)
            } else {
                Feedback::NONE
            }
        };
        let t = run_search(&mut p, &mut oracle, &SearchCost::per_sample(0.05), &StopCond::results(5), &mut rng);
        assert_eq!(t.found(), 5);
        assert!(!t.exhausted());
        assert_eq!(t.seconds(), t.samples() as f64 * 0.05);
        assert_eq!(t.samples_to_results(5), Some(t.samples()));
    }

    #[test]
    fn stops_at_sample_budget() {
        let mut p = policy();
        let mut rng = Rng64::new(81);
        let mut oracle = |_f: u64| Feedback::NONE;
        let t = run_search(&mut p, &mut oracle, &SearchCost::per_sample(1.0), &StopCond::samples(17), &mut rng);
        assert_eq!(t.samples(), 17);
        assert_eq!(t.found(), 0);
    }

    #[test]
    fn stops_at_time_budget_with_upfront_cost() {
        // Upfront cost alone exceeds the budget: zero samples taken. This
        // is exactly the proxy-scan pathology of Table I.
        let mut p = policy();
        let mut rng = Rng64::new(82);
        let mut oracle = |_f: u64| Feedback::new(1, 0);
        let cost = SearchCost { upfront_s: 100.0, per_sample_s: 0.05 };
        let t = run_search(&mut p, &mut oracle, &cost, &StopCond::seconds(50.0), &mut rng);
        assert_eq!(t.samples(), 0);
        assert_eq!(t.found(), 0);
        assert_eq!(t.seconds(), 100.0);
    }

    #[test]
    fn exhaustion_reported() {
        let mut p = ExSample::new(Chunking::even(50, 5), ExSampleConfig::default());
        let mut rng = Rng64::new(83);
        let mut oracle = |_f: u64| Feedback::NONE;
        let t = run_search(&mut p, &mut oracle, &SearchCost::per_sample(1.0), &StopCond::results(1), &mut rng);
        assert!(t.exhausted());
        assert_eq!(t.samples(), 50);
    }

    #[test]
    fn trace_points_are_monotone() {
        let mut p = policy();
        let mut rng = Rng64::new(84);
        let mut oracle = |f: u64| {
            if f.is_multiple_of(7) {
                Feedback::new(1, 0)
            } else {
                Feedback::NONE
            }
        };
        let t = run_search(&mut p, &mut oracle, &SearchCost::per_sample(0.01), &StopCond::results(30), &mut rng);
        for w in t.points().windows(2) {
            assert!(w[0].samples <= w[1].samples);
            assert!(w[0].found <= w[1].found);
            assert!(w[0].seconds <= w[1].seconds);
        }
        assert_eq!(t.points().last().unwrap().found, t.found());
    }

    #[test]
    fn found_at_samples_interpolates() {
        let mut p = policy();
        let mut rng = Rng64::new(85);
        let mut oracle = |f: u64| {
            if f.is_multiple_of(3) {
                Feedback::new(1, 0)
            } else {
                Feedback::NONE
            }
        };
        let t = run_search(&mut p, &mut oracle, &SearchCost::per_sample(0.01), &StopCond::samples(100), &mut rng);
        assert_eq!(t.found_at_samples(t.samples()), t.found());
        assert!(t.found_at_samples(10) <= t.found());
        assert_eq!(t.found_at_samples(0), 0);
    }

    #[test]
    fn multiple_results_per_frame_counted() {
        let mut p = policy();
        let mut rng = Rng64::new(86);
        let mut oracle = |_f: u64| Feedback::new(3, 0);
        let t = run_search(&mut p, &mut oracle, &SearchCost::per_sample(1.0), &StopCond::results(7), &mut rng);
        // 3 per frame: reaches >= 7 after 3 frames (9 found).
        assert_eq!(t.samples(), 3);
        assert_eq!(t.found(), 9);
    }
}
