//! The search driver — Algorithm 1's outer loop, policy-agnostic.
//!
//! `run_search` repeatedly asks a [`SamplingPolicy`] for a frame, hands it
//! to an oracle (detector + discriminator bundle), feeds the outcome back,
//! and records a [`SearchTrace`]: the `(samples, found, seconds)` curve
//! that every figure and table of the evaluation is computed from.
//!
//! The loop is factored through [`SearchStepper`], which exposes the same
//! state machine one frame at a time so external drivers (notably the
//! `exsample-engine` multi-query scheduler) can interleave many searches
//! and charge each its measured cost. The stepper also speaks the paper's
//! batched-inference mode (§III-F): [`SearchStepper::next_batch`] draws a
//! whole detector batch before any feedback, and [`run_search_batched`]
//! is the blocking loop over it — `run_search` itself is the `batch = 1`
//! special case.

use crate::policy::{Feedback, SamplingPolicy};
use crate::FrameIdx;
use exsample_stats::Rng64;

/// Linear cost model for a search: optional upfront seconds (e.g. a proxy
/// model's full scoring scan) plus constant seconds per processed frame
/// (detector + random-access decode).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchCost {
    /// Charged before the first sample (BlazeIt-style scoring scans).
    pub upfront_s: f64,
    /// Charged per processed frame (the paper measures ≈ 1/20 s: detector
    /// bound).
    pub per_sample_s: f64,
}

impl SearchCost {
    /// Cost with no upfront component.
    pub fn per_sample(per_sample_s: f64) -> Self {
        SearchCost {
            upfront_s: 0.0,
            per_sample_s,
        }
    }

    /// Seconds elapsed after `samples` frames.
    pub fn seconds(&self, samples: u64) -> f64 {
        self.upfront_s + samples as f64 * self.per_sample_s
    }
}

/// When to stop a search.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StopCond {
    /// Stop once this many distinct results were found (the query's
    /// `LIMIT` clause).
    pub max_results: Option<u64>,
    /// Stop after this many processed frames.
    pub max_samples: Option<u64>,
    /// Stop once the cost model says this much time has elapsed.
    pub max_seconds: Option<f64>,
}

impl StopCond {
    /// Stop at a result limit.
    pub fn results(limit: u64) -> Self {
        StopCond {
            max_results: Some(limit),
            ..Default::default()
        }
    }

    /// Stop at a sample budget.
    pub fn samples(budget: u64) -> Self {
        StopCond {
            max_samples: Some(budget),
            ..Default::default()
        }
    }

    /// Stop at a time budget.
    pub fn seconds(budget: f64) -> Self {
        StopCond {
            max_seconds: Some(budget),
            ..Default::default()
        }
    }

    /// Combine with a sample budget.
    pub fn or_samples(mut self, budget: u64) -> Self {
        self.max_samples = Some(budget);
        self
    }

    fn done(&self, found: u64, samples: u64, seconds: f64) -> bool {
        self.max_results.is_some_and(|r| found >= r)
            || self.max_samples.is_some_and(|s| samples >= s)
            || self.max_seconds.is_some_and(|t| seconds >= t)
    }
}

/// One point on the discovery curve, recorded whenever `found` increases
/// (plus one final point at termination).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    /// Frames processed so far.
    pub samples: u64,
    /// Distinct results found so far.
    pub found: u64,
    /// Modelled elapsed seconds.
    pub seconds: f64,
}

/// The recorded outcome of one search run.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchTrace {
    points: Vec<TracePoint>,
    samples: u64,
    found: u64,
    seconds: f64,
    exhausted: bool,
}

impl SearchTrace {
    /// Reassemble a trace from its observable parts — the inverse of the
    /// accessors below, for deserialization layers (notably the
    /// `exsample-proto` wire codec) that move traces between processes.
    /// The caller is trusted to supply a consistent curve; nothing is
    /// recomputed or validated.
    pub fn from_parts(
        points: Vec<TracePoint>,
        samples: u64,
        found: u64,
        seconds: f64,
        exhausted: bool,
    ) -> Self {
        SearchTrace {
            points,
            samples,
            found,
            seconds,
            exhausted,
        }
    }

    /// Discovery-curve points (monotone in samples and found).
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Total frames processed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Total distinct results found.
    pub fn found(&self) -> u64 {
        self.found
    }

    /// Total modelled seconds (including any upfront cost).
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// True if the policy ran out of frames before the stop condition hit.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }

    /// Samples needed to reach `target` results, if reached.
    pub fn samples_to_results(&self, target: u64) -> Option<u64> {
        self.points
            .iter()
            .find(|p| p.found >= target)
            .map(|p| p.samples)
    }

    /// Seconds needed to reach `target` results, if reached.
    pub fn seconds_to_results(&self, target: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.found >= target)
            .map(|p| p.seconds)
    }

    /// Results found within the first `samples` frames.
    pub fn found_at_samples(&self, samples: u64) -> u64 {
        self.points
            .iter()
            .take_while(|p| p.samples <= samples)
            .map(|p| p.found)
            .max()
            .unwrap_or(0)
    }
}

/// Incremental form of the Algorithm 1 loop: one search, stepped one
/// frame at a time by an external caller.
///
/// [`run_search`] is a thin loop over this type. The multi-query engine
/// drives many steppers concurrently, interleaving their steps under a
/// scheduler instead of running each search to completion — which is why
/// the stepper, unlike `run_search`, takes elapsed seconds from the
/// caller: interleaved searches are charged their *actual* (cache- and
/// decode-aware) cost rather than a fixed per-sample constant.
///
/// Protocol per step: call [`SearchStepper::next_frame`]; if it yields a
/// frame, process it (detector + discriminator) and report the outcome via
/// [`SearchStepper::record`]. When either method signals completion, call
/// [`SearchStepper::finish`] to obtain the final [`SearchTrace`].
#[derive(Debug, Clone)]
pub struct SearchStepper {
    stop: StopCond,
    trace: SearchTrace,
    done: bool,
}

impl SearchStepper {
    /// Start a search with `upfront_s` seconds already on the clock (a
    /// proxy scoring scan, for instance). The stepper may be born done if
    /// the stop condition is already met.
    pub fn new(stop: StopCond, upfront_s: f64) -> Self {
        let trace = SearchTrace {
            points: Vec::new(),
            samples: 0,
            found: 0,
            seconds: upfront_s,
            exhausted: false,
        };
        let done = stop.done(0, 0, trace.seconds);
        SearchStepper { stop, trace, done }
    }

    /// True once the stop condition fired or the policy ran out of frames.
    pub fn done(&self) -> bool {
        self.done
    }

    /// Frames processed so far.
    pub fn samples(&self) -> u64 {
        self.trace.samples
    }

    /// Distinct results found so far.
    pub fn found(&self) -> u64 {
        self.trace.found
    }

    /// Seconds on the clock (as last reported to [`SearchStepper::record`]).
    pub fn seconds(&self) -> f64 {
        self.trace.seconds
    }

    /// True if the policy ran out of frames before the stop condition hit.
    pub fn exhausted(&self) -> bool {
        self.trace.exhausted
    }

    /// Draw the next frame to process. Returns `None` when the search is
    /// already done or the policy is exhausted (which marks the search
    /// done and the trace exhausted).
    pub fn next_frame(
        &mut self,
        policy: &mut dyn SamplingPolicy,
        rng: &mut Rng64,
    ) -> Option<FrameIdx> {
        if self.done {
            return None;
        }
        match policy.next_frame(rng) {
            Some(frame) => Some(frame),
            None => {
                self.trace.exhausted = true;
                self.done = true;
                None
            }
        }
    }

    /// Draw up to `batch` frames to process *before* seeing any of their
    /// outcomes — the paper's batched-inference mode (§III-F), where the
    /// sampler is granted a whole detector batch per decision so dispatch
    /// overhead amortizes the way real GPU inference does.
    ///
    /// `out` is cleared and filled with the drawn frames in draw order;
    /// the caller processes them and reports each outcome through
    /// [`SearchStepper::record`] *in that same order*, so batched traces
    /// are deterministic and `batch = 1` is bit-identical to the
    /// per-frame protocol. An empty `out` means the search was already
    /// done or the policy is exhausted (which marks the search done and
    /// the trace exhausted, exactly like a `None` from
    /// [`SearchStepper::next_frame`]). A *short* batch is not yet
    /// exhaustion: the drawn frames are still processed, and the next
    /// call discovers the dry policy.
    pub fn next_batch(
        &mut self,
        policy: &mut dyn SamplingPolicy,
        rng: &mut Rng64,
        batch: usize,
        out: &mut Vec<FrameIdx>,
    ) {
        out.clear();
        if self.done {
            return;
        }
        policy.next_batch(batch, rng, out);
        if out.is_empty() {
            self.trace.exhausted = true;
            self.done = true;
        }
    }

    /// Report the outcome of processing `frame`: routes `fb` back to the
    /// policy, advances the sample count, sets the clock to `seconds_now`
    /// (absolute, not a delta), and evaluates the stop condition.
    /// Returns `true` when the search is finished.
    pub fn record(
        &mut self,
        policy: &mut dyn SamplingPolicy,
        frame: FrameIdx,
        fb: Feedback,
        seconds_now: f64,
    ) -> bool {
        policy.feedback(frame, fb);
        self.trace.samples += 1;
        self.trace.seconds = seconds_now;
        if fb.new_results > 0 {
            self.trace.found += fb.new_results as u64;
            self.trace.points.push(TracePoint {
                samples: self.trace.samples,
                found: self.trace.found,
                seconds: self.trace.seconds,
            });
        }
        if self
            .stop
            .done(self.trace.found, self.trace.samples, self.trace.seconds)
        {
            self.done = true;
        }
        self.done
    }

    /// Seal the trace (appends the terminal point) and return it.
    pub fn finish(mut self) -> SearchTrace {
        self.trace.points.push(TracePoint {
            samples: self.trace.samples,
            found: self.trace.found,
            seconds: self.trace.seconds,
        });
        self.trace
    }
}

/// Run a search to completion under a stop condition.
///
/// The `oracle` maps a frame index to the discriminator outcome for that
/// frame ([`Feedback`]); it is also where callers count what was actually
/// found (the driver trusts `fb.new_results`).
pub fn run_search<O>(
    policy: &mut dyn SamplingPolicy,
    oracle: &mut O,
    cost: &SearchCost,
    stop: &StopCond,
    rng: &mut Rng64,
) -> SearchTrace
where
    O: FnMut(FrameIdx) -> Feedback,
{
    run_search_batched(policy, oracle, cost, stop, rng, 1)
}

/// [`run_search`] in the paper's batched-inference mode (§III-F): frames
/// are drawn `batch` at a time with no intermediate feedback, processed,
/// and their outcomes replayed to the policy in draw order. `batch = 1`
/// is bit-identical to [`run_search`] (which delegates here). When the
/// stop condition fires mid-batch, the remaining drawn frames are
/// discarded unprocessed — the speculative draws real batched inference
/// wastes at the end of a search.
///
/// # Panics
/// Panics if `batch` is zero.
pub fn run_search_batched<O>(
    policy: &mut dyn SamplingPolicy,
    oracle: &mut O,
    cost: &SearchCost,
    stop: &StopCond,
    rng: &mut Rng64,
    batch: usize,
) -> SearchTrace
where
    O: FnMut(FrameIdx) -> Feedback,
{
    assert!(batch > 0, "batch must be positive");
    let mut stepper = SearchStepper::new(*stop, cost.seconds(0));
    let mut frames = Vec::with_capacity(batch);
    while !stepper.done() {
        stepper.next_batch(policy, rng, batch, &mut frames);
        for &frame in &frames {
            let fb = oracle(frame);
            let seconds = cost.seconds(stepper.samples() + 1);
            if stepper.record(policy, frame, fb, seconds) {
                break;
            }
        }
    }
    stepper.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunking::Chunking;
    use crate::exsample::{ExSample, ExSampleConfig};

    fn policy() -> ExSample {
        ExSample::new(Chunking::even(1000, 10), ExSampleConfig::default())
    }

    #[test]
    fn stops_at_result_limit() {
        let mut p = policy();
        let mut rng = Rng64::new(80);
        let mut oracle = |f: u64| {
            if f.is_multiple_of(10) {
                Feedback::new(1, 0)
            } else {
                Feedback::NONE
            }
        };
        let t = run_search(
            &mut p,
            &mut oracle,
            &SearchCost::per_sample(0.05),
            &StopCond::results(5),
            &mut rng,
        );
        assert_eq!(t.found(), 5);
        assert!(!t.exhausted());
        assert_eq!(t.seconds(), t.samples() as f64 * 0.05);
        assert_eq!(t.samples_to_results(5), Some(t.samples()));
    }

    #[test]
    fn stops_at_sample_budget() {
        let mut p = policy();
        let mut rng = Rng64::new(81);
        let mut oracle = |_f: u64| Feedback::NONE;
        let t = run_search(
            &mut p,
            &mut oracle,
            &SearchCost::per_sample(1.0),
            &StopCond::samples(17),
            &mut rng,
        );
        assert_eq!(t.samples(), 17);
        assert_eq!(t.found(), 0);
    }

    #[test]
    fn stops_at_time_budget_with_upfront_cost() {
        // Upfront cost alone exceeds the budget: zero samples taken. This
        // is exactly the proxy-scan pathology of Table I.
        let mut p = policy();
        let mut rng = Rng64::new(82);
        let mut oracle = |_f: u64| Feedback::new(1, 0);
        let cost = SearchCost {
            upfront_s: 100.0,
            per_sample_s: 0.05,
        };
        let t = run_search(
            &mut p,
            &mut oracle,
            &cost,
            &StopCond::seconds(50.0),
            &mut rng,
        );
        assert_eq!(t.samples(), 0);
        assert_eq!(t.found(), 0);
        assert_eq!(t.seconds(), 100.0);
    }

    #[test]
    fn exhaustion_reported() {
        let mut p = ExSample::new(Chunking::even(50, 5), ExSampleConfig::default());
        let mut rng = Rng64::new(83);
        let mut oracle = |_f: u64| Feedback::NONE;
        let t = run_search(
            &mut p,
            &mut oracle,
            &SearchCost::per_sample(1.0),
            &StopCond::results(1),
            &mut rng,
        );
        assert!(t.exhausted());
        assert_eq!(t.samples(), 50);
    }

    #[test]
    fn trace_points_are_monotone() {
        let mut p = policy();
        let mut rng = Rng64::new(84);
        let mut oracle = |f: u64| {
            if f.is_multiple_of(7) {
                Feedback::new(1, 0)
            } else {
                Feedback::NONE
            }
        };
        let t = run_search(
            &mut p,
            &mut oracle,
            &SearchCost::per_sample(0.01),
            &StopCond::results(30),
            &mut rng,
        );
        for w in t.points().windows(2) {
            assert!(w[0].samples <= w[1].samples);
            assert!(w[0].found <= w[1].found);
            assert!(w[0].seconds <= w[1].seconds);
        }
        assert_eq!(t.points().last().unwrap().found, t.found());
    }

    #[test]
    fn found_at_samples_interpolates() {
        let mut p = policy();
        let mut rng = Rng64::new(85);
        let mut oracle = |f: u64| {
            if f.is_multiple_of(3) {
                Feedback::new(1, 0)
            } else {
                Feedback::NONE
            }
        };
        let t = run_search(
            &mut p,
            &mut oracle,
            &SearchCost::per_sample(0.01),
            &StopCond::samples(100),
            &mut rng,
        );
        assert_eq!(t.found_at_samples(t.samples()), t.found());
        assert!(t.found_at_samples(10) <= t.found());
        assert_eq!(t.found_at_samples(0), 0);
    }

    #[test]
    fn stepper_matches_run_search_exactly() {
        // The incremental stepper must reproduce run_search bit-for-bit:
        // same frames, same trace points, same (exact) seconds.
        let oracle = |f: u64| {
            if f.is_multiple_of(9) {
                Feedback::new(1, 0)
            } else {
                Feedback::NONE
            }
        };
        let cost = SearchCost {
            upfront_s: 3.0,
            per_sample_s: 0.05,
        };
        let stop = StopCond::results(12).or_samples(400);

        let mut p1 = policy();
        let mut rng1 = Rng64::new(90);
        let mut o = oracle;
        let blocking = run_search(&mut p1, &mut o, &cost, &stop, &mut rng1);

        let mut p2 = policy();
        let mut rng2 = Rng64::new(90);
        let mut st = SearchStepper::new(stop, cost.seconds(0));
        while !st.done() {
            let Some(frame) = st.next_frame(&mut p2, &mut rng2) else {
                break;
            };
            let fb = oracle(frame);
            let seconds = cost.seconds(st.samples() + 1);
            st.record(&mut p2, frame, fb, seconds);
        }
        let stepped = st.finish();
        assert_eq!(blocking, stepped);
    }

    #[test]
    fn stepper_born_done_when_stop_already_met() {
        let mut p = policy();
        let mut rng = Rng64::new(91);
        let mut st = SearchStepper::new(StopCond::seconds(10.0), 50.0);
        assert!(st.done());
        assert_eq!(st.next_frame(&mut p, &mut rng), None);
        let t = st.finish();
        assert_eq!(t.samples(), 0);
        assert_eq!(t.seconds(), 50.0);
        assert_eq!(t.points().len(), 1);
    }

    #[test]
    fn stepper_reports_exhaustion() {
        let mut p = ExSample::new(Chunking::even(10, 2), ExSampleConfig::default());
        let mut rng = Rng64::new(92);
        let mut st = SearchStepper::new(StopCond::results(99), 0.0);
        let mut steps = 0;
        while let Some(f) = st.next_frame(&mut p, &mut rng) {
            steps += 1;
            st.record(&mut p, f, Feedback::NONE, steps as f64);
        }
        assert!(st.done());
        assert!(st.exhausted());
        assert_eq!(st.samples(), 10);
        let t = st.finish();
        assert!(t.exhausted());
    }

    #[test]
    fn stepper_accepts_caller_supplied_clock() {
        // The engine charges variable per-frame costs (cache hits are
        // cheap); the stepper must stop on whatever clock it is told.
        let mut p = policy();
        let mut rng = Rng64::new(93);
        let mut st = SearchStepper::new(StopCond::seconds(1.0), 0.0);
        let mut clock = 0.0;
        let mut frames = 0;
        while !st.done() {
            let Some(f) = st.next_frame(&mut p, &mut rng) else {
                break;
            };
            frames += 1;
            clock += if frames % 2 == 0 { 0.4 } else { 0.01 };
            st.record(&mut p, f, Feedback::NONE, clock);
        }
        assert!(st.seconds() >= 1.0);
        // Cumulative clock: .01, .41, .42, .82, .83, 1.23 — stops at 6.
        assert_eq!(frames, 6);
    }

    #[test]
    fn batched_run_at_batch_one_is_bit_identical_to_run_search() {
        let oracle = |f: u64| {
            if f.is_multiple_of(11) {
                Feedback::new(1, 0)
            } else {
                Feedback::NONE
            }
        };
        let cost = SearchCost::per_sample(0.05);
        let stop = StopCond::results(9).or_samples(300);
        let mut p1 = policy();
        let mut rng1 = Rng64::new(87);
        let mut o1 = oracle;
        let per_frame = run_search(&mut p1, &mut o1, &cost, &stop, &mut rng1);
        let mut p2 = policy();
        let mut rng2 = Rng64::new(87);
        let mut o2 = oracle;
        let batched = run_search_batched(&mut p2, &mut o2, &cost, &stop, &mut rng2, 1);
        assert_eq!(per_frame, batched);
    }

    #[test]
    fn batched_run_draws_without_repeats_and_stops_mid_batch() {
        // Every frame is a result, so an 8-frame batch overshoots the
        // limit mid-batch: the tail must be discarded, not recorded.
        let mut p = policy();
        let mut rng = Rng64::new(88);
        let mut seen = std::collections::HashSet::new();
        let mut oracle = |f: u64| {
            assert!(seen.insert(f), "frame {f} processed twice");
            Feedback::new(1, 0)
        };
        let t = run_search_batched(
            &mut p,
            &mut oracle,
            &SearchCost::per_sample(1.0),
            &StopCond::results(5),
            &mut rng,
            8,
        );
        assert_eq!(t.samples(), 5);
        assert_eq!(t.found(), 5);
        for w in t.points().windows(2) {
            assert!(w[0].samples <= w[1].samples);
            assert!(w[0].found <= w[1].found);
        }
    }

    #[test]
    fn stepper_next_batch_reports_exhaustion() {
        let mut p = ExSample::new(Chunking::even(10, 2), ExSampleConfig::default());
        let mut rng = Rng64::new(89);
        let mut st = SearchStepper::new(StopCond::results(99), 0.0);
        let mut frames = Vec::new();
        let mut processed = 0u64;
        loop {
            st.next_batch(&mut p, &mut rng, 4, &mut frames);
            if frames.is_empty() {
                break;
            }
            for &f in &frames {
                processed += 1;
                st.record(&mut p, f, Feedback::NONE, processed as f64);
            }
        }
        assert!(st.done());
        assert!(st.exhausted());
        assert_eq!(st.samples(), 10);
        // Once done, further batch draws stay empty without touching the
        // policy.
        st.next_batch(&mut p, &mut rng, 4, &mut frames);
        assert!(frames.is_empty());
    }

    #[test]
    fn multiple_results_per_frame_counted() {
        let mut p = policy();
        let mut rng = Rng64::new(86);
        let mut oracle = |_f: u64| Feedback::new(3, 0);
        let t = run_search(
            &mut p,
            &mut oracle,
            &SearchCost::per_sample(1.0),
            &StopCond::results(7),
            &mut rng,
        );
        // 3 per frame: reaches >= 7 after 3 frames (9 found).
        assert_eq!(t.samples(), 3);
        assert_eq!(t.found(), 9);
    }
}
