//! The ExSample policy: Thompson sampling over per-chunk Good–Turing
//! beliefs (paper Algorithm 1).
//!
//! # Scaling to thousands of chunks
//!
//! A naive Thompson step draws one Gamma sample per chunk — 1600 draws per
//! processed frame on BDD-MOT-style per-clip chunkings, which dominates
//! the sampler's own cost. This implementation exploits that chunks with
//! identical statistics `(N1, n)` have *i.i.d.* beliefs: they are grouped,
//! and for a group of size `k` the maximum of `k` i.i.d. draws is sampled
//! directly as `F⁻¹(U^(1/k))` with a single Gamma-quantile evaluation; the
//! winning chunk is then chosen uniformly within its group (exact by
//! exchangeability). Early in a search all `M` chunks share the state
//! `(0, 0)`, so a step costs one quantile instead of `M` draws; the cost
//! grows only with the number of *distinct* chunk states.

use crate::belief::{BeliefPrior, ChunkStats, Selector};
use crate::chunking::Chunking;
use crate::policy::{Feedback, SamplingPolicy};
use crate::within::{WithinKind, WithinSampler};
use crate::FrameIdx;
use exsample_stats::dist::Continuous;
use exsample_stats::{FxHashMap, Rng64};

/// Tunable parameters of [`ExSample`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExSampleConfig {
    /// Gamma prior pseudo-counts (α0, β0). Paper default `(0.1, 1)`.
    pub prior: BeliefPrior,
    /// Chunk-selection rule. Paper default Thompson sampling.
    pub selector: Selector,
    /// Within-chunk frame order. Paper default random+ (stratified).
    pub within: WithinKind,
}

impl Default for ExSampleConfig {
    fn default() -> Self {
        ExSampleConfig {
            prior: BeliefPrior::default(),
            selector: Selector::Thompson,
            within: WithinKind::Stratified,
        }
    }
}

/// Sentinel group id for chunks that have been retired (exhausted).
const RETIRED: u32 = u32::MAX;

/// Chunks grouped by identical `(N1, n)` statistics.
///
/// Maintained incrementally: a feedback event moves exactly one chunk
/// between groups; exhaustion removes it. Group membership uses
/// swap-remove with back-pointers, so every operation is O(1).
#[derive(Debug, Clone)]
struct ChunkGroups {
    /// State key -> group id.
    map: FxHashMap<(u64, u64), u32>,
    /// Group id -> member chunk ids (unordered).
    members: Vec<Vec<u32>>,
    /// Group id -> state key (for map cleanup).
    keys: Vec<(u64, u64)>,
    /// Chunk id -> (group id, index within the group), or RETIRED.
    slot: Vec<(u32, u32)>,
    /// Recycled group ids.
    free: Vec<u32>,
    /// Number of non-retired chunks.
    active: usize,
}

impl ChunkGroups {
    fn state_key(s: &ChunkStats) -> (u64, u64) {
        (s.n1.to_bits(), s.n)
    }

    fn new(m: usize) -> Self {
        let mut g = ChunkGroups {
            map: FxHashMap::default(),
            members: vec![(0..m as u32).collect()],
            keys: vec![Self::state_key(&ChunkStats::default())],
            slot: (0..m as u32).map(|i| (0u32, i)).collect(),
            free: Vec::new(),
            active: m,
        };
        g.map.insert(g.keys[0], 0);
        g
    }

    /// Detach a chunk from its current group (does not change `active`).
    fn detach(&mut self, chunk: u32) {
        let (gid, idx) = self.slot[chunk as usize];
        debug_assert_ne!(gid, RETIRED, "chunk already retired");
        let members = &mut self.members[gid as usize];
        members.swap_remove(idx as usize);
        if let Some(&moved) = members.get(idx as usize) {
            self.slot[moved as usize].1 = idx;
        }
        if members.is_empty() {
            self.map.remove(&self.keys[gid as usize]);
            self.free.push(gid);
        }
    }

    /// Attach a chunk to the group for `key`, creating it if necessary.
    fn attach(&mut self, chunk: u32, key: (u64, u64)) {
        let gid = match self.map.get(&key) {
            Some(&gid) => gid,
            None => {
                let gid = match self.free.pop() {
                    Some(gid) => {
                        self.keys[gid as usize] = key;
                        gid
                    }
                    None => {
                        self.members.push(Vec::new());
                        self.keys.push(key);
                        (self.members.len() - 1) as u32
                    }
                };
                self.map.insert(key, gid);
                gid
            }
        };
        let members = &mut self.members[gid as usize];
        members.push(chunk);
        self.slot[chunk as usize] = (gid, (members.len() - 1) as u32);
    }

    /// Move a chunk to the group matching its new statistics. No-op for
    /// retired chunks.
    fn update(&mut self, chunk: u32, stats: &ChunkStats) {
        if self.slot[chunk as usize].0 == RETIRED {
            return;
        }
        let key = Self::state_key(stats);
        if self.keys[self.slot[chunk as usize].0 as usize] == key {
            return;
        }
        self.detach(chunk);
        self.attach(chunk, key);
    }

    /// Permanently remove an exhausted chunk.
    fn retire(&mut self, chunk: u32) {
        if self.slot[chunk as usize].0 == RETIRED {
            return;
        }
        self.detach(chunk);
        self.slot[chunk as usize] = (RETIRED, 0);
        self.active -= 1;
    }
}

/// The adaptive chunk-based sampler.
///
/// Maintains `(N1_j, n_j)` per chunk; each [`SamplingPolicy::next_frame`]
/// call scores every non-exhausted chunk group, picks the argmax, and
/// draws a frame from that chunk's without-replacement random+ stream.
/// [`SamplingPolicy::feedback`] routes `(|d0|, |d1|)` to the sampled
/// chunk's statistics.
#[derive(Debug, Clone)]
pub struct ExSample {
    chunking: Chunking,
    config: ExSampleConfig,
    stats: Vec<ChunkStats>,
    within: Vec<WithinSampler>,
    groups: ChunkGroups,
    /// Total frames handed out (the global step counter `n`).
    steps: u64,
}

/// Group size above which the Thompson max is drawn via a single quantile
/// evaluation instead of individual samples. A Gamma quantile costs about
/// as much as ~30 Marsaglia–Tsang draws, so this is the break-even with
/// margin.
const GROUP_MAX_THRESHOLD: usize = 24;

impl ExSample {
    /// Create a sampler over the given chunking.
    pub fn new(chunking: Chunking, config: ExSampleConfig) -> Self {
        let m = chunking.num_chunks();
        let within = (0..m)
            .map(|j| WithinSampler::new(config.within, chunking.range(j)))
            .collect();
        Self::from_parts(chunking, config, within)
    }

    /// Create a sampler with custom within-chunk streams — used by the
    /// §VII *fusion* variant ([`ExSample::fused`]) and available for
    /// experimentation with other orders.
    ///
    /// # Panics
    /// Panics if the number of samplers differs from the chunk count.
    pub fn from_parts(
        chunking: Chunking,
        config: ExSampleConfig,
        within: Vec<WithinSampler>,
    ) -> Self {
        let m = chunking.num_chunks();
        assert_eq!(within.len(), m, "one within-chunk sampler per chunk");
        ExSample {
            chunking,
            config,
            stats: vec![ChunkStats::default(); m],
            within,
            groups: ChunkGroups::new(m),
            steps: 0,
        }
    }

    /// The §VII fusion variant: adaptive (Thompson) chunk selection with
    /// *score-descending* order inside each chunk. `scores` is a global
    /// per-frame score table (e.g. from a proxy model); callers decide how
    /// to account for the cost of producing it.
    pub fn fused(
        chunking: Chunking,
        config: ExSampleConfig,
        scores: &std::sync::Arc<Vec<f32>>,
    ) -> Self {
        let within = (0..chunking.num_chunks())
            .map(|j| {
                WithinSampler::Scored(crate::within::ScoredWithin::new(scores, chunking.range(j)))
            })
            .collect();
        Self::from_parts(chunking, config, within)
    }

    /// The chunk partition this sampler operates on.
    pub fn chunking(&self) -> &Chunking {
        &self.chunking
    }

    /// Per-chunk statistics (index = chunk id). The export half of
    /// warm-starting: persist these and feed them to
    /// [`ExSample::import_stats`] on a later sampler over the same
    /// chunking.
    pub fn chunk_stats(&self) -> &[ChunkStats] {
        &self.stats
    }

    /// Warm-start: replace every chunk's `(N1, n)` statistics wholesale,
    /// e.g. with the final beliefs of an earlier search over the same
    /// repository (cross-session belief sharing). The imported values are
    /// adopted bit-for-bit — [`ExSample::chunk_stats`] returns exactly
    /// `stats` afterwards — and the scoring groups are rebuilt to match.
    /// Within-chunk sampling streams are *not* affected: the new search
    /// still visits frames without replacement from scratch; only its
    /// beliefs start informed instead of at the prior.
    ///
    /// # Panics
    /// Panics if `stats.len()` differs from the chunk count.
    pub fn import_stats(&mut self, stats: &[ChunkStats]) {
        assert_eq!(
            stats.len(),
            self.stats.len(),
            "imported statistics must cover every chunk"
        );
        for (j, s) in stats.iter().enumerate() {
            self.stats[j] = *s;
            self.groups.update(j as u32, s);
        }
    }

    /// Total frames handed out so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Number of chunks that still have frames left.
    pub fn active_chunks(&self) -> usize {
        self.groups.active
    }

    /// The de-facto sampling weights `n_j / n` ExSample has realized so
    /// far — comparable against the optimal offline weights of Eq. IV.1.
    pub fn realized_weights(&self) -> Vec<f64> {
        let n: u64 = self.stats.iter().map(|s| s.n).sum();
        if n == 0 {
            vec![1.0 / self.stats.len() as f64; self.stats.len()]
        } else {
            self.stats.iter().map(|s| s.n as f64 / n as f64).collect()
        }
    }

    /// Score all chunk groups and return the winning chunk id.
    fn pick_chunk(&mut self, rng: &mut Rng64) -> Option<u32> {
        if self.groups.active == 0 {
            return None;
        }
        let prior = &self.config.prior;
        let selector = self.config.selector;
        let mut best_score = f64::NEG_INFINITY;
        // Winner: either a concrete chunk (small Thompson groups track
        // their argmax) or "uniform member of group g" (quantile path and
        // deterministic selectors).
        let mut best: Option<(u32, bool)> = None; // (gid-or-chunk, is_chunk)
        for (gid, members) in self.groups.members.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let key = self.groups.keys[gid];
            let stats = ChunkStats {
                n1: f64::from_bits(key.0),
                n: key.1,
            };
            let k = members.len();
            match selector {
                Selector::Thompson => {
                    if k >= GROUP_MAX_THRESHOLD {
                        // Max of k iid draws via one quantile evaluation.
                        let u = rng.f64_open().powf(1.0 / k as f64).min(1.0 - 1e-12);
                        let s = prior.belief(&stats).inv_cdf(u);
                        if s > best_score {
                            best_score = s;
                            best = Some((gid as u32, false));
                        }
                    } else {
                        for &chunk in members {
                            let s = prior.thompson_draw(&stats, rng);
                            if s > best_score {
                                best_score = s;
                                best = Some((chunk, true));
                            }
                        }
                    }
                }
                Selector::BayesUcb | Selector::Greedy => {
                    // Deterministic within a group: score once.
                    let s = selector.score(prior, &stats, self.steps, rng);
                    if s > best_score {
                        best_score = s;
                        best = Some((gid as u32, false));
                    }
                }
            }
        }
        best.map(|(id, is_chunk)| {
            if is_chunk {
                id
            } else {
                *rng.choose(&self.groups.members[id as usize])
            }
        })
    }
}

impl SamplingPolicy for ExSample {
    fn next_frame(&mut self, rng: &mut Rng64) -> Option<FrameIdx> {
        loop {
            let j = self.pick_chunk(rng)?;
            match self.within[j as usize].draw(rng) {
                Some(frame) => {
                    self.steps += 1;
                    // Retire eagerly once the last frame is handed out so
                    // future picks never select an empty chunk.
                    if self.within[j as usize].remaining() == 0 {
                        self.groups.retire(j);
                    }
                    return Some(frame);
                }
                None => self.groups.retire(j),
            }
        }
    }

    fn feedback(&mut self, frame: FrameIdx, fb: Feedback) {
        let j = self.chunking.chunk_of(frame);
        self.stats[j].update(fb.new_results, fb.matched_once);
        self.groups.update(j as u32, &self.stats[j]);
    }

    /// The §III-F batched mode: `batch` Thompson draws with **no**
    /// intermediate feedback — every draw scores the chunk groups under
    /// the same beliefs, exactly as if the detector results were still in
    /// flight. Frames come from the same without-replacement within-chunk
    /// streams as [`SamplingPolicy::next_frame`], so at `batch = 1` the
    /// RNG consumption (and therefore the whole trace) is bit-identical
    /// to per-frame stepping, and exhausted chunks are retired eagerly so
    /// a draw never lands on an empty chunk. A frame can never appear
    /// twice in flight: chunks partition the frame range and each chunk's
    /// within-stream samples without replacement (asserted in debug
    /// builds, and enforced by the batch proptests).
    fn next_batch(&mut self, batch: usize, rng: &mut Rng64, out: &mut Vec<FrameIdx>) {
        out.clear();
        out.reserve(batch);
        while out.len() < batch {
            let Some(j) = self.pick_chunk(rng) else {
                break;
            };
            match self.within[j as usize].draw(rng) {
                Some(frame) => {
                    self.steps += 1;
                    if self.within[j as usize].remaining() == 0 {
                        self.groups.retire(j);
                    }
                    debug_assert!(!out.contains(&frame), "duplicate frame {frame} in batch");
                    out.push(frame);
                }
                None => self.groups.retire(j),
            }
        }
    }

    fn name(&self) -> String {
        format!(
            "exsample(M={},{},{})",
            self.chunking.num_chunks(),
            self.config.selector.name(),
            self.config.within.name()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::belief::Selector;

    fn run_policy(policy: &mut ExSample, oracle: impl Fn(u64) -> Feedback, n: usize, seed: u64) {
        let mut rng = Rng64::new(seed);
        for _ in 0..n {
            let Some(f) = policy.next_frame(&mut rng) else {
                break;
            };
            policy.feedback(f, oracle(f));
        }
    }

    #[test]
    fn fused_variant_prioritizes_high_scores_within_chunks() {
        // Scores increase with the frame id inside each chunk; the fused
        // sampler must emit each chunk's frames in descending order.
        let scores = std::sync::Arc::new((0..100).map(|i| (i % 25) as f32).collect::<Vec<_>>());
        let mut p = ExSample::fused(Chunking::even(100, 4), ExSampleConfig::default(), &scores);
        let mut rng = Rng64::new(69);
        let mut last_in_chunk = [f32::INFINITY; 4];
        let mut seen = std::collections::HashSet::new();
        while let Some(f) = p.next_frame(&mut rng) {
            assert!(seen.insert(f));
            let chunk = (f / 25) as usize;
            let score = scores[f as usize];
            assert!(
                score <= last_in_chunk[chunk],
                "chunk {chunk} emitted score {score} after {}",
                last_in_chunk[chunk]
            );
            last_in_chunk[chunk] = score;
            p.feedback(f, Feedback::NONE);
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn never_repeats_and_exhausts() {
        let mut p = ExSample::new(Chunking::even(500, 5), ExSampleConfig::default());
        let mut rng = Rng64::new(70);
        let mut seen = std::collections::HashSet::new();
        while let Some(f) = p.next_frame(&mut rng) {
            assert!(f < 500);
            assert!(seen.insert(f), "repeated frame {f}");
            p.feedback(f, Feedback::NONE);
        }
        assert_eq!(seen.len(), 500);
        assert_eq!(p.next_frame(&mut rng), None);
        assert_eq!(p.active_chunks(), 0);
    }

    #[test]
    fn concentrates_sampling_on_rewarding_chunk() {
        // Frames 0..100 are chunk 0 and pay off every time; the other nine
        // chunks never do. After a burn-in, chunk 0 must dominate.
        let mut p = ExSample::new(Chunking::even(1000, 10), ExSampleConfig::default());
        run_policy(
            &mut p,
            |f| {
                if f < 100 {
                    Feedback::new(1, 0)
                } else {
                    Feedback::NONE
                }
            },
            80, // chunk 0 has 100 frames; stop before exhausting it
            71,
        );
        let n0 = p.chunk_stats()[0].n;
        let rest: u64 = p.chunk_stats()[1..].iter().map(|s| s.n).sum();
        assert!(n0 > rest, "n0={n0} rest={rest}");
        let w = p.realized_weights();
        assert!(w[0] > 0.5, "weights={w:?}");
    }

    #[test]
    fn uniform_when_no_reward_anywhere() {
        let mut p = ExSample::new(Chunking::even(4000, 4), ExSampleConfig::default());
        run_policy(&mut p, |_| Feedback::NONE, 2000, 72);
        for s in p.chunk_stats() {
            // Each chunk ~500 of 2000 samples; allow generous slack.
            assert!((300..700).contains(&s.n), "stats={:?}", p.chunk_stats());
        }
    }

    #[test]
    fn grouped_path_matches_individual_path_statistically() {
        // Many identical chunks (quantile path) vs few (draw path): with no
        // rewards both must allocate uniformly.
        let mut p = ExSample::new(Chunking::even(6400, 64), ExSampleConfig::default());
        run_policy(&mut p, |_| Feedback::NONE, 3200, 73);
        let counts: Vec<u64> = p.chunk_stats().iter().map(|s| s.n).collect();
        let mean = 3200.0 / 64.0;
        for (j, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > mean * 0.3 && (c as f64) < mean * 2.5,
                "chunk {j}: {c} vs mean {mean}"
            );
        }
    }

    #[test]
    fn feedback_routes_to_correct_chunk() {
        let mut p = ExSample::new(Chunking::even(100, 4), ExSampleConfig::default());
        p.feedback(10, Feedback::new(2, 0)); // chunk 0
        p.feedback(30, Feedback::new(1, 1)); // chunk 1
        p.feedback(99, Feedback::new(0, 1)); // chunk 3
        assert_eq!(p.chunk_stats()[0].n1, 2.0);
        assert_eq!(p.chunk_stats()[0].n, 1);
        assert_eq!(p.chunk_stats()[1].n1, 0.0);
        assert_eq!(p.chunk_stats()[2], ChunkStats::default());
        assert_eq!(p.chunk_stats()[3].n, 1);
    }

    #[test]
    fn batch_mode_draws_distinct_frames() {
        let mut p = ExSample::new(Chunking::even(1000, 10), ExSampleConfig::default());
        let mut rng = Rng64::new(73);
        let mut out = Vec::new();
        p.next_batch(64, &mut rng, &mut out);
        assert_eq!(out.len(), 64);
        let set: std::collections::HashSet<u64> = out.iter().copied().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn next_batch_of_one_matches_next_frame_bit_for_bit() {
        // The engine's batched stepping at batch = 1 must reproduce
        // per-frame traces exactly, which requires identical RNG
        // consumption between the two draw paths.
        let mk = || ExSample::new(Chunking::even(500, 8), ExSampleConfig::default());
        let mut a = mk();
        let mut rng_a = Rng64::new(101);
        let mut b = mk();
        let mut rng_b = Rng64::new(101);
        let mut out = Vec::new();
        for step in 0..=500 {
            let fa = a.next_frame(&mut rng_a);
            b.next_batch(1, &mut rng_b, &mut out);
            assert_eq!(fa, out.first().copied(), "step {step}");
            let Some(f) = fa else {
                break;
            };
            let r = if f % 7 == 0 {
                Feedback::new(1, 0)
            } else {
                Feedback::NONE
            };
            a.feedback(f, r);
            b.feedback(f, r);
        }
    }

    #[test]
    fn batches_drain_exhausted_chunks_cleanly() {
        // Chunks far smaller than the batch: every batch spans several
        // chunk retirements, and the union of batches must be exactly the
        // frame set, without repeats.
        let mut p = ExSample::new(Chunking::even(100, 25), ExSampleConfig::default());
        let mut rng = Rng64::new(102);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        loop {
            p.next_batch(16, &mut rng, &mut out);
            if out.is_empty() {
                break;
            }
            for &f in &out {
                assert!(seen.insert(f), "repeated frame {f}");
            }
            for &f in &out {
                p.feedback(f, Feedback::NONE);
            }
        }
        assert_eq!(seen.len(), 100);
        assert_eq!(p.active_chunks(), 0);
    }

    #[test]
    fn all_selectors_and_withins_work() {
        for selector in [Selector::Thompson, Selector::BayesUcb, Selector::Greedy] {
            for within in [WithinKind::Stratified, WithinKind::Random] {
                let cfg = ExSampleConfig {
                    prior: BeliefPrior::default(),
                    selector,
                    within,
                };
                let mut p = ExSample::new(Chunking::even(200, 4), cfg);
                let mut rng = Rng64::new(74);
                let mut seen = std::collections::HashSet::new();
                for _ in 0..200 {
                    let f = p.next_frame(&mut rng).expect("not exhausted yet");
                    assert!(seen.insert(f));
                    p.feedback(f, Feedback::NONE);
                }
                assert_eq!(p.next_frame(&mut rng), None, "{}", p.name());
            }
        }
    }

    #[test]
    fn single_chunk_is_just_within_sampler() {
        let mut p = ExSample::new(Chunking::single(64), ExSampleConfig::default());
        let mut rng = Rng64::new(75);
        let mut n = 0;
        while p.next_frame(&mut rng).is_some() {
            n += 1;
        }
        assert_eq!(n, 64);
    }

    #[test]
    fn name_reflects_config() {
        let p = ExSample::new(Chunking::even(10, 2), ExSampleConfig::default());
        assert_eq!(p.name(), "exsample(M=2,thompson,random+)");
    }

    #[test]
    fn steps_counts_draws() {
        let mut p = ExSample::new(Chunking::even(100, 2), ExSampleConfig::default());
        let mut rng = Rng64::new(76);
        for _ in 0..10 {
            p.next_frame(&mut rng);
        }
        assert_eq!(p.steps(), 10);
    }

    #[test]
    fn many_identical_chunks_still_explore_all() {
        // With 100 chunks in one group, every chunk must eventually be
        // sampled (the uniform-member selection must not starve anyone).
        let mut p = ExSample::new(Chunking::even(10_000, 100), ExSampleConfig::default());
        run_policy(&mut p, |_| Feedback::NONE, 2_000, 77);
        let unsampled = p.chunk_stats().iter().filter(|s| s.n == 0).count();
        assert_eq!(unsampled, 0, "{unsampled} chunks never sampled");
    }

    #[test]
    fn import_stats_is_bit_identical_and_rebuilds_groups() {
        let mut donor = ExSample::new(Chunking::even(1000, 10), ExSampleConfig::default());
        run_policy(
            &mut donor,
            |f| {
                if f < 100 {
                    Feedback::new(1, 0)
                } else {
                    Feedback::NONE
                }
            },
            80,
            95,
        );
        let exported = donor.chunk_stats().to_vec();
        assert!(exported.iter().any(|s| s.n1 > 0.0));

        let mut warm = ExSample::new(Chunking::even(1000, 10), ExSampleConfig::default());
        warm.import_stats(&exported);
        for (a, b) in warm.chunk_stats().iter().zip(&exported) {
            assert_eq!(a.n1.to_bits(), b.n1.to_bits());
            assert_eq!(a.n, b.n);
        }
        // Groups were rebuilt: the warm sampler immediately concentrates
        // on the donor's rewarding chunk instead of exploring uniformly.
        run_policy(&mut warm, |_| Feedback::NONE, 20, 96);
        let delta0 = warm.chunk_stats()[0].n - exported[0].n;
        let delta_rest: u64 = warm.chunk_stats()[1..]
            .iter()
            .zip(&exported[1..])
            .map(|(a, b)| a.n - b.n)
            .sum();
        assert!(delta0 > delta_rest, "chunk0 +{delta0}, rest +{delta_rest}");
        // All chunks are still sampleable: the import touched beliefs, not
        // within-chunk availability.
        assert_eq!(warm.active_chunks(), 10);
    }

    #[test]
    #[should_panic(expected = "every chunk")]
    fn import_stats_rejects_wrong_length() {
        let mut p = ExSample::new(Chunking::even(100, 4), ExSampleConfig::default());
        p.import_stats(&[ChunkStats::default(); 3]);
    }

    #[test]
    fn feedback_after_retirement_is_safe() {
        // Exhaust a tiny chunk, then feed back its last frame's outcome.
        let mut p = ExSample::new(
            Chunking::from_bounds(vec![0, 2, 100]),
            ExSampleConfig::default(),
        );
        let mut rng = Rng64::new(78);
        let mut last_small = None;
        for _ in 0..50 {
            let f = p.next_frame(&mut rng).unwrap();
            if f < 2 {
                last_small = Some(f);
            }
            p.feedback(f, Feedback::NONE);
        }
        // Chunk 0 (2 frames) long exhausted; feedback again must not panic
        // or corrupt groups.
        if let Some(f) = last_small {
            p.feedback(f, Feedback::new(1, 0));
        }
        while p.next_frame(&mut rng).is_some() {}
        assert_eq!(p.active_chunks(), 0);
    }
}
