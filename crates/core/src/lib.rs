//! ExSample: chunk-based adaptive sampling for distinct-object search.
//!
//! This crate implements the contribution of *"ExSample: Efficient
//! Searches on Video Repositories through Adaptive Sampling"* (ICDE 2022)
//! as a reusable, video-agnostic library. The algorithm treats temporal
//! chunks of a frame range as bandit arms:
//!
//! 1. each chunk `j` keeps `N1[j]` (results seen exactly once) and `n[j]`
//!    (frames sampled) — see [`belief`];
//! 2. the future-reward estimate `R̂_j = N1_j / n_j` (Eq. III.1) is wrapped
//!    in a `Gamma(N1_j + α0, n_j + β0)` belief (Eq. III.4) and chunks are
//!    chosen by Thompson sampling (or Bayes-UCB / greedy) — see
//!    [`exsample`];
//! 3. within the chosen chunk, frames are drawn without replacement using
//!    the stratified *random+* order (§III-F) — see [`within`];
//! 4. the driver loop (Algorithm 1) feeds detector/discriminator outcomes
//!    back as [`Feedback`] — see [`driver`].
//!
//! The crate is deliberately independent of any video machinery: a frame
//! is a `u64` index, and the caller supplies an oracle that turns a frame
//! index into "how many new / once-matched results did this frame yield".
//! The companion crates provide simulated detectors, discriminators, and
//! synthetic repositories.
//!
//! # Quick start
//!
//! ```
//! use exsample_core::{
//!     chunking::Chunking,
//!     driver::{run_search, SearchCost, StopCond},
//!     exsample::{ExSample, ExSampleConfig},
//!     Feedback,
//! };
//! use exsample_stats::Rng64;
//!
//! // 1000 frames in 10 chunks; objects hide in frames 500..520.
//! let chunking = Chunking::even(1000, 10);
//! let mut policy = ExSample::new(chunking, ExSampleConfig::default());
//! let mut rng = Rng64::new(7);
//! let mut oracle = |frame: u64| {
//!     if (500..520).contains(&frame) {
//!         Feedback { new_results: 1, matched_once: 0 }
//!     } else {
//!         Feedback::NONE
//!     }
//! };
//! let trace = run_search(
//!     &mut policy,
//!     &mut oracle,
//!     &SearchCost::per_sample(0.05),
//!     &StopCond::results(5),
//!     &mut rng,
//! );
//! assert!(trace.found() >= 5);
//! ```

#![warn(missing_docs)]

pub mod belief;
pub mod chunking;
pub mod driver;
pub mod exsample;
pub mod policy;
pub mod within;

pub use belief::{BeliefPrior, ChunkStats, Selector};
pub use chunking::Chunking;
pub use driver::{run_search, SearchCost, SearchStepper, SearchTrace, StopCond, TracePoint};
pub use exsample::{ExSample, ExSampleConfig};
pub use policy::{Feedback, SamplingPolicy};
pub use within::{RandomWithin, ScoredWithin, StratifiedWithin, WithinKind, WithinSampler};

/// Global frame index. Policies hand these out; oracles consume them.
pub type FrameIdx = u64;
