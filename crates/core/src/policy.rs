//! The sampling-policy abstraction shared by ExSample and all baselines.

use crate::FrameIdx;
use exsample_stats::Rng64;

/// What a processed frame told us, from the discriminator's perspective
/// (Algorithm 1, line 10): `d0` and `d1` set sizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Feedback {
    /// `|d0|`: detections that matched no previous result — new distinct
    /// objects.
    pub new_results: u32,
    /// `|d1|`: detections whose object had been seen exactly once before
    /// (i.e. results leaving the `N1` pool).
    pub matched_once: u32,
}

impl Feedback {
    /// A frame that yielded nothing.
    pub const NONE: Feedback = Feedback {
        new_results: 0,
        matched_once: 0,
    };

    /// Convenience constructor.
    pub fn new(new_results: u32, matched_once: u32) -> Self {
        Feedback {
            new_results,
            matched_once,
        }
    }
}

/// A strategy for choosing which frame to process next.
///
/// Implementations must never return the same frame twice (sampling is
/// without replacement) and must return `None` once the repository is
/// exhausted.
///
/// Policies are `Send` so a search session (policy + RNG + stepper) can
/// migrate between the worker threads of the multi-query engine; each
/// session is still driven by one thread at a time, so `Sync` is not
/// required.
pub trait SamplingPolicy: Send {
    /// Choose the next frame to process.
    fn next_frame(&mut self, rng: &mut Rng64) -> Option<FrameIdx>;

    /// Report the outcome of processing `frame` back to the policy.
    /// Adaptive policies update their per-chunk statistics here; static
    /// policies ignore it.
    fn feedback(&mut self, frame: FrameIdx, fb: Feedback);

    /// Choose a batch of up to `batch` frames *before* seeing any of their
    /// outcomes — the paper's batched-inference mode (§III-F). The default
    /// draws sequentially without intermediate feedback, which matches the
    /// paper's description of drawing `B` Thompson samples per chunk.
    fn next_batch(&mut self, batch: usize, rng: &mut Rng64, out: &mut Vec<FrameIdx>) {
        out.clear();
        for _ in 0..batch {
            match self.next_frame(rng) {
                Some(f) => out.push(f),
                None => break,
            }
        }
    }

    /// Human-readable policy name for reports.
    fn name(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic stub policy for exercising the default batch impl.
    struct Counter {
        next: u64,
        limit: u64,
        feedbacks: u32,
    }

    impl SamplingPolicy for Counter {
        fn next_frame(&mut self, _rng: &mut Rng64) -> Option<FrameIdx> {
            if self.next >= self.limit {
                None
            } else {
                self.next += 1;
                Some(self.next - 1)
            }
        }
        fn feedback(&mut self, _frame: FrameIdx, fb: Feedback) {
            self.feedbacks += fb.new_results;
        }
        fn name(&self) -> String {
            "counter".into()
        }
    }

    #[test]
    fn default_batch_draws_sequentially() {
        let mut p = Counter {
            next: 0,
            limit: 10,
            feedbacks: 0,
        };
        let mut rng = Rng64::new(1);
        let mut out = Vec::new();
        p.next_batch(4, &mut rng, &mut out);
        assert_eq!(out, vec![0, 1, 2, 3]);
        p.next_batch(100, &mut rng, &mut out);
        assert_eq!(out, (4..10).collect::<Vec<_>>());
        p.next_batch(3, &mut rng, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn feedback_reaches_policy() {
        let mut p = Counter {
            next: 0,
            limit: 10,
            feedbacks: 0,
        };
        p.feedback(0, Feedback::new(3, 1));
        assert_eq!(p.feedbacks, 3);
    }

    #[test]
    fn feedback_none_constant() {
        assert_eq!(Feedback::NONE, Feedback::new(0, 0));
    }
}
