//! Within-chunk frame ordering: uniform random and stratified *random+*.
//!
//! Plain uniform sampling without replacement is unbiased but clumpy: in a
//! 1000-hour video it starts re-visiting the same hour after only ~30
//! draws (birthday effect). The paper's *random+* (§III-F) avoids this by
//! sampling "one random frame out of every hour, then one frame out of
//! every not-yet sampled half hour at random, and so on": a breadth-first
//! descent through a binary subdivision of the range, random within each
//! stratum and visiting each level's strata in random order. ExSample uses
//! random+ *inside* the chosen chunk; the experiments also evaluate it as
//! a standalone baseline over the whole dataset.

use crate::FrameIdx;
use exsample_stats::{FxHashSet, Rng64, UniformNoReplacement};
use std::sync::Arc;

/// A without-replacement frame stream over one contiguous range.
#[derive(Debug, Clone)]
pub enum WithinSampler {
    /// Plain uniform without replacement.
    Random(RandomWithin),
    /// Stratified random+ order.
    Stratified(StratifiedWithin),
    /// Descending external score order (the §VII fusion direction).
    Scored(ScoredWithin),
}

impl WithinSampler {
    /// Construct the chosen sampler kind over a frame range.
    pub fn new(kind: WithinKind, range: std::ops::Range<u64>) -> Self {
        match kind {
            WithinKind::Random => WithinSampler::Random(RandomWithin::new(range)),
            WithinKind::Stratified => WithinSampler::Stratified(StratifiedWithin::new(range)),
        }
    }

    /// Draw the next not-yet-returned frame, or `None` when exhausted.
    pub fn draw(&mut self, rng: &mut Rng64) -> Option<FrameIdx> {
        match self {
            WithinSampler::Random(s) => s.draw(rng),
            WithinSampler::Stratified(s) => s.draw(rng),
            WithinSampler::Scored(s) => s.draw(),
        }
    }

    /// Frames not yet returned.
    pub fn remaining(&self) -> u64 {
        match self {
            WithinSampler::Random(s) => s.remaining(),
            WithinSampler::Stratified(s) => s.remaining(),
            WithinSampler::Scored(s) => s.remaining(),
        }
    }
}

/// Score-descending within-chunk order — the paper's §VII fusion sketch:
/// "the equations in section III remain valid even if sampling within a
/// chunk is non-uniform but based on a score". Chunk *selection* stays
/// adaptive (ExSample); within the chosen chunk, frames are processed from
/// the highest proxy score down.
///
/// Note that obtaining the scores still requires scoring the frames
/// (today: a scan); the paper leaves scan-free predictive scoring as
/// future work, so experiments using this sampler account the scan cost
/// separately.
#[derive(Debug, Clone)]
pub struct ScoredWithin {
    /// Frame ids of this range, sorted by descending score.
    order: Vec<FrameIdx>,
    pos: usize,
}

impl ScoredWithin {
    /// Build from global per-frame scores (indexed by frame id). Ties
    /// break toward earlier frames.
    ///
    /// # Panics
    /// Panics if the range exceeds the score table or a score is NaN.
    pub fn new(scores: &Arc<Vec<f32>>, range: std::ops::Range<u64>) -> Self {
        assert!(
            range.end as usize <= scores.len(),
            "score table too short for range {range:?}"
        );
        let mut order: Vec<FrameIdx> = range.collect();
        order.sort_by(|&a, &b| {
            scores[b as usize]
                .partial_cmp(&scores[a as usize])
                .expect("scores must not be NaN")
                .then(a.cmp(&b))
        });
        ScoredWithin { order, pos: 0 }
    }

    /// Next frame in score order, or `None` when exhausted.
    pub fn draw(&mut self) -> Option<FrameIdx> {
        let f = self.order.get(self.pos).copied();
        if f.is_some() {
            self.pos += 1;
        }
        f
    }

    /// Frames not yet returned.
    pub fn remaining(&self) -> u64 {
        (self.order.len() - self.pos) as u64
    }
}

/// Which within-chunk sampler to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WithinKind {
    /// The paper's default for ExSample chunks (and the `random+`
    /// baseline).
    #[default]
    Stratified,
    /// Plain uniform — the `random` baseline, also used in the
    /// within-chunk ablation.
    Random,
}

impl WithinKind {
    /// Short identifier for reports.
    pub fn name(&self) -> &'static str {
        match self {
            WithinKind::Stratified => "random+",
            WithinKind::Random => "random",
        }
    }
}

/// Uniform sampling without replacement over `[lo, hi)` — a thin wrapper
/// around the sparse Fisher–Yates sampler.
#[derive(Debug, Clone)]
pub struct RandomWithin {
    lo: u64,
    inner: UniformNoReplacement,
}

impl RandomWithin {
    /// Sampler over the given range.
    pub fn new(range: std::ops::Range<u64>) -> Self {
        RandomWithin {
            lo: range.start,
            inner: UniformNoReplacement::new(range.end - range.start),
        }
    }

    /// Draw the next frame.
    pub fn draw(&mut self, rng: &mut Rng64) -> Option<FrameIdx> {
        self.inner.next(rng).map(|off| self.lo + off)
    }

    /// Frames not yet returned.
    pub fn remaining(&self) -> u64 {
        self.inner.remaining()
    }
}

/// The *random+* stratified order over `[lo, hi)`.
///
/// Level `k` divides the range into `min(2^k, len)` strata. The sampler
/// visits the strata of the current level in a fresh random order, drawing
/// one uniformly random not-yet-sampled frame from each non-exhausted
/// stratum, then descends to the next level. Coverage guarantee: after the
/// level-`k` pass completes, every stratum of width `len/2^k` has been
/// sampled at least once (unless exhausted) — exactly the paper's
/// "every hour before any hour twice" property.
#[derive(Debug, Clone)]
pub struct StratifiedWithin {
    lo: u64,
    len: u64,
    sampled: FxHashSet<u64>,
    /// Current subdivision level; strata count is `min(2^level, len)`.
    level: u32,
    /// Shuffled stratum visit order for the current level.
    order: Vec<u64>,
    pos: usize,
}

impl StratifiedWithin {
    /// Maximum random probes per stratum before falling back to a linear
    /// scan for an unsampled frame.
    const PROBES: usize = 8;

    /// Sampler over the given range.
    pub fn new(range: std::ops::Range<u64>) -> Self {
        let len = range.end - range.start;
        StratifiedWithin {
            lo: range.start,
            len,
            sampled: FxHashSet::default(),
            level: 0,
            order: vec![0],
            pos: 0,
        }
    }

    fn strata(&self) -> u64 {
        if self.level >= 63 {
            self.len
        } else {
            (1u64 << self.level).min(self.len.max(1))
        }
    }

    fn stratum_bounds(&self, s: u64) -> (u64, u64) {
        let strata = self.strata();
        // Multiply-then-divide keeps strata within one frame of equal size.
        (s * self.len / strata, (s + 1) * self.len / strata)
    }

    fn advance_level(&mut self, rng: &mut Rng64) {
        if self.strata() < self.len {
            self.level += 1;
        }
        let strata = self.strata();
        self.order.clear();
        self.order.extend(0..strata);
        rng.shuffle(&mut self.order);
        self.pos = 0;
    }

    /// Frames not yet returned.
    pub fn remaining(&self) -> u64 {
        self.len - self.sampled.len() as u64
    }

    /// Draw the next frame in random+ order, or `None` when exhausted.
    pub fn draw(&mut self, rng: &mut Rng64) -> Option<FrameIdx> {
        if self.remaining() == 0 {
            return None;
        }
        loop {
            if self.pos >= self.order.len() {
                self.advance_level(rng);
            }
            let s = self.order[self.pos];
            self.pos += 1;
            let (a, b) = self.stratum_bounds(s);
            if a >= b {
                continue; // degenerate stratum (len < strata)
            }
            // Random probes: cheap while the stratum is mostly unsampled.
            for _ in 0..Self::PROBES {
                let cand = rng.u64_range(a, b);
                if self.sampled.insert(cand) {
                    return Some(self.lo + cand);
                }
            }
            // Dense stratum: linear scan from a random start. Stratum sizes
            // shrink geometrically with the level, so this stays cheap.
            let span = b - a;
            let start = rng.u64_below(span);
            for k in 0..span {
                let cand = a + (start + k) % span;
                if self.sampled.insert(cand) {
                    return Some(self.lo + cand);
                }
            }
            // Stratum fully exhausted; move on.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut s: StratifiedWithin, rng: &mut Rng64) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(f) = s.draw(rng) {
            out.push(f);
        }
        out
    }

    #[test]
    fn stratified_is_a_permutation() {
        let mut rng = Rng64::new(60);
        let out = drain(StratifiedWithin::new(100..612), &mut rng);
        assert_eq!(out.len(), 512);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (100..612).collect::<Vec<_>>());
    }

    #[test]
    fn stratified_covers_halves_before_repeats() {
        // After 2 draws, one draw must be in each half; after 4, one in
        // each quarter, etc. (coverage property of random+).
        let mut rng = Rng64::new(61);
        let mut s = StratifiedWithin::new(0..1024);
        let mut drawn = Vec::new();
        for _ in 0..16 {
            drawn.push(s.draw(&mut rng).unwrap());
        }
        // Levels: 1 draw at level 0, 2 at level 1, 4 at level 2, 8 at level 3.
        let after_level = |k: u32| 2u64.pow(k + 1) - 1;
        for k in 1..4u32 {
            let prefix = &drawn[..after_level(k) as usize];
            let strata = 2u64.pow(k);
            for st in 0..strata {
                let lo = st * 1024 / strata;
                let hi = (st + 1) * 1024 / strata;
                assert!(
                    prefix.iter().any(|&f| f >= lo && f < hi),
                    "level {k}: stratum {st} ({lo}..{hi}) not covered by {prefix:?}"
                );
            }
        }
    }

    #[test]
    fn stratified_tiny_ranges() {
        let mut rng = Rng64::new(62);
        assert_eq!(drain(StratifiedWithin::new(5..6), &mut rng), vec![5]);
        let out = drain(StratifiedWithin::new(0..2), &mut rng);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1]);
        let mut empty = StratifiedWithin::new(7..7);
        assert_eq!(empty.draw(&mut rng), None);
    }

    #[test]
    fn stratified_odd_sizes_exhaust() {
        for n in [3u64, 7, 17, 100, 257, 1000] {
            let mut rng = Rng64::new(63 + n);
            let out = drain(StratifiedWithin::new(0..n), &mut rng);
            assert_eq!(out.len() as u64, n, "n={n}");
            let mut sorted = out;
            sorted.sort_unstable();
            assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        }
    }

    #[test]
    fn stratified_remaining_counts_down() {
        let mut rng = Rng64::new(64);
        let mut s = StratifiedWithin::new(0..50);
        assert_eq!(s.remaining(), 50);
        for i in 0..50 {
            s.draw(&mut rng).unwrap();
            assert_eq!(s.remaining(), 50 - i - 1);
        }
        assert_eq!(s.draw(&mut rng), None);
    }

    #[test]
    fn random_within_is_permutation() {
        let mut rng = Rng64::new(65);
        let mut s = RandomWithin::new(10..30);
        let mut out = Vec::new();
        while let Some(f) = s.draw(&mut rng) {
            out.push(f);
        }
        out.sort_unstable();
        assert_eq!(out, (10..30).collect::<Vec<_>>());
    }

    #[test]
    fn scored_within_follows_descending_scores() {
        let scores = Arc::new(vec![0.1f32, 0.9, 0.5, 0.9, 0.0]);
        let mut s = ScoredWithin::new(&scores, 0..5);
        assert_eq!(s.remaining(), 5);
        // Ties (frames 1 and 3 at 0.9) break toward the earlier frame.
        assert_eq!(s.draw(), Some(1));
        assert_eq!(s.draw(), Some(3));
        assert_eq!(s.draw(), Some(2));
        assert_eq!(s.draw(), Some(0));
        assert_eq!(s.draw(), Some(4));
        assert_eq!(s.draw(), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn scored_within_respects_subrange() {
        let scores = Arc::new((0..100).map(|i| i as f32).collect::<Vec<_>>());
        let mut s = ScoredWithin::new(&scores, 40..45);
        let drawn: Vec<u64> = std::iter::from_fn(|| s.draw()).collect();
        assert_eq!(drawn, vec![44, 43, 42, 41, 40]);
    }

    #[test]
    fn wrapper_dispatch() {
        let mut rng = Rng64::new(66);
        for kind in [WithinKind::Random, WithinKind::Stratified] {
            let mut s = WithinSampler::new(kind, 0..10);
            let mut seen = std::collections::HashSet::new();
            while let Some(f) = s.draw(&mut rng) {
                assert!(f < 10);
                assert!(seen.insert(f));
            }
            assert_eq!(seen.len(), 10);
            assert_eq!(s.remaining(), 0);
        }
    }

    #[test]
    fn stratified_early_draws_spread_better_than_random() {
        // Statistical smoke test of the motivation: with 32 draws over 32
        // strata, random+ covers all strata; uniform random typically
        // covers ~20.
        let mut rng = Rng64::new(67);
        let mut s = StratifiedWithin::new(0..32_768);
        let mut covered = std::collections::HashSet::new();
        for _ in 0..32 {
            // Skip the first draw (level 0) — count strata of the 32-wide
            // level regardless.
            let f = s.draw(&mut rng).unwrap();
            covered.insert(f / 1024);
        }
        assert!(covered.len() >= 24, "covered={}", covered.len());
    }
}
