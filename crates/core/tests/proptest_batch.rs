//! Property tests for the §III-F batched draw mode: `ExSample::next_batch`
//! must sample without replacement (no duplicate frames, in-flight or
//! ever), respect exhausted chunks, and drain the repository exactly.

use exsample_core::exsample::{ExSample, ExSampleConfig};
use exsample_core::policy::{Feedback, SamplingPolicy};
use exsample_core::Chunking;
use exsample_stats::Rng64;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Across repository sizes, chunkings, batch sizes, and feedback
    /// patterns: batches never contain a duplicate (within a batch or
    /// across batches), never draw from an exhausted chunk (implied by
    /// without-replacement coverage), cover every frame exactly once,
    /// and stay empty once the sampler is dry.
    #[test]
    fn next_batch_never_duplicates_and_drains_exactly(
        frames in 1u64..600,
        chunks in 1usize..40,
        batch in 1usize..33,
        seed in any::<u64>(),
        reward_mod in 1u64..20,
    ) {
        let chunks = chunks.min(frames as usize);
        let mut p = ExSample::new(Chunking::even(frames, chunks), ExSampleConfig::default());
        let mut rng = Rng64::new(seed);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        loop {
            p.next_batch(batch, &mut rng, &mut out);
            if out.is_empty() {
                break;
            }
            prop_assert!(out.len() <= batch, "overfull batch: {} > {batch}", out.len());
            for &f in &out {
                prop_assert!(f < frames, "frame {f} out of range");
                prop_assert!(seen.insert(f), "duplicate frame {f}");
            }
            // Feedback replayed in draw order, as the engine does.
            for &f in &out {
                let fb = if f % reward_mod == 0 {
                    Feedback::new(1, 0)
                } else {
                    Feedback::NONE
                };
                p.feedback(f, fb);
            }
        }
        prop_assert_eq!(seen.len() as u64, frames, "not every frame drawn");
        prop_assert_eq!(p.active_chunks(), 0);
        prop_assert_eq!(p.steps(), frames);
        // A dry sampler stays dry: no resurrection of retired chunks.
        p.next_batch(batch, &mut rng, &mut out);
        prop_assert!(out.is_empty());
    }

    /// Drawing in batches consumes the same *set* of frames per chunk as
    /// per-frame draws would: a batch must stop crossing into a chunk
    /// once that chunk's within-stream is exhausted.
    #[test]
    fn batches_respect_tiny_chunk_boundaries(
        chunk_a in 1u64..8,
        rest in 8u64..200,
        batch in 2usize..17,
        seed in any::<u64>(),
    ) {
        // First chunk is tiny: batches bigger than it must retire it and
        // move on without repeats or out-of-chunk frames.
        let bounds = vec![0, chunk_a, chunk_a + rest];
        let frames = chunk_a + rest;
        let mut p = ExSample::new(Chunking::from_bounds(bounds), ExSampleConfig::default());
        let mut rng = Rng64::new(seed);
        let mut out = Vec::new();
        let mut from_a = 0u64;
        loop {
            p.next_batch(batch, &mut rng, &mut out);
            if out.is_empty() {
                break;
            }
            from_a += out.iter().filter(|&&f| f < chunk_a).count() as u64;
            prop_assert!(from_a <= chunk_a, "chunk A oversampled: {from_a}/{chunk_a}");
            for &f in &out {
                p.feedback(f, Feedback::NONE);
            }
        }
        prop_assert_eq!(from_a, chunk_a);
        prop_assert_eq!(p.steps(), frames);
    }
}
