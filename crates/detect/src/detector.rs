//! The simulated object detector.

use exsample_stats::dist::{Continuous, Normal, Poisson};
use exsample_stats::Rng64;
use exsample_videosim::{BBox, ClassId, FrameIdx, GroundTruth, InstanceId};
use std::sync::Arc;

/// One detection output by the detector for one frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// Detected box (with localization noise applied).
    pub bbox: BBox,
    /// Predicted class.
    pub class: ClassId,
    /// Detector confidence in `[0, 1]`.
    pub score: f32,
    /// Ground-truth identity — **evaluation only**. `None` marks a false
    /// positive. The discriminators that emulate real pipelines never read
    /// this except through the track-extension emulation (see
    /// [`crate::discrim`]); recall accounting reads it freely.
    pub truth: Option<InstanceId>,
}

/// Anything that maps a frame index to detections. ExSample treats this as
/// an expensive black box; cost is charged by the driver's cost model.
pub trait Detector {
    /// Run detection on one frame.
    fn detect(&mut self, frame: FrameIdx) -> Vec<Detection>;
    /// The object class this query's detector reports.
    fn class(&self) -> ClassId;
}

/// Detector imperfection model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Base probability of missing a visible object regardless of size.
    pub miss_rate: f64,
    /// Extra miss probability for vanishingly small boxes; decays as
    /// `exp(-area / area_scale)`.
    pub small_box_extra_miss: f64,
    /// Box area (px²) at which the extra miss decays by `1/e`.
    pub area_scale: f64,
    /// Expected false positives per frame (Poisson).
    pub fp_rate: f64,
    /// Std-dev of Gaussian jitter added to box corners (px).
    pub jitter_px: f64,
}

impl NoiseModel {
    /// A perfect detector: every visible object, exact boxes, no false
    /// positives. Matches the paper's simulation sections.
    pub fn none() -> Self {
        NoiseModel {
            miss_rate: 0.0,
            small_box_extra_miss: 0.0,
            area_scale: 1.0,
            fp_rate: 0.0,
            jitter_px: 0.0,
        }
    }

    /// A plausible Faster-RCNN-like operating point: ~5% misses on large
    /// objects, substantial misses on tiny ones, occasional false
    /// positives, a few pixels of localization noise.
    pub fn realistic() -> Self {
        NoiseModel {
            miss_rate: 0.05,
            small_box_extra_miss: 0.6,
            area_scale: 2_000.0,
            fp_rate: 0.02,
            jitter_px: 2.0,
        }
    }

    /// Detection probability for a box of the given area.
    pub fn detect_probability(&self, area: f64) -> f64 {
        let extra = self.small_box_extra_miss * (-area / self.area_scale).exp();
        ((1.0 - self.miss_rate) * (1.0 - extra)).clamp(0.0, 1.0)
    }
}

/// Ground-truth-backed detector for a single query class.
///
/// Deterministic per `(seed, frame)`: repeated calls on the same frame
/// return identical detections, like a real (deterministic) network.
#[derive(Debug, Clone)]
pub struct SimulatedDetector {
    gt: Arc<GroundTruth>,
    class: ClassId,
    noise: NoiseModel,
    rng_root: Rng64,
    scratch: Vec<InstanceId>,
}

impl SimulatedDetector {
    /// Build a detector for one class of one dataset.
    pub fn new(gt: Arc<GroundTruth>, class: ClassId, noise: NoiseModel, seed: u64) -> Self {
        SimulatedDetector {
            gt,
            class,
            noise,
            rng_root: Rng64::new(seed),
            scratch: Vec::new(),
        }
    }

    /// Perfect detector (no noise).
    pub fn perfect(gt: Arc<GroundTruth>, class: ClassId) -> Self {
        SimulatedDetector::new(gt, class, NoiseModel::none(), 0)
    }

    /// The dataset this detector runs over.
    pub fn ground_truth(&self) -> &Arc<GroundTruth> {
        &self.gt
    }

    /// Run detection on one frame through `&self` — identical output to
    /// [`Detector::detect`] (the per-frame noise stream depends only on
    /// `(seed, frame)`), but usable from shared references, which is what
    /// the engine's frame cache needs when many sessions share one
    /// detector. The caller supplies the scratch buffer the `&mut` path
    /// keeps internally.
    pub fn detect_with_scratch(
        &self,
        frame: FrameIdx,
        scratch: &mut Vec<InstanceId>,
    ) -> Vec<Detection> {
        // Per-frame deterministic stream: same frame -> same noise.
        let mut rng = self.rng_root.fork(frame);
        let gt = &self.gt;
        gt.visible_at(self.class, frame, scratch);
        let mut out = Vec::with_capacity(scratch.len());
        let jitter = if self.noise.jitter_px > 0.0 {
            Some(Normal::new(0.0, self.noise.jitter_px))
        } else {
            None
        };
        for &id in scratch.iter() {
            let inst = gt.instance(id);
            let bbox = inst
                .bbox_at(frame, gt.img_w, gt.img_h)
                .expect("instance reported visible");
            let p = self.noise.detect_probability(bbox.area() as f64);
            if !rng.chance(p) {
                continue;
            }
            let bbox = match &jitter {
                Some(j) => BBox::new(
                    bbox.x1 + j.sample(&mut rng) as f32,
                    bbox.y1 + j.sample(&mut rng) as f32,
                    bbox.x2 + j.sample(&mut rng) as f32,
                    bbox.y2 + j.sample(&mut rng) as f32,
                )
                .clamp_to(gt.img_w, gt.img_h),
                None => bbox,
            };
            out.push(Detection {
                bbox,
                class: self.class,
                score: 0.5 + 0.5 * rng.f64() as f32,
                truth: Some(id),
            });
        }
        if self.noise.fp_rate > 0.0 {
            let n_fp = Poisson::new(self.noise.fp_rate).sample(&mut rng);
            for _ in 0..n_fp {
                let w = 20.0 + 80.0 * rng.f64() as f32;
                let h = 20.0 + 60.0 * rng.f64() as f32;
                let cx = gt.img_w * rng.f64() as f32;
                let cy = gt.img_h * rng.f64() as f32;
                out.push(Detection {
                    bbox: BBox::from_center(cx, cy, w, h).clamp_to(gt.img_w, gt.img_h),
                    class: self.class,
                    score: 0.5 + 0.3 * rng.f64() as f32,
                    truth: None,
                });
            }
        }
        out
    }
}

/// Run a full per-class detector bank over one frame, concatenating each
/// class detector's output — the all-classes invocation whose result the
/// engine caches per `(repo, frame)`. Output order follows the bank
/// order, so it is deterministic for a fixed bank.
pub fn detect_frame(
    bank: &[SimulatedDetector],
    frame: FrameIdx,
    scratch: &mut Vec<InstanceId>,
) -> Vec<Detection> {
    let mut all = Vec::new();
    for det in bank {
        all.extend(det.detect_with_scratch(frame, scratch));
    }
    all
}

/// One batched detector **dispatch** (ExSample §III-F): run the bank over
/// `frames` back-to-back, the way a GPU processes one submitted batch.
/// Output order matches `frames`. Each frame's detections are identical
/// to a per-frame [`detect_frame`] call — batching changes *when* the
/// detector runs and what dispatch overhead is paid (priced by
/// `exsample_store::CostModel::dispatch_s`), never what it outputs.
pub fn dispatch_batch(
    bank: &[SimulatedDetector],
    frames: &[FrameIdx],
    scratch: &mut Vec<InstanceId>,
) -> Vec<Vec<Detection>> {
    frames
        .iter()
        .map(|&f| detect_frame(bank, f, scratch))
        .collect()
}

impl Detector for SimulatedDetector {
    fn detect(&mut self, frame: FrameIdx) -> Vec<Detection> {
        let mut scratch = std::mem::take(&mut self.scratch);
        let out = self.detect_with_scratch(frame, &mut scratch);
        self.scratch = scratch;
        out
    }

    fn class(&self) -> ClassId {
        self.class
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_videosim::{ClassSpec, DatasetSpec, SkewSpec};

    fn truth() -> Arc<GroundTruth> {
        let spec =
            DatasetSpec::single_class(10_000, ClassSpec::new("car", 100, 200.0, SkewSpec::Uniform));
        Arc::new(spec.generate(42))
    }

    #[test]
    fn perfect_detector_finds_exactly_the_visible() {
        let gt = truth();
        let mut det = SimulatedDetector::perfect(gt.clone(), ClassId(0));
        let mut expected = Vec::new();
        for frame in (0..10_000).step_by(397) {
            gt.visible_at(ClassId(0), frame, &mut expected);
            let dets = det.detect(frame);
            assert_eq!(dets.len(), expected.len(), "frame {frame}");
            let mut got: Vec<InstanceId> = dets.iter().map(|d| d.truth.unwrap()).collect();
            got.sort();
            expected.sort();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn detection_is_deterministic_per_frame() {
        let gt = truth();
        let mut det = SimulatedDetector::new(gt, ClassId(0), NoiseModel::realistic(), 9);
        let a = det.detect(5000);
        let b = det.detect(5000);
        assert_eq!(a, b);
    }

    #[test]
    fn shared_path_matches_mut_path() {
        let gt = truth();
        let mut det = SimulatedDetector::new(gt, ClassId(0), NoiseModel::realistic(), 13);
        let mut scratch = Vec::new();
        for frame in (0..10_000u64).step_by(611) {
            let shared = det.detect_with_scratch(frame, &mut scratch);
            let owned = det.detect(frame);
            assert_eq!(shared, owned, "frame {frame}");
        }
    }

    #[test]
    fn dispatch_batch_matches_per_frame_detection() {
        // Batching is a cost/latency decision, never an output one: each
        // frame of a dispatch must equal its individual detection.
        let gt = truth();
        let bank = vec![SimulatedDetector::new(
            gt,
            ClassId(0),
            NoiseModel::realistic(),
            21,
        )];
        let frames: Vec<FrameIdx> = (0..10_000).step_by(1_237).collect();
        let mut scratch = Vec::new();
        let batched = dispatch_batch(&bank, &frames, &mut scratch);
        assert_eq!(batched.len(), frames.len());
        for (i, &frame) in frames.iter().enumerate() {
            assert_eq!(
                batched[i],
                detect_frame(&bank, frame, &mut scratch),
                "frame {frame}"
            );
        }
    }

    #[test]
    fn noise_misses_some_objects() {
        let gt = truth();
        let noise = NoiseModel {
            miss_rate: 0.5,
            ..NoiseModel::none()
        };
        let mut det = SimulatedDetector::new(gt.clone(), ClassId(0), noise, 10);
        let mut visible = 0usize;
        let mut detected = 0usize;
        let mut scratch = Vec::new();
        for frame in 0..10_000u64 {
            gt.visible_at(ClassId(0), frame, &mut scratch);
            visible += scratch.len();
            detected += det.detect(frame).len();
        }
        let rate = detected as f64 / visible as f64;
        assert!((rate - 0.5).abs() < 0.05, "rate={rate}");
    }

    #[test]
    fn small_boxes_missed_more_often() {
        let n = NoiseModel::realistic();
        assert!(n.detect_probability(100.0) < n.detect_probability(50_000.0));
        assert!(n.detect_probability(1e9) > 0.94);
    }

    #[test]
    fn false_positives_marked_with_no_truth() {
        let gt = truth();
        let noise = NoiseModel {
            fp_rate: 2.0,
            ..NoiseModel::none()
        };
        let mut det = SimulatedDetector::new(gt, ClassId(0), noise, 11);
        let mut fp = 0usize;
        for frame in 0..2000u64 {
            fp += det
                .detect(frame)
                .iter()
                .filter(|d| d.truth.is_none())
                .count();
        }
        // ~2 per frame expected.
        assert!((3000..5000).contains(&fp), "fp={fp}");
    }

    #[test]
    fn jitter_moves_boxes_but_keeps_overlap() {
        let gt = truth();
        let mut clean = SimulatedDetector::perfect(gt.clone(), ClassId(0));
        let noise = NoiseModel {
            jitter_px: 4.0,
            ..NoiseModel::none()
        };
        let mut noisy = SimulatedDetector::new(gt, ClassId(0), noise, 12);
        // Find a frame with at least one detection.
        for frame in 0..10_000u64 {
            let a = clean.detect(frame);
            if a.is_empty() {
                continue;
            }
            let b = noisy.detect(frame);
            assert_eq!(a.len(), b.len());
            for (ca, cb) in a.iter().zip(&b) {
                assert!(ca.bbox.iou(&cb.bbox) > 0.3, "jitter destroyed the box");
            }
            return;
        }
        panic!("no visible instances found");
    }
}
