//! Discriminators: is a detection a *new* distinct object?
//!
//! The paper's discriminator (§II-B) runs a SORT-style IoU tracker
//! forwards and backwards through the video from each new detection,
//! computing the object's position in every frame where it was visible;
//! later detections that land on a tracked position are re-sightings.
//!
//! Two implementations:
//!
//! * [`OracleDiscriminator`] — uses ground-truth instance identity. This
//!   is what the paper's own simulation studies (§III-D, §IV) effectively
//!   do, and it isolates the sampling question from tracker quality.
//! * [`TrackerDiscriminator`] — emulates the real pipeline: each new
//!   detection spawns a track whose extent and per-frame boxes come from a
//!   forward/backward track extension (emulated via ground truth plus a
//!   persistent extension error), and future detections are matched by
//!   IoU against the predictions of live tracks. Detector jitter, false
//!   positives, and extension error produce exactly the duplicate/split
//!   mistakes real trackers make.

use crate::detector::Detection;
use exsample_stats::{FxHashMap, Rng64};
use exsample_videosim::geometry::greedy_iou_match;
use exsample_videosim::{BBox, FrameIdx, GroundTruth, InstanceId};
use std::sync::Arc;

/// Outcome of pushing one frame's detections through a discriminator —
/// the `d0` / `d1` sets of Algorithm 1.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiscrimOutcome {
    /// `|d0|`: detections that matched no previous result.
    pub new_results: u32,
    /// `|d1|`: detections whose result had been seen exactly once before.
    pub matched_once: u32,
    /// Ground-truth identity of each `d0` detection (None = spurious
    /// result caused by a false positive). Evaluation only.
    pub new_truths: Vec<Option<InstanceId>>,
}

/// Decides whether detections are new results or re-sightings.
pub trait Discriminator {
    /// Process one frame's detections; must be called at most once per
    /// frame (sampling is without replacement).
    fn observe(&mut self, frame: FrameIdx, dets: &[Detection]) -> DiscrimOutcome;

    /// Total results reported as new so far.
    fn results(&self) -> u64;
}

/// Ground-truth-identity discriminator (perfect matching).
///
/// False-positive detections carry no identity and are discarded — a
/// perfect discriminator knows they are not objects.
#[derive(Debug, Default, Clone)]
pub struct OracleDiscriminator {
    seen: FxHashMap<InstanceId, u32>,
    results: u64,
}

impl OracleDiscriminator {
    /// Fresh discriminator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Discriminator for OracleDiscriminator {
    fn observe(&mut self, _frame: FrameIdx, dets: &[Detection]) -> DiscrimOutcome {
        let mut out = DiscrimOutcome::default();
        for det in dets {
            let Some(id) = det.truth else { continue };
            let count = self.seen.entry(id).or_insert(0);
            *count += 1;
            match *count {
                1 => {
                    out.new_results += 1;
                    out.new_truths.push(Some(id));
                    self.results += 1;
                }
                2 => out.matched_once += 1,
                _ => {}
            }
        }
        out
    }

    fn results(&self) -> u64 {
        self.results
    }
}

/// A track held by the [`TrackerDiscriminator`].
#[derive(Debug, Clone)]
struct Track {
    /// Frames the (extended) track covers.
    start: FrameIdx,
    end: FrameIdx,
    /// Underlying instance (None for tracks spawned by false positives).
    truth: Option<InstanceId>,
    /// Persistent extension error: the tracker's boxes are offset from the
    /// true ones by this amount (models drift of the forward/backward
    /// pass).
    drift: (f32, f32),
    /// Anchor box for truth-less tracks (held static over the window).
    anchor: BBox,
    /// Number of detections matched to this track (including the one that
    /// created it).
    support: u32,
}

/// SORT-style IoU-matching discriminator with emulated track extension.
#[derive(Debug, Clone)]
pub struct TrackerDiscriminator {
    gt: Arc<GroundTruth>,
    /// Minimum IoU between a detection and a track prediction to match.
    iou_threshold: f32,
    /// Std-dev of per-track extension drift (px).
    drift_px: f64,
    /// Half-width (frames) of the window a false-positive track covers.
    fp_halfwidth: u64,
    tracks: Vec<Track>,
    rng: Rng64,
    results: u64,
}

impl TrackerDiscriminator {
    /// New tracker-based discriminator over a dataset.
    pub fn new(gt: Arc<GroundTruth>, seed: u64) -> Self {
        TrackerDiscriminator {
            gt,
            iou_threshold: 0.25,
            drift_px: 2.0,
            fp_halfwidth: 30,
            tracks: Vec::new(),
            rng: Rng64::new(seed),
            results: 0,
        }
    }

    /// Override the IoU matching threshold (default 0.25; SORT-style
    /// trackers operate around 0.2-0.3).
    pub fn with_iou_threshold(mut self, t: f32) -> Self {
        assert!((0.0..=1.0).contains(&t));
        self.iou_threshold = t;
        self
    }

    /// Override the extension drift (default 2 px).
    pub fn with_drift(mut self, px: f64) -> Self {
        self.drift_px = px;
        self
    }

    /// Number of live tracks (diagnostic).
    pub fn num_tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Predicted box of a track at `frame`, if the track covers it.
    fn predict(&self, track: &Track, frame: FrameIdx) -> Option<BBox> {
        if frame < track.start || frame >= track.end {
            return None;
        }
        let boxed = match track.truth {
            Some(id) => self
                .gt
                .instance(id)
                .bbox_at(frame, self.gt.img_w, self.gt.img_h)?,
            None => track.anchor,
        };
        Some(boxed.translated(track.drift.0, track.drift.1))
    }

    fn spawn_track(&mut self, frame: FrameIdx, det: &Detection) {
        let drift = (
            (self.drift_px * norm_sample(&mut self.rng)) as f32,
            (self.drift_px * norm_sample(&mut self.rng)) as f32,
        );
        let track = match det.truth {
            Some(id) => {
                let inst = self.gt.instance(id);
                Track {
                    start: inst.start,
                    end: inst.end(),
                    truth: Some(id),
                    drift,
                    anchor: det.bbox,
                    support: 1,
                }
            }
            None => Track {
                start: frame.saturating_sub(self.fp_halfwidth),
                end: frame + self.fp_halfwidth,
                truth: None,
                drift: (0.0, 0.0),
                anchor: det.bbox,
                support: 1,
            },
        };
        self.tracks.push(track);
    }
}

fn norm_sample(rng: &mut Rng64) -> f64 {
    exsample_stats::dist::Normal::standard_sample(rng)
}

impl Discriminator for TrackerDiscriminator {
    fn observe(&mut self, frame: FrameIdx, dets: &[Detection]) -> DiscrimOutcome {
        // Predictions of all tracks alive at this frame.
        let mut live: Vec<usize> = Vec::new();
        let mut predicted: Vec<BBox> = Vec::new();
        for (i, t) in self.tracks.iter().enumerate() {
            if let Some(b) = self.predict(t, frame) {
                live.push(i);
                predicted.push(b);
            }
        }
        let det_boxes: Vec<BBox> = dets.iter().map(|d| d.bbox).collect();
        let (pairs, unmatched_dets, _) =
            greedy_iou_match(&det_boxes, &predicted, self.iou_threshold);

        let mut out = DiscrimOutcome::default();
        for (_det_i, pred_i, _) in &pairs {
            let track = &mut self.tracks[live[*pred_i]];
            track.support += 1;
            if track.support == 2 {
                out.matched_once += 1;
            }
        }
        for det_i in unmatched_dets {
            let det = &dets[det_i];
            self.spawn_track(frame, det);
            out.new_results += 1;
            out.new_truths.push(det.truth);
            self.results += 1;
        }
        out
    }

    fn results(&self) -> u64 {
        self.results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{Detector, NoiseModel, SimulatedDetector};
    use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, SkewSpec};

    fn truth() -> Arc<GroundTruth> {
        let spec =
            DatasetSpec::single_class(20_000, ClassSpec::new("car", 60, 400.0, SkewSpec::Uniform));
        Arc::new(spec.generate(77))
    }

    fn det(gt: &Arc<GroundTruth>, id: u32) -> Detection {
        let inst = gt.instance(InstanceId(id));
        let frame = inst.start;
        Detection {
            bbox: inst.bbox_at(frame, gt.img_w, gt.img_h).unwrap(),
            class: ClassId(0),
            score: 1.0,
            truth: Some(InstanceId(id)),
        }
    }

    #[test]
    fn oracle_counts_d0_and_d1() {
        let gt = truth();
        let mut d = OracleDiscriminator::new();
        let a = det(&gt, 0);
        let b = det(&gt, 1);
        let o1 = d.observe(10, &[a.clone(), b.clone()]);
        assert_eq!(o1.new_results, 2);
        assert_eq!(o1.matched_once, 0);
        let o2 = d.observe(11, std::slice::from_ref(&a));
        assert_eq!(o2.new_results, 0);
        assert_eq!(o2.matched_once, 1);
        let o3 = d.observe(12, &[a]);
        assert_eq!(o3.new_results, 0);
        assert_eq!(o3.matched_once, 0); // third sighting is not d1
        assert_eq!(d.results(), 2);
    }

    #[test]
    fn oracle_ignores_false_positives() {
        let gt = truth();
        let mut d = OracleDiscriminator::new();
        let fp = Detection {
            bbox: BBox::new(0.0, 0.0, 10.0, 10.0),
            class: ClassId(0),
            score: 0.9,
            truth: None,
        };
        let o = d.observe(5, &[fp]);
        assert_eq!(o.new_results, 0);
        assert_eq!(d.results(), 0);
        let _ = gt;
    }

    #[test]
    fn tracker_matches_resighting_of_same_instance() {
        let gt = truth();
        let mut d = TrackerDiscriminator::new(gt.clone(), 1).with_drift(0.0);
        let inst = gt.instance(InstanceId(3));
        let f1 = inst.start;
        let f2 = inst.start + inst.duration / 2;
        let mk = |f: FrameIdx| Detection {
            bbox: inst.bbox_at(f, gt.img_w, gt.img_h).unwrap(),
            class: ClassId(0),
            score: 1.0,
            truth: Some(InstanceId(3)),
        };
        let o1 = d.observe(f1, &[mk(f1)]);
        assert_eq!(o1.new_results, 1);
        let o2 = d.observe(f2, &[mk(f2)]);
        assert_eq!(o2.new_results, 0, "re-sighting must match the track");
        assert_eq!(o2.matched_once, 1);
        assert_eq!(d.results(), 1);
        assert_eq!(d.num_tracks(), 1);
    }

    #[test]
    fn tracker_separates_distinct_instances() {
        let gt = truth();
        let mut d = TrackerDiscriminator::new(gt.clone(), 2);
        let o = d.observe(gt.instance(InstanceId(0)).start, &[det(&gt, 0)]);
        assert_eq!(o.new_results, 1);
        // A different instance somewhere else must open a second track.
        let o2 = d.observe(gt.instance(InstanceId(1)).start, &[det(&gt, 1)]);
        assert_eq!(o2.new_results, 1);
        assert_eq!(d.num_tracks(), 2);
    }

    #[test]
    fn tracker_agrees_with_oracle_on_clean_data() {
        // With a perfect detector and zero drift the tracker should report
        // (nearly) identical d0/d1 streams to the oracle.
        let gt = truth();
        let mut detector = SimulatedDetector::perfect(gt.clone(), ClassId(0));
        let mut oracle = OracleDiscriminator::new();
        let mut tracker = TrackerDiscriminator::new(gt.clone(), 3).with_drift(0.0);
        let mut rng = Rng64::new(4);
        let mut frames: Vec<u64> = (0..20_000).collect();
        rng.shuffle(&mut frames);
        for &f in frames.iter().take(3000) {
            let dets = detector.detect(f);
            let a = oracle.observe(f, &dets);
            let b = tracker.observe(f, &dets);
            assert_eq!(a.new_results, b.new_results, "frame {f}");
            assert_eq!(a.matched_once, b.matched_once, "frame {f}");
        }
        assert_eq!(oracle.results(), tracker.results());
    }

    #[test]
    fn tracker_spawns_track_for_false_positive() {
        let gt = truth();
        let mut d = TrackerDiscriminator::new(gt, 5);
        let fp = Detection {
            bbox: BBox::new(100.0, 100.0, 160.0, 140.0),
            class: ClassId(0),
            score: 0.8,
            truth: None,
        };
        let o = d.observe(1000, std::slice::from_ref(&fp));
        assert_eq!(o.new_results, 1);
        assert_eq!(o.new_truths, vec![None]);
        // Same spurious box a few frames later: matched, not duplicated.
        let o2 = d.observe(1010, &[fp]);
        assert_eq!(o2.new_results, 0);
        assert_eq!(o2.matched_once, 1);
    }

    #[test]
    fn tracker_with_noise_makes_bounded_errors() {
        // Under realistic noise the tracker inflates the distinct-result
        // count through (a) false-positive detections — bounded by the
        // detector's fp_rate — and (b) track splits, which should stay
        // around one duplicate per instance at a ~15% sampling rate.
        let gt = truth();
        let noise = NoiseModel::realistic();
        let mut detector = SimulatedDetector::new(gt.clone(), ClassId(0), noise, 6);
        let mut tracker = TrackerDiscriminator::new(gt.clone(), 7);
        let mut rng = Rng64::new(8);
        let mut frames: Vec<u64> = (0..20_000).collect();
        rng.shuffle(&mut frames);
        let samples = 3000usize;
        let mut true_found = std::collections::HashSet::new();
        let mut spurious = 0u64;
        for &f in frames.iter().take(samples) {
            let dets = detector.detect(f);
            let o = tracker.observe(f, &dets);
            for t in &o.new_truths {
                match t {
                    Some(id) => {
                        true_found.insert(*id);
                    }
                    None => spurious += 1,
                }
            }
        }
        let reported = tracker.results();
        let distinct = true_found.len() as u64;
        assert!(reported >= distinct);
        // False positives arrive at ~fp_rate per frame.
        let fp_budget = (noise.fp_rate * samples as f64 * 1.8 + 10.0) as u64;
        assert!(
            spurious <= fp_budget,
            "spurious={spurious} budget={fp_budget}"
        );
        // Track splits: about one duplicate per instance at this rate.
        let duplicates = reported - spurious - distinct;
        assert!(
            duplicates as f64 <= distinct as f64 * 1.5 + 20.0,
            "duplicates={duplicates} distinct={distinct}"
        );
    }
}
