//! Simulated detection stack: detector, discriminator, proxy scorer.
//!
//! The paper treats the object detector as "a black box with a costly
//! runtime" (§II-A) and builds two components on top of it:
//!
//! * a **discriminator** that decides whether a detection is a new
//!   distinct object or a re-sighting — implemented as a SORT-style IoU
//!   tracker run forward/backward through the video (§II-B);
//! * optionally a **proxy model** that cheaply scores every frame, the
//!   core of BlazeIt-style baselines (§II-B, §V-B).
//!
//! This crate reproduces all three against the synthetic ground truth of
//! `exsample-videosim`:
//!
//! * [`detector`] — [`detector::SimulatedDetector`] returns the true boxes
//!   visible in a frame, degraded by a configurable [`detector::NoiseModel`]
//!   (size-dependent misses, false positives, box jitter).
//! * [`discrim`] — [`discrim::OracleDiscriminator`] (exact instance
//!   identity, as in the paper's simulation studies) and
//!   [`discrim::TrackerDiscriminator`] (IoU matching against tracks
//!   extended through the video, as in the paper's real-data pipeline).
//! * [`proxy`] — per-frame scores with tunable fidelity plus the
//!   descending-score frame order BlazeIt processes.
//! * [`oracle`] — [`oracle::QueryOracle`] bundles detector + discriminator
//!   into the `FnMut(FrameIdx) -> Feedback` closure the core driver
//!   consumes, while tracking *true* distinct recall for evaluation.

#![warn(missing_docs)]

pub mod detector;
pub mod discrim;
pub mod oracle;
pub mod proxy;

pub use detector::{
    detect_frame, dispatch_batch, Detection, Detector, NoiseModel, SimulatedDetector,
};
pub use discrim::{DiscrimOutcome, Discriminator, OracleDiscriminator, TrackerDiscriminator};
pub use oracle::QueryOracle;
pub use proxy::ProxyModel;
