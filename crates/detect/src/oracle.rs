//! QueryOracle: detector + discriminator glued into the driver's oracle.

use crate::detector::Detector;
use crate::discrim::Discriminator;
use exsample_core::Feedback;
use exsample_stats::FxHashSet;
use exsample_videosim::{FrameIdx, InstanceId};

/// Bundles a detector and a discriminator into the
/// `FnMut(FrameIdx) -> Feedback` shape that
/// [`exsample_core::driver::run_search`] consumes, while keeping the
/// evaluation-side truth: which *true* distinct instances have been found,
/// and when.
#[derive(Debug)]
pub struct QueryOracle<D, X> {
    detector: D,
    discrim: X,
    calls: u64,
    true_found: FxHashSet<InstanceId>,
    spurious_results: u64,
    duplicate_results: u64,
    /// `(frames_processed, true_distinct_found)` recorded at each increase.
    truth_curve: Vec<(u64, u64)>,
}

impl<D: Detector, X: Discriminator> QueryOracle<D, X> {
    /// Combine a detector and a discriminator.
    pub fn new(detector: D, discrim: X) -> Self {
        QueryOracle {
            detector,
            discrim,
            calls: 0,
            true_found: FxHashSet::default(),
            spurious_results: 0,
            duplicate_results: 0,
            truth_curve: Vec::new(),
        }
    }

    /// Process one frame: detect, discriminate, report `d0`/`d1` sizes.
    pub fn process(&mut self, frame: FrameIdx) -> Feedback {
        self.calls += 1;
        let dets = self.detector.detect(frame);
        let outcome = self.discrim.observe(frame, &dets);
        for t in &outcome.new_truths {
            match t {
                Some(id) => {
                    if self.true_found.insert(*id) {
                        self.truth_curve
                            .push((self.calls, self.true_found.len() as u64));
                    } else {
                        self.duplicate_results += 1;
                    }
                }
                None => self.spurious_results += 1,
            }
        }
        Feedback::new(outcome.new_results, outcome.matched_once)
    }

    /// Frames processed so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Number of *true* distinct instances found (evaluation-side).
    pub fn true_found(&self) -> u64 {
        self.true_found.len() as u64
    }

    /// Results the discriminator reported as new although their instance
    /// had been found before (tracker splits).
    pub fn duplicate_results(&self) -> u64 {
        self.duplicate_results
    }

    /// Results caused by detector false positives.
    pub fn spurious_results(&self) -> u64 {
        self.spurious_results
    }

    /// The `(frames_processed, true_found)` curve.
    pub fn truth_curve(&self) -> &[(u64, u64)] {
        &self.truth_curve
    }

    /// Frames processed when `target` true distinct instances had been
    /// found, if ever.
    pub fn samples_to_true_found(&self, target: u64) -> Option<u64> {
        self.truth_curve
            .iter()
            .find(|&&(_, found)| found >= target)
            .map(|&(calls, _)| calls)
    }

    /// Access the wrapped detector.
    pub fn detector(&self) -> &D {
        &self.detector
    }

    /// Access the wrapped discriminator.
    pub fn discriminator(&self) -> &X {
        &self.discrim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::SimulatedDetector;
    use crate::discrim::OracleDiscriminator;
    use exsample_core::{
        driver::{run_search, SearchCost, StopCond},
        exsample::{ExSample, ExSampleConfig},
        policy::SamplingPolicy,
        Chunking,
    };
    use exsample_stats::Rng64;
    use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, GroundTruth, SkewSpec};
    use std::sync::Arc;

    fn truth() -> Arc<GroundTruth> {
        Arc::new(
            DatasetSpec::single_class(30_000, ClassSpec::new("car", 40, 400.0, SkewSpec::Uniform))
                .generate(99),
        )
    }

    #[test]
    fn works_with_run_search_driver() {
        let gt = truth();
        let mut q = QueryOracle::new(
            SimulatedDetector::perfect(gt.clone(), ClassId(0)),
            OracleDiscriminator::new(),
        );
        let mut policy = ExSample::new(Chunking::even(30_000, 10), ExSampleConfig::default());
        let mut rng = Rng64::new(1);
        let trace = {
            let mut oracle = |f: u64| q.process(f);
            run_search(
                &mut policy,
                &mut oracle,
                &SearchCost::per_sample(0.05),
                &StopCond::results(10),
                &mut rng,
            )
        };
        assert!(trace.found() >= 10);
        // Oracle discriminator: driver-side found equals true found.
        assert_eq!(trace.found(), q.true_found());
        assert_eq!(trace.samples(), q.calls());
    }

    #[test]
    fn process_counts_and_curve() {
        let gt = truth();
        let mut q = QueryOracle::new(
            SimulatedDetector::perfect(gt.clone(), ClassId(0)),
            OracleDiscriminator::new(),
        );
        let mut policy = ExSample::new(Chunking::even(30_000, 10), ExSampleConfig::default());
        let mut rng = Rng64::new(2);
        let mut found = 0u64;
        let mut samples = 0u64;
        while found < 20 && samples < 30_000 {
            let Some(f) = policy.next_frame(&mut rng) else {
                break;
            };
            let fb = q.process(f);
            policy.feedback(f, fb);
            found += fb.new_results as u64;
            samples += 1;
        }
        // With the oracle discriminator, reported == true.
        assert_eq!(q.true_found(), found);
        assert_eq!(q.duplicate_results(), 0);
        assert_eq!(q.spurious_results(), 0);
        assert_eq!(q.calls(), samples);
        assert_eq!(q.samples_to_true_found(found), {
            // last curve point at or before `samples`
            q.truth_curve()
                .iter()
                .find(|&&(_, tf)| tf >= found)
                .map(|&(c, _)| c)
        });
        assert!(q.samples_to_true_found(10_000).is_none());
    }
}
