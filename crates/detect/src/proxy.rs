//! Proxy-model simulation (BlazeIt-style frame scoring).
//!
//! Proxy approaches train a cheap specialized model per query, score
//! *every* frame of the dataset with it, then process frames through the
//! expensive detector in descending score order (§II-B). For limit
//! queries this means a full upfront scan at io+decode speed (~100 fps in
//! the paper's measurements) before the first result can be returned —
//! the overhead Table I charges against them.
//!
//! [`ProxyModel`] synthesizes per-frame scores whose correlation with the
//! presence of the target class is governed by a `fidelity` knob, so the
//! harness can study both a near-perfect proxy (the paper's generous
//! assumption) and degraded ones.

use exsample_stats::dist::Normal;
use exsample_stats::Rng64;
use exsample_videosim::{ClassId, FrameIdx, GroundTruth};

/// Per-frame proxy scores for one query class over one dataset.
#[derive(Debug, Clone)]
pub struct ProxyModel {
    scores: Vec<f32>,
    class: ClassId,
}

impl ProxyModel {
    /// Score every frame. `fidelity ∈ (0, 1]` controls how well scores
    /// separate frames containing the class from empty ones: 1.0 is a
    /// perfect ranker; 0.5 is heavily degraded.
    ///
    /// # Panics
    /// Panics if `fidelity` is outside `(0, 1]`.
    pub fn build(gt: &GroundTruth, class: ClassId, fidelity: f64, seed: u64) -> Self {
        assert!(
            fidelity > 0.0 && fidelity <= 1.0,
            "fidelity must be in (0,1], got {fidelity}"
        );
        let mut rng = Rng64::new(seed);
        // Noise sd: 0 at fidelity 1, ~2 at fidelity 0.5.
        let sigma = 2.0 * (1.0 - fidelity) / fidelity.max(0.25);
        let mut scores = Vec::with_capacity(gt.frames as usize);
        let mut vis = Vec::new();
        for frame in 0..gt.frames {
            gt.visible_at(class, frame, &mut vis);
            let signal = if vis.is_empty() {
                0.0
            } else {
                1.0 + 0.1 * (vis.len() as f64).ln_1p()
            };
            let noise = if sigma > 0.0 {
                sigma * Normal::standard_sample(&mut rng)
            } else {
                0.0
            };
            scores.push((signal + noise) as f32);
        }
        ProxyModel { scores, class }
    }

    /// The scored class.
    pub fn class(&self) -> ClassId {
        self.class
    }

    /// Number of scored frames.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when the dataset had no frames.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Score of one frame.
    pub fn score(&self, frame: FrameIdx) -> f32 {
        self.scores[frame as usize]
    }

    /// Frames ordered by descending score (ties broken by frame index) —
    /// the order a BlazeIt-style executor processes them in.
    pub fn descending_order(&self) -> Vec<FrameIdx> {
        let mut idx: Vec<u32> = (0..self.scores.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            self.scores[b as usize]
                .partial_cmp(&self.scores[a as usize])
                .expect("scores are finite")
                .then(a.cmp(&b))
        });
        idx.into_iter().map(|i| i as u64).collect()
    }

    /// Seconds a full scoring scan takes at `score_fps` frames/second.
    pub fn scan_seconds(&self, score_fps: f64) -> f64 {
        assert!(score_fps > 0.0);
        self.scores.len() as f64 / score_fps
    }

    /// Empirical AUC of the scores against "frame contains the class"
    /// (Monte-Carlo over positive/negative pairs). Diagnostic for tests
    /// and reports.
    pub fn auc(&self, gt: &GroundTruth, samples: usize, seed: u64) -> f64 {
        let mut rng = Rng64::new(seed);
        let mut vis = Vec::new();
        let mut positives = Vec::new();
        let mut negatives = Vec::new();
        // Reservoir-less: sample frames until both classes are populated.
        let budget = (samples * 50).max(10_000);
        for _ in 0..budget {
            let f = rng.u64_below(gt.frames);
            gt.visible_at(self.class, f, &mut vis);
            if vis.is_empty() {
                if negatives.len() < samples {
                    negatives.push(self.score(f));
                }
            } else if positives.len() < samples {
                positives.push(self.score(f));
            }
            if positives.len() >= samples && negatives.len() >= samples {
                break;
            }
        }
        if positives.is_empty() || negatives.is_empty() {
            return 0.5;
        }
        let mut wins = 0.0;
        let n = positives.len().min(negatives.len());
        for i in 0..n {
            let p = positives[i];
            let q = negatives[i];
            wins += if p > q {
                1.0
            } else if p == q {
                0.5
            } else {
                0.0
            };
        }
        wins / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_videosim::{ClassSpec, DatasetSpec, SkewSpec};

    fn truth() -> GroundTruth {
        DatasetSpec::single_class(50_000, ClassSpec::new("car", 80, 300.0, SkewSpec::Uniform))
            .generate(13)
    }

    #[test]
    fn perfect_fidelity_ranks_positives_first() {
        let gt = truth();
        let p = ProxyModel::build(&gt, ClassId(0), 1.0, 1);
        let order = p.descending_order();
        // Count positive frames.
        let mut vis = Vec::new();
        let positives = (0..gt.frames)
            .filter(|&f| {
                gt.visible_at(ClassId(0), f, &mut vis);
                !vis.is_empty()
            })
            .count();
        // The first `positives` frames of the order must all be positive.
        for &f in order.iter().take(positives) {
            gt.visible_at(ClassId(0), f, &mut vis);
            assert!(!vis.is_empty(), "frame {f} ranked high but empty");
        }
        assert!(p.auc(&gt, 500, 2) > 0.999);
    }

    #[test]
    fn lower_fidelity_lowers_auc() {
        let gt = truth();
        let hi = ProxyModel::build(&gt, ClassId(0), 0.95, 3).auc(&gt, 800, 4);
        let lo = ProxyModel::build(&gt, ClassId(0), 0.5, 3).auc(&gt, 800, 4);
        assert!(hi > lo, "hi={hi} lo={lo}");
        assert!(lo > 0.55, "even degraded proxies carry signal: {lo}");
    }

    #[test]
    fn descending_order_is_a_permutation() {
        let gt = truth();
        let p = ProxyModel::build(&gt, ClassId(0), 0.8, 5);
        let mut order = p.descending_order();
        assert_eq!(order.len() as u64, gt.frames);
        order.sort_unstable();
        assert!(order.windows(2).all(|w| w[0] + 1 == w[1]));
        assert_eq!(order[0], 0);
    }

    #[test]
    fn order_is_actually_descending() {
        let gt = truth();
        let p = ProxyModel::build(&gt, ClassId(0), 0.7, 6);
        let order = p.descending_order();
        for w in order.windows(2) {
            assert!(p.score(w[0]) >= p.score(w[1]));
        }
    }

    #[test]
    fn scan_seconds_scale_with_frames() {
        let gt = truth();
        let p = ProxyModel::build(&gt, ClassId(0), 1.0, 7);
        assert!((p.scan_seconds(100.0) - 500.0).abs() < 1e-9);
    }
}
