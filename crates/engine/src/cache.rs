//! The shared detection cache.
//!
//! ExSample's economics are "seconds of GPU per distinct result"; when
//! many concurrent queries sample overlapping regions of the same videos,
//! the single biggest lever is to never run the detector twice on the same
//! frame. [`FrameCache`] memoizes full detector output (all classes) keyed
//! by `(video, frame)`, so a query for cars warms the cache for a later
//! query for buses over the same footage — exactly how a real multi-class
//! detector amortizes across queries.
//!
//! The cache is sharded: each shard is an independent mutex over a hash
//! map plus a FIFO eviction queue, so concurrent sessions touching
//! different frames rarely contend. Lookups that miss run the compute
//! closure *while holding the shard lock*; this serializes computes within
//! a shard but guarantees each resident key is computed exactly once —
//! which both bounds detector spend and keeps the total invocation count
//! deterministic for a fixed workload (modulo evictions). With detection
//! costing ~50 ms of modelled GPU time against a microsecond-scale
//! critical section, single-computation wins over lock granularity.

use exsample_detect::Detection;
use exsample_stats::FxHashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::session::RepoId;

/// Cache key: a frame of a specific registered video repository.
pub type FrameKey = (RepoId, u64);

/// Detector output for one frame, shared between sessions.
pub type CachedDetections = Arc<Vec<Detection>>;

struct Shard {
    map: FxHashMap<FrameKey, CachedDetections>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<FrameKey>,
}

/// Counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the detector.
    pub misses: u64,
    /// Entries discarded to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Sharded, thread-safe memo of per-frame detector output.
pub struct FrameCache {
    shards: Vec<Mutex<Shard>>,
    /// Max resident entries per shard.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl FrameCache {
    /// Cache holding at most `capacity` frames across `shards` shards
    /// (`shards` is rounded up to a power of two).
    ///
    /// # Panics
    /// Panics if `capacity` or `shards` is zero.
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(shards > 0, "need at least one shard");
        let shards = shards.next_power_of_two();
        let shard_capacity = capacity.div_ceil(shards);
        FrameCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: FxHashMap::default(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &FrameKey) -> usize {
        // Fibonacci-mix the frame and repo id; shards is a power of two.
        let h = (key.1 ^ ((key.0 .0 as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.shards.len() - 1)
    }

    /// Look up `key`, running `compute` to fill the entry on a miss.
    /// Returns the detections and whether this was a hit.
    pub fn get_or_compute(
        &self,
        key: FrameKey,
        compute: impl FnOnce() -> Vec<Detection>,
    ) -> (CachedDetections, bool) {
        let mut shard = self.shards[self.shard_of(&key)]
            .lock()
            .expect("cache shard poisoned");
        if let Some(hit) = shard.map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value: CachedDetections = Arc::new(compute());
        while shard.map.len() >= self.shard_capacity {
            let victim = shard.order.pop_front().expect("order tracks map");
            shard.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.map.insert(key, value.clone());
        shard.order.push_back(key);
        (value, false)
    }

    /// Aggregate counters across all shards.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").map.len() as u64)
                .sum(),
        }
    }
}

impl std::fmt::Debug for FrameCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(frame: u64) -> FrameKey {
        (RepoId(0), frame)
    }

    #[test]
    fn miss_then_hit() {
        let cache = FrameCache::new(64, 4);
        let (a, hit_a) = cache.get_or_compute(key(7), Vec::new);
        assert!(!hit_a);
        let (b, hit_b) = cache.get_or_compute(key(7), || panic!("must not recompute"));
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_fifo_within_capacity() {
        // Single shard so the eviction order is fully observable.
        let cache = FrameCache::new(4, 1);
        for f in 0..8 {
            cache.get_or_compute(key(f), Vec::new);
        }
        let s = cache.stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.evictions, 4);
        // Oldest entries are gone: looking them up recomputes.
        let (_, hit) = cache.get_or_compute(key(0), Vec::new);
        assert!(!hit);
        let (_, hit) = cache.get_or_compute(key(7), || panic!("recent entry evicted"));
        assert!(hit);
    }

    #[test]
    fn distinct_repos_do_not_collide() {
        let cache = FrameCache::new(64, 4);
        cache.get_or_compute((RepoId(1), 5), Vec::new);
        let (_, hit) = cache.get_or_compute((RepoId(2), 5), Vec::new);
        assert!(!hit);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn concurrent_lookups_compute_each_key_once() {
        use std::sync::atomic::AtomicUsize;
        let cache = FrameCache::new(4096, 16);
        let computes = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = &cache;
                let computes = &computes;
                scope.spawn(move || {
                    // All threads sweep the same 512 keys, interleaved
                    // differently per thread.
                    for i in 0..512u64 {
                        let f = (i * (t + 1)) % 512;
                        cache.get_or_compute(key(f), || {
                            computes.fetch_add(1, Ordering::Relaxed);
                            Vec::new()
                        });
                    }
                });
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 512);
        let s = cache.stats();
        assert_eq!(s.misses, 512);
        assert_eq!(s.hits, 8 * 512 - 512);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn capacity_rounds_to_shards() {
        let cache = FrameCache::new(10, 3); // 4 shards, cap 3 each
        for f in 0..100 {
            cache.get_or_compute(key(f), Vec::new);
        }
        assert!(cache.stats().entries <= 12);
        assert!(cache.stats().evictions >= 88);
    }
}
