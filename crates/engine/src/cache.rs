//! The shared detection cache.
//!
//! ExSample's economics are "seconds of GPU per distinct result"; when
//! many concurrent queries sample overlapping regions of the same videos,
//! the single biggest lever is to never run the detector twice on the same
//! frame. [`FrameCache`] memoizes full detector output (all classes) keyed
//! by `(video, frame)`, so a query for cars warms the cache for a later
//! query for buses over the same footage — exactly how a real multi-class
//! detector amortizes across queries.
//!
//! The cache is sharded: each shard is an independent mutex over a hash
//! map plus a FIFO eviction queue, so concurrent sessions touching
//! different frames rarely contend. A lookup that misses *reserves* the
//! key with an in-flight entry and releases the shard lock before the
//! detector runs: detection (~50 ms of modelled GPU time) never
//! serializes unrelated sessions that merely hash to the same shard.
//! Concurrent lookups of the same in-flight key park on that entry's
//! condvar instead of recomputing, so each resident key is still computed
//! exactly once — which both bounds detector spend and keeps the total
//! invocation count deterministic for a fixed workload (modulo
//! evictions).
//!
//! Besides the classic [`FrameCache::get_or_compute`], the reservation
//! machinery is exposed directly as [`FrameCache::begin`] /
//! [`MissGuard::fill`] / [`PendingWait::wait`] so the engine's batched
//! stepping (§III-F) can reserve a whole batch of keys, issue **one**
//! detector dispatch for all misses with no shard lock held, and only
//! then wait for frames other sessions already have in flight.

use exsample_detect::Detection;
use exsample_stats::FxHashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::session::RepoId;

/// Cache key: a frame of a specific registered video repository.
pub type FrameKey = (RepoId, u64);

/// Detector output for one frame, shared between sessions.
pub type CachedDetections = Arc<Vec<Detection>>;

struct Shard {
    map: FxHashMap<FrameKey, CachedDetections>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<FrameKey>,
    /// Keys currently being computed (reserved by a [`MissGuard`]).
    /// Pending keys are not resident — they don't count against capacity
    /// and can't be evicted out from under their waiters.
    pending: FxHashMap<FrameKey, Arc<PendingCell>>,
}

/// One in-flight computation: waiters park on `cv` until the computing
/// session fills (or abandons) the entry.
struct PendingCell {
    state: Mutex<PendingState>,
    cv: Condvar,
}

enum PendingState {
    Computing,
    Filled(CachedDetections),
    /// The computing session dropped its guard without filling (its
    /// compute panicked): waiters retry from [`FrameCache::begin`].
    Abandoned,
}

/// Counters describing cache behaviour since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the detector.
    pub misses: u64,
    /// Entries discarded to stay within capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Entries injected through [`FrameCache::preload`] (persisted
    /// detections loaded at startup) — counted separately from misses,
    /// since no detector ran for them in this process.
    pub warm_loads: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheStats {
    /// One uniform cache line for examples, benches, and logs:
    /// `"1234 hits / 2000 lookups (61.7% hit rate), 500 warm-loaded, 0
    /// evictions, 1800 resident"`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} lookups ({:.1}% hit rate), {} warm-loaded, {} evictions, {} resident",
            self.hits,
            self.hits + self.misses,
            self.hit_rate() * 100.0,
            self.warm_loads,
            self.evictions,
            self.entries
        )
    }
}

/// Hook invoked (after the shard lock is released) with every freshly
/// computed entry; the engine uses it to write detections behind the
/// cache into the persistent detection log.
pub type WriteBehind = Box<dyn Fn(FrameKey, &[Detection]) + Send + Sync>;

/// Sharded, thread-safe memo of per-frame detector output.
pub struct FrameCache {
    shards: Vec<Mutex<Shard>>,
    /// Max resident entries per shard.
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    warm_loads: AtomicU64,
    write_behind: Option<WriteBehind>,
}

impl FrameCache {
    /// Cache holding at most `capacity` frames across `shards` shards
    /// (`shards` is rounded up to a power of two).
    ///
    /// # Panics
    /// Panics if `capacity` or `shards` is zero.
    pub fn new(capacity: usize, shards: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(shards > 0, "need at least one shard");
        let shards = shards.next_power_of_two();
        let shard_capacity = capacity.div_ceil(shards);
        FrameCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: FxHashMap::default(),
                        order: VecDeque::new(),
                        pending: FxHashMap::default(),
                    })
                })
                .collect(),
            shard_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            warm_loads: AtomicU64::new(0),
            write_behind: None,
        }
    }

    /// Install a write-behind hook, called exactly once with every entry
    /// a miss computes. Must be set before the cache is shared (it takes
    /// `&mut`). The hook runs *after* the shard lock is released, so a
    /// slow sink (buffered file IO, a periodic fsync) delays only the
    /// computing session, never other sessions touching the same shard;
    /// consequently, hook invocations for different keys may interleave
    /// in any order across threads.
    pub fn set_write_behind(&mut self, hook: WriteBehind) {
        self.write_behind = Some(hook);
    }

    fn shard_of(&self, key: &FrameKey) -> usize {
        // Fibonacci-mix the frame and repo id; shards is a power of two.
        let h = (key.1 ^ ((key.0 .0 as u64) << 32)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & (self.shards.len() - 1)
    }

    /// Start a lookup of `key`: either it is resident ([`Lookup::Hit`]),
    /// another session is computing it right now ([`Lookup::Pending`] —
    /// park on [`PendingWait::wait`]), or the caller now owns the
    /// computation ([`Lookup::Miss`] — run the detector **without any
    /// cache lock held** and publish through [`MissGuard::fill`]).
    ///
    /// The returned guard *reserves* the key: every concurrent `begin`
    /// until the fill observes `Pending` and waits instead of recomputing
    /// (the compute-once guarantee). Dropping the guard unfilled (e.g. a
    /// panicking compute) wakes the waiters to retry, so a failed
    /// computation never wedges the key.
    ///
    /// Statistics: a resident or in-flight key counts as a hit (no
    /// detector runs on behalf of this caller), a reservation as a miss.
    pub fn begin(&self, key: FrameKey) -> Lookup<'_> {
        // lint: allow(panic_audit, shard_of is modulo the shard count so the index is always in bounds)
        let mut shard = self.shards[self.shard_of(&key)]
            .lock()
            .expect("cache shard poisoned");
        if let Some(hit) = shard.map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Lookup::Hit(hit.clone());
        }
        if let Some(cell) = shard.pending.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Lookup::Pending(PendingWait { cell: cell.clone() });
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::new(PendingCell {
            state: Mutex::new(PendingState::Computing),
            cv: Condvar::new(),
        });
        shard.pending.insert(key, cell.clone());
        Lookup::Miss(MissGuard {
            cache: self,
            key,
            cell,
            filled: false,
        })
    }

    /// Look up `key`, running `compute` to fill the entry on a miss.
    /// Returns the detections and whether this was a hit. `compute` runs
    /// with no cache lock held; concurrent lookups of the same key wait
    /// for it instead of recomputing, and lookups of *other* keys on the
    /// same shard proceed unhindered.
    pub fn get_or_compute(
        &self,
        key: FrameKey,
        compute: impl FnOnce() -> Vec<Detection>,
    ) -> (CachedDetections, bool) {
        let mut compute = Some(compute);
        loop {
            match self.begin(key) {
                Lookup::Hit(value) => return (value, true),
                Lookup::Pending(wait) => {
                    if let Some(value) = wait.wait() {
                        return (value, true);
                    }
                    // The computing session died; retry (possibly
                    // becoming the computer ourselves).
                }
                Lookup::Miss(guard) => {
                    // lint: allow(panic_audit, Miss is returned at most once per loop so the Option is still full)
                    let dets = (compute.take().expect("at most one compute per lookup"))();
                    return (guard.fill(dets), false);
                }
            }
        }
    }

    /// Publish a freshly computed entry under `key`, evicting FIFO as
    /// needed and waking waiters: the internals of [`MissGuard::fill`].
    /// `write_behind: false` is the warm-fill path — the detections came
    /// from durable storage, so echoing them into the log would duplicate
    /// them forever.
    fn finish_fill(
        &self,
        key: FrameKey,
        cell: &PendingCell,
        value: CachedDetections,
        write_behind: bool,
    ) {
        // lint: allow(panic_audit, shard_of is modulo the shard count so the index is always in bounds)
        let mut shard = self.shards[self.shard_of(&key)]
            .lock()
            .expect("cache shard poisoned");
        shard.pending.remove(&key);
        while shard.map.len() >= self.shard_capacity {
            // lint: allow(panic_audit, the order deque mirrors the map so it is non-empty while map.len() > 0)
            let victim = shard.order.pop_front().expect("order tracks map");
            shard.map.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.map.insert(key, value.clone());
        shard.order.push_back(key);
        drop(shard);
        *cell.state.lock().expect("pending cell poisoned") = PendingState::Filled(value.clone());
        cell.cv.notify_all();
        // Write behind with every lock released: the sink may do real IO,
        // and neither this shard's sessions nor the entry's waiters
        // should stall behind it.
        if write_behind {
            if let Some(hook) = &self.write_behind {
                hook(key, &value);
            }
        }
    }

    /// Whether a [`FrameCache::preload`] of `key` would currently be
    /// accepted — the same decline conditions (shard full, already
    /// resident, in flight) without inserting anything. Startup preload
    /// peeks this before paying the record decode.
    pub fn wants(&self, key: &FrameKey) -> bool {
        // lint: allow(panic_audit, shard_of is modulo the shard count so the index is always in bounds)
        let shard = self.shards[self.shard_of(key)]
            .lock()
            .expect("cache shard poisoned");
        shard.map.len() < self.shard_capacity
            && !shard.map.contains_key(key)
            && !shard.pending.contains_key(key)
    }

    /// Whether *every* shard is at preload capacity — once true, no
    /// preload can be accepted and a startup scan can stop streaming the
    /// log entirely.
    pub fn preload_saturated(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.lock().expect("cache shard poisoned").map.len() >= self.shard_capacity)
    }

    /// Inject an already-known entry (the bulk preload path used when
    /// restoring persisted detections at startup). Counted as a warm load,
    /// not a miss, and the write-behind hook is *not* invoked — these
    /// entries came from the log in the first place.
    ///
    /// Returns `false` without evicting when the key is already resident
    /// or the shard is full: preloads fill spare capacity, they never push
    /// out entries the running workload paid for.
    pub fn preload(&self, key: FrameKey, dets: Vec<Detection>) -> bool {
        // lint: allow(panic_audit, shard_of is modulo the shard count so the index is always in bounds)
        let mut shard = self.shards[self.shard_of(&key)]
            .lock()
            .expect("cache shard poisoned");
        if shard.map.len() >= self.shard_capacity
            || shard.map.contains_key(&key)
            || shard.pending.contains_key(&key)
        {
            return false;
        }
        shard.map.insert(key, Arc::new(dets));
        shard.order.push_back(key);
        self.warm_loads.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Aggregate counters across all shards.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard poisoned").map.len() as u64)
                .sum(),
            warm_loads: self.warm_loads.load(Ordering::Relaxed),
        }
    }
}

/// Outcome of [`FrameCache::begin`].
pub enum Lookup<'a> {
    /// The key is resident; detections served immediately.
    Hit(CachedDetections),
    /// Another session is computing this key right now; park on
    /// [`PendingWait::wait`] for its result.
    Pending(PendingWait),
    /// The caller owns the computation: run the detector (unlocked) and
    /// publish through [`MissGuard::fill`].
    Miss(MissGuard<'a>),
}

impl std::fmt::Debug for Lookup<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lookup::Hit(v) => f.debug_tuple("Hit").field(&v.len()).finish(),
            Lookup::Pending(_) => f.write_str("Pending"),
            Lookup::Miss(g) => f.debug_tuple("Miss").field(&g.key).finish(),
        }
    }
}

/// A parked lookup of a key another session has in flight.
pub struct PendingWait {
    cell: Arc<PendingCell>,
}

impl PendingWait {
    /// Block until the computing session publishes the entry. `None`
    /// when that session abandoned the computation (its compute
    /// panicked) — retry from [`FrameCache::begin`].
    pub fn wait(self) -> Option<CachedDetections> {
        let mut state = self.cell.state.lock().expect("pending cell poisoned");
        loop {
            match &*state {
                PendingState::Computing => {
                    state = self.cell.cv.wait(state).expect("pending cell poisoned");
                }
                PendingState::Filled(value) => return Some(value.clone()),
                PendingState::Abandoned => return None,
            }
        }
    }
}

/// Exclusive reservation of a missed key (see [`FrameCache::begin`]).
/// Fill it with the computed detections, or drop it to abandon the
/// reservation and wake any waiters to retry.
pub struct MissGuard<'a> {
    cache: &'a FrameCache,
    key: FrameKey,
    cell: Arc<PendingCell>,
    filled: bool,
}

impl MissGuard<'_> {
    /// The reserved key.
    pub fn key(&self) -> FrameKey {
        self.key
    }

    /// Publish the computed detections: the entry becomes resident
    /// (evicting FIFO if the shard is full), waiters wake with the
    /// value, and the write-behind hook (if any) runs with no lock held.
    pub fn fill(mut self, dets: Vec<Detection>) -> CachedDetections {
        let value: CachedDetections = Arc::new(dets);
        self.filled = true;
        self.cache
            .finish_fill(self.key, &self.cell, value.clone(), true);
        value
    }

    /// Publish detections that came from durable storage (the mapped
    /// columnar container) instead of a detector run. Identical to
    /// [`MissGuard::fill`] for waiters and residency, but accounted as a
    /// warm load rather than a miss (no detector ran in this process) and
    /// the write-behind hook is skipped (the bytes are already durable —
    /// re-appending them would grow the log on every restart).
    pub fn fill_warm(mut self, dets: Vec<Detection>) -> CachedDetections {
        let value: CachedDetections = Arc::new(dets);
        self.filled = true;
        // begin() booked this reservation as a miss before anyone knew the
        // container had the frame; reclassify it as a hit (served from
        // storage, not the detector) so `misses` keeps meaning exactly
        // "detector invocations" and hits + misses keeps meaning lookups.
        self.cache.misses.fetch_sub(1, Ordering::Relaxed);
        self.cache.hits.fetch_add(1, Ordering::Relaxed);
        self.cache.warm_loads.fetch_add(1, Ordering::Relaxed);
        self.cache
            .finish_fill(self.key, &self.cell, value.clone(), false);
        value
    }
}

impl Drop for MissGuard<'_> {
    fn drop(&mut self) {
        if self.filled {
            return;
        }
        // Abandoned (the compute panicked, or the guard was discarded):
        // un-reserve the key and wake waiters so they can retry — an
        // in-flight entry must never outlive its computer.
        // lint: allow(panic_audit, shard_of is modulo the shard count so the index is always in bounds)
        let mut shard = self.cache.shards[self.cache.shard_of(&self.key)]
            .lock()
            .expect("cache shard poisoned");
        shard.pending.remove(&self.key);
        drop(shard);
        *self.cell.state.lock().expect("pending cell poisoned") = PendingState::Abandoned;
        self.cell.cv.notify_all();
    }
}

impl std::fmt::Debug for FrameCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(frame: u64) -> FrameKey {
        (RepoId(0), frame)
    }

    #[test]
    fn miss_then_hit() {
        let cache = FrameCache::new(64, 4);
        let (a, hit_a) = cache.get_or_compute(key(7), Vec::new);
        assert!(!hit_a);
        let (b, hit_b) = cache.get_or_compute(key(7), || panic!("must not recompute"));
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn evicts_fifo_within_capacity() {
        // Single shard so the eviction order is fully observable.
        let cache = FrameCache::new(4, 1);
        for f in 0..8 {
            cache.get_or_compute(key(f), Vec::new);
        }
        let s = cache.stats();
        assert_eq!(s.entries, 4);
        assert_eq!(s.evictions, 4);
        // Oldest entries are gone: looking them up recomputes.
        let (_, hit) = cache.get_or_compute(key(0), Vec::new);
        assert!(!hit);
        let (_, hit) = cache.get_or_compute(key(7), || panic!("recent entry evicted"));
        assert!(hit);
    }

    #[test]
    fn distinct_repos_do_not_collide() {
        let cache = FrameCache::new(64, 4);
        cache.get_or_compute((RepoId(1), 5), Vec::new);
        let (_, hit) = cache.get_or_compute((RepoId(2), 5), Vec::new);
        assert!(!hit);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn concurrent_lookups_compute_each_key_once() {
        use std::sync::atomic::AtomicUsize;
        let cache = FrameCache::new(4096, 16);
        let computes = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..8 {
                let cache = &cache;
                let computes = &computes;
                scope.spawn(move || {
                    // All threads sweep the same 512 keys, interleaved
                    // differently per thread.
                    for i in 0..512u64 {
                        let f = (i * (t + 1)) % 512;
                        cache.get_or_compute(key(f), || {
                            computes.fetch_add(1, Ordering::Relaxed);
                            Vec::new()
                        });
                    }
                });
            }
        });
        assert_eq!(computes.load(Ordering::Relaxed), 512);
        let s = cache.stats();
        assert_eq!(s.misses, 512);
        assert_eq!(s.hits, 8 * 512 - 512);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn slow_compute_does_not_block_other_keys_on_the_same_shard() {
        // Regression: get_or_compute used to run the compute closure while
        // holding the shard mutex, serializing every session that hashed
        // to the shard behind one detector invocation. The compute below
        // cannot finish until the *other-key* lookup on the same (single)
        // shard completes — under the old locking this deadlocks; with
        // in-flight entries it passes.
        use std::sync::mpsc::channel;
        let cache = FrameCache::new(64, 1);
        let (entered_tx, entered_rx) = channel();
        let (release_tx, release_rx) = channel::<()>();
        std::thread::scope(|scope| {
            let cache = &cache;
            scope.spawn(move || {
                cache.get_or_compute(key(1), move || {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    Vec::new()
                });
            });
            entered_rx.recv().unwrap(); // key 1 is mid-compute
            let (_, hit) = cache.get_or_compute(key(2), Vec::new);
            assert!(!hit);
            release_tx.send(()).unwrap();
        });
        let s = cache.stats();
        assert_eq!((s.misses, s.entries), (2, 2));
    }

    #[test]
    fn concurrent_same_key_lookup_waits_instead_of_recomputing() {
        use std::sync::mpsc::channel;
        let cache = FrameCache::new(64, 1);
        let (entered_tx, entered_rx) = channel();
        let (release_tx, release_rx) = channel::<()>();
        std::thread::scope(|scope| {
            let cache = &cache;
            scope.spawn(move || {
                cache.get_or_compute(key(1), move || {
                    entered_tx.send(()).unwrap();
                    release_rx.recv().unwrap();
                    Vec::new()
                });
            });
            entered_rx.recv().unwrap();
            let waiter = scope.spawn(move || {
                // Must park on the in-flight entry, not recompute.
                cache.get_or_compute(key(1), || panic!("computed twice"))
            });
            release_tx.send(()).unwrap();
            let (_, hit) = waiter.join().unwrap();
            assert!(hit, "waiter is served the in-flight result as a hit");
        });
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn abandoned_compute_unblocks_waiters_and_allows_retry() {
        use std::panic::AssertUnwindSafe;
        let cache = FrameCache::new(64, 1);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            cache.get_or_compute(key(5), || panic!("detector died"));
        }));
        assert!(result.is_err());
        // The reservation was released: the key is computable again, and
        // nothing is wedged.
        let (_, hit) = cache.get_or_compute(key(5), Vec::new);
        assert!(!hit);
        let (_, hit) = cache.get_or_compute(key(5), || panic!("resident now"));
        assert!(hit);
    }

    #[test]
    fn begin_fill_batch_protocol_round_trips() {
        // The engine's batched path: reserve several keys, fill them in
        // one "dispatch", and observe hits afterwards.
        let cache = FrameCache::new(64, 1);
        cache.get_or_compute(key(0), Vec::new); // resident
        let mut guards = Vec::new();
        for f in 1..4 {
            match cache.begin(key(f)) {
                Lookup::Miss(g) => guards.push(g),
                other => panic!("expected miss for fresh key, got {other:?}"),
            }
        }
        match cache.begin(key(0)) {
            Lookup::Hit(_) => {}
            other => panic!("expected hit, got {other:?}"),
        }
        // A concurrent begin of a reserved key parks as Pending.
        assert!(matches!(cache.begin(key(1)), Lookup::Pending(_)));
        for g in guards {
            assert_eq!(g.key().0, RepoId(0));
            g.fill(Vec::new());
        }
        for f in 0..4 {
            let (_, hit) = cache.get_or_compute(key(f), || panic!("filled above"));
            assert!(hit);
        }
        let s = cache.stats();
        assert_eq!(s.entries, 4);
    }

    #[test]
    fn preload_serves_hits_without_misses() {
        let cache = FrameCache::new(64, 4);
        assert!(cache.preload(key(3), Vec::new()));
        assert!(!cache.preload(key(3), Vec::new()), "double preload");
        let (_, hit) = cache.get_or_compute(key(3), || panic!("preloaded"));
        assert!(hit);
        let s = cache.stats();
        assert_eq!((s.warm_loads, s.hits, s.misses, s.entries), (1, 1, 0, 1));
    }

    #[test]
    fn preload_declines_when_full_instead_of_evicting() {
        let cache = FrameCache::new(2, 1);
        cache.get_or_compute(key(0), Vec::new);
        cache.get_or_compute(key(1), Vec::new);
        assert!(!cache.preload(key(2), Vec::new()));
        let s = cache.stats();
        assert_eq!((s.warm_loads, s.evictions, s.entries), (0, 0, 2));
        // The paid-for entries are still resident.
        let (_, hit) = cache.get_or_compute(key(0), || panic!("evicted"));
        assert!(hit);
    }

    #[test]
    fn wants_mirrors_preload_acceptance() {
        let cache = FrameCache::new(2, 1);
        assert!(cache.wants(&key(0)));
        cache.get_or_compute(key(0), Vec::new);
        assert!(!cache.wants(&key(0)), "already resident");
        let guard = match cache.begin(key(1)) {
            Lookup::Miss(g) => g,
            other => panic!("expected miss, got {other:?}"),
        };
        assert!(!cache.wants(&key(1)), "in flight");
        assert!(!cache.preload_saturated(), "one slot left");
        guard.fill(Vec::new());
        assert!(!cache.wants(&key(2)), "shard full");
        assert!(cache.preload_saturated());
    }

    #[test]
    fn fill_warm_counts_as_warm_hit_and_skips_write_behind() {
        use std::sync::Mutex as StdMutex;
        let written: Arc<StdMutex<Vec<FrameKey>>> = Arc::new(StdMutex::new(Vec::new()));
        let mut cache = FrameCache::new(64, 4);
        let sink = written.clone();
        cache.set_write_behind(Box::new(move |k, _| sink.lock().unwrap().push(k)));
        let guard = match cache.begin(key(3)) {
            Lookup::Miss(g) => g,
            other => panic!("expected miss, got {other:?}"),
        };
        guard.fill_warm(Vec::new());
        let s = cache.stats();
        // Served from storage: a warm hit, not a detector miss, and the
        // log never sees it again.
        assert_eq!((s.hits, s.misses, s.warm_loads, s.entries), (1, 0, 1, 1));
        assert!(written.lock().unwrap().is_empty());
        let (_, hit) = cache.get_or_compute(key(3), || panic!("resident"));
        assert!(hit);
    }

    #[test]
    fn write_behind_sees_each_computed_entry_once() {
        use std::sync::Mutex as StdMutex;
        let written: Arc<StdMutex<Vec<FrameKey>>> = Arc::new(StdMutex::new(Vec::new()));
        let mut cache = FrameCache::new(64, 4);
        let sink = written.clone();
        cache.set_write_behind(Box::new(move |k, dets| {
            assert!(dets.is_empty());
            sink.lock().unwrap().push(k);
        }));
        cache.preload(key(9), Vec::new());
        cache.get_or_compute(key(9), || panic!("preloaded")); // hit: no write
        cache.get_or_compute(key(1), Vec::new); // miss: written
        cache.get_or_compute(key(1), Vec::new); // hit: no write
        cache.get_or_compute(key(2), Vec::new); // miss: written
        assert_eq!(*written.lock().unwrap(), vec![key(1), key(2)]);
    }

    #[test]
    fn stats_display_is_one_line() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            entries: 4,
            warm_loads: 2,
        };
        let line = s.to_string();
        assert_eq!(
            line,
            "3 hits / 4 lookups (75.0% hit rate), 2 warm-loaded, 0 evictions, 4 resident"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn capacity_rounds_to_shards() {
        let cache = FrameCache::new(10, 3); // 4 shards, cap 3 each
        for f in 0..100 {
            cache.get_or_compute(key(f), Vec::new);
        }
        assert!(cache.stats().entries <= 12);
        assert!(cache.stats().evictions >= 88);
    }
}
