//! The engine: worker threads multiplexing many search sessions.
//!
//! # Architecture
//!
//! ```text
//!  submit ──▶ ┌───────────────────────────────┐
//!  poll   ──▶ │ EngineState (one mutex)       │   work_cv / done_cv
//!  cancel ──▶ │  sessions: SessionId -> Slot  │◀──────────────┐
//!  wait   ──▶ │  scheduler: weighted fair     │               │
//!             └──────────────┬────────────────┘               │
//!                            │ lease (session checked out)    │
//!                 ┌──────────▼──────────┐                     │
//!                 │ worker thread pool  │── step quantum ─────┘
//!                 └──────────┬──────────┘
//!                            │ miss: decode + detect
//!                 ┌──────────▼──────────┐
//!                 │ FrameCache (sharded)│  hit: free, shared
//!                 └─────────────────────┘
//! ```
//!
//! A worker leases the runnable session with the smallest virtual time,
//! *takes the session core out of the slot* (so the state mutex is not
//! held while frames are processed), steps it for up to a quantum of
//! frames, then puts it back and charges the scheduler what the quantum
//! actually cost. Per-frame cost is the modelled detector time
//! (`1 / detector_fps`, cache misses only) plus io/decode seconds from the
//! session's own GOP container reader priced by the store's `CostModel`;
//! cache hits are free, which is precisely the sharing the engine exists
//! to exploit.
//!
//! # Determinism
//!
//! Each session owns its policy, RNG, and discriminator, and is stepped by
//! one worker at a time, so its frame sequence — and therefore its
//! results, for result- or sample-bounded stops — is a pure function of
//! its `QuerySpec`, independent of scheduling interleavings. Detector
//! output is deterministic per `(repo, frame)`, and the cache computes
//! each resident key exactly once, so total detector invocations are also
//! reproducible (given a cache large enough to avoid evictions).
//! Time-bounded stops (`StopCond::max_seconds`) react to *charged*
//! seconds, which depend on which session happens to pay for a shared
//! frame first — those stops are fair but not bit-reproducible.

use crate::cache::{CacheStats, FrameCache};
use crate::scheduler::Scheduler;
use crate::session::{
    DiscriminatorKind, QuerySpec, RepoId, ResultEvent, SessionCharges, SessionId, SessionReport,
    SessionSnapshot, SessionStatus,
};
use crate::threads::default_threads;
use exsample_core::belief::ChunkStats;
use exsample_core::driver::SearchStepper;
use exsample_core::exsample::ExSample;
use exsample_core::policy::Feedback;
use exsample_core::Chunking;
use exsample_detect::{
    Detection, Discriminator, NoiseModel, OracleDiscriminator, SimulatedDetector,
    TrackerDiscriminator,
};
use exsample_persist::{scan_detections, BeliefStore, DetectionLog, LoadStats, PersistConfig};
use exsample_stats::{FxHashMap, Rng64};
use exsample_store::{Container, ContainerWriter, CostModel, DecodeStats};
use exsample_videosim::GroundTruth;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (defaults to [`default_threads`]).
    pub workers: usize,
    /// Modelled detector throughput; one invocation charges
    /// `1 / detector_fps` seconds (the paper measures ≈ 20 fps).
    pub detector_fps: f64,
    /// Frames granted per scheduler lease. Smaller quanta interleave
    /// sessions more finely; larger quanta amortize locking.
    pub quantum: u32,
    /// Shared detection cache capacity, in frames.
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Keyframe interval of the modelled storage containers.
    pub gop_size: u32,
    /// Prices io/decode work (seeks, GOP walks) in seconds.
    pub cost_model: CostModel,
    /// Durable detection store. When set, the engine preloads persisted
    /// detections into the cache at startup, appends every cache miss to
    /// the detection log (write-behind), and snapshots each finished
    /// session's chunk beliefs for later warm-starts. `None` (the
    /// default) keeps the engine fully in-memory.
    pub persist: Option<PersistConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: default_threads(),
            detector_fps: 20.0,
            quantum: 32,
            cache_capacity: 1 << 20,
            cache_shards: 64,
            gop_size: 20,
            cost_model: CostModel::default(),
            persist: None,
        }
    }
}

/// What the durable detection store did at startup and since (see
/// [`Engine::persist_stats`]). All "skipped" counters are benign: stale or
/// damaged data costs recomputation, never correctness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Detection-log segments whose records were loaded at startup.
    pub segments_loaded: u64,
    /// Segments invalidated at startup (version/fingerprint mismatch or
    /// unrecognizable header).
    pub segments_skipped: u64,
    /// Checksum-valid detection records read at startup.
    pub records_loaded: u64,
    /// Damaged segment tails abandoned at startup (torn write, bit rot).
    pub damaged_tails: u64,
    /// Records actually injected into the cache (≤ `records_loaded`:
    /// duplicates and capacity overflow are declined).
    pub preloaded_frames: u64,
    /// Belief snapshots loaded at startup.
    pub snapshots_loaded: u64,
    /// Belief snapshots invalidated at startup.
    pub snapshots_skipped: u64,
    /// Belief snapshot keys currently resident (loaded + written since).
    pub beliefs_resident: u64,
    /// Detection-log write errors absorbed (the log goes inert after the
    /// first).
    pub log_write_errors: u64,
    /// Belief snapshot write errors absorbed.
    pub snapshot_write_errors: u64,
}

/// Durable-store handles shared by workers (independent of the state
/// mutex; lock order is always state → persist, or persist alone).
struct PersistShared {
    log: Arc<Mutex<DetectionLog>>,
    beliefs: Mutex<BeliefStore>,
    detections_load: LoadStats,
    preloaded_frames: u64,
}

/// Errors surfaced by the engine API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The repository id was never registered.
    UnknownRepo(RepoId),
    /// The session id was never submitted.
    UnknownSession(SessionId),
    /// The query spec is structurally invalid.
    InvalidSpec(&'static str),
    /// The session is still running (e.g. `forget` before completion).
    SessionRunning(SessionId),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownRepo(r) => write!(f, "unknown repository {r:?}"),
            EngineError::UnknownSession(s) => write!(f, "unknown session {s:?}"),
            EngineError::InvalidSpec(why) => write!(f, "invalid query spec: {why}"),
            EngineError::SessionRunning(s) => write!(f, "session {s:?} is still running"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A registered repository: ground truth, one deterministic per-class
/// detector bank, and the bytes of its GOP container.
struct RepoData {
    gt: Arc<GroundTruth>,
    detectors: Vec<SimulatedDetector>,
    container: bytes::Bytes,
}

/// The per-session state a worker checks out while stepping.
struct SessionCore {
    repo_id: RepoId,
    repo: Arc<RepoData>,
    class: exsample_videosim::ClassId,
    policy: ExSample,
    rng: Rng64,
    stepper: SearchStepper,
    discrim: Box<dyn Discriminator + Send>,
    /// This session's private reader over the repo container (its own GOP
    /// cache and decode tally).
    container: Container,
    /// Reusable buffer for the query-class slice of cached detections.
    class_dets: Vec<Detection>,
    /// Reusable visible-instance scratch for cache-miss detection runs.
    gt_scratch: Vec<exsample_videosim::InstanceId>,
}

/// Slot holding a session inside the engine state.
struct Slot {
    /// `Some` while the session still runs; taken by the leasing worker.
    core: Option<Box<SessionCore>>,
    status: SessionStatus,
    cancel: Arc<AtomicBool>,
    events: Vec<ResultEvent>,
    charges: SessionCharges,
    found: u64,
    samples: u64,
    /// Final trace, set at completion/cancellation.
    trace: Option<exsample_core::driver::SearchTrace>,
    /// Final belief statistics, set alongside `trace`.
    chunk_stats: Vec<ChunkStats>,
    /// Position in the engine-wide finish order, set at finalization.
    finish_order: u64,
}

struct EngineState {
    repos: Vec<Arc<RepoData>>,
    sessions: FxHashMap<SessionId, Slot>,
    scheduler: Scheduler,
    next_session: u64,
    finished_sessions: u64,
}

struct Shared {
    state: Mutex<EngineState>,
    /// Wakes workers when sessions become runnable (submit / release).
    work_cv: Condvar,
    /// Wakes `wait()` callers when any session finishes.
    done_cv: Condvar,
    cache: FrameCache,
    config: EngineConfig,
    persist: Option<PersistShared>,
    stop: AtomicBool,
}

/// Multi-query search engine front door.
///
/// See the [module docs](self) for the architecture. All methods take
/// `&self`; the engine is internally synchronized and is shut down (stop
/// flag + worker join) on drop.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Start an engine and its worker threads. With
    /// [`EngineConfig::persist`] set, previously persisted detections are
    /// preloaded into the cache and belief snapshots into memory before
    /// any worker runs; stale (fingerprint-mismatched) or damaged data is
    /// skipped and counted in [`Engine::persist_stats`], never an error.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (zero workers, quantum,
    /// fps, or cache capacity), or if the persist directory cannot be
    /// created or listed at all (directory-level IO failure — damaged
    /// *contents* never panic).
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.quantum > 0, "quantum must be positive");
        assert!(config.detector_fps > 0.0, "detector_fps must be positive");
        let mut cache = FrameCache::new(config.cache_capacity, config.cache_shards);
        let persist = config.persist.as_ref().map(|pc| {
            let beliefs = BeliefStore::open(pc).expect("persist directory unusable");
            let log = DetectionLog::open(pc).expect("persist directory unusable");
            let mut preloaded_frames = 0u64;
            let detections_load = scan_detections(&pc.dir, pc.fingerprint, |rec| {
                if cache.preload((RepoId(rec.repo), rec.frame), rec.dets) {
                    preloaded_frames += 1;
                }
            })
            .expect("persist directory unusable");
            let log = Arc::new(Mutex::new(log));
            let sink = log.clone();
            cache.set_write_behind(Box::new(move |key, dets| {
                sink.lock()
                    .expect("detection log poisoned")
                    .append(key.0 .0, key.1, dets);
            }));
            PersistShared {
                log,
                beliefs: Mutex::new(beliefs),
                detections_load,
                preloaded_frames,
            }
        });
        let workers = config.workers;
        let shared = Arc::new(Shared {
            state: Mutex::new(EngineState {
                repos: Vec::new(),
                sessions: FxHashMap::default(),
                scheduler: Scheduler::new(),
                next_session: 0,
                finished_sessions: 0,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cache,
            config,
            persist,
            stop: AtomicBool::new(false),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("exsample-engine-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn engine worker")
            })
            .collect();
        Engine { shared, workers }
    }

    /// Register a repository. Builds the per-class detector bank (the
    /// noise stream of class `c` is seeded by `det_seed + c`, so detection
    /// output is a pure function of `(repo, frame)`) and writes the
    /// repository's GOP container, which sessions decode through.
    pub fn register_repo(&self, gt: Arc<GroundTruth>, noise: NoiseModel, det_seed: u64) -> RepoId {
        let detectors = (0..gt.num_classes())
            .map(|c| {
                SimulatedDetector::new(
                    gt.clone(),
                    exsample_videosim::ClassId(c as u16),
                    noise,
                    det_seed.wrapping_add(c as u64),
                )
            })
            .collect();
        // Model the storage layer with an empty payload per frame: decode
        // *cost* (seeks, keyframe walks) is structural, not content-bound.
        let mut writer = ContainerWriter::new(self.shared.config.gop_size);
        for _ in 0..gt.frames {
            writer.push_frame(&[]);
        }
        let repo = Arc::new(RepoData {
            gt,
            detectors,
            container: writer.finish(),
        });
        let mut state = self.lock_state();
        let id = RepoId(state.repos.len() as u32);
        state.repos.push(repo);
        id
    }

    /// Submit a query; the session immediately competes for detector
    /// budget. Returns its id for `poll` / `cancel` / `wait`.
    pub fn submit(&self, spec: QuerySpec) -> Result<SessionId, EngineError> {
        if spec.chunks == 0 {
            return Err(EngineError::InvalidSpec("chunks must be positive"));
        }
        if spec.weight == 0 {
            return Err(EngineError::InvalidSpec("weight must be positive"));
        }
        let mut state = self.lock_state();
        let repo = state
            .repos
            .get(spec.repo.0 as usize)
            .cloned()
            .ok_or(EngineError::UnknownRepo(spec.repo))?;
        if (spec.class.0 as usize) >= repo.gt.num_classes() {
            return Err(EngineError::InvalidSpec("class not present in repository"));
        }
        let frames = repo.gt.frames;
        if frames == 0 {
            return Err(EngineError::InvalidSpec("repository has no frames"));
        }
        let chunks = spec.chunks.min(frames as usize);
        let mut policy = ExSample::new(Chunking::even(frames, chunks), spec.config);
        if spec.warm_start {
            if let Some(p) = &self.shared.persist {
                let beliefs = p.beliefs.lock().expect("belief store poisoned");
                if let Some(stats) = beliefs.get((spec.repo.0, spec.class.0, chunks as u32)) {
                    policy.import_stats(stats);
                }
            }
        }
        let discrim: Box<dyn Discriminator + Send> = match spec.discriminator {
            DiscriminatorKind::Oracle => Box::new(OracleDiscriminator::new()),
            DiscriminatorKind::Tracker { seed } => {
                Box::new(TrackerDiscriminator::new(repo.gt.clone(), seed))
            }
        };
        let core = Box::new(SessionCore {
            repo_id: spec.repo,
            class: spec.class,
            policy,
            rng: Rng64::new(spec.seed),
            stepper: SearchStepper::new(spec.stop, 0.0),
            discrim,
            container: Container::open(repo.container.clone()).expect("engine-built container"),
            repo,
            class_dets: Vec::new(),
            gt_scratch: Vec::new(),
        });
        let id = SessionId(state.next_session);
        state.next_session += 1;
        state.sessions.insert(
            id,
            Slot {
                core: Some(core),
                status: SessionStatus::Running,
                cancel: Arc::new(AtomicBool::new(false)),
                events: Vec::new(),
                charges: SessionCharges::default(),
                found: 0,
                samples: 0,
                trace: None,
                chunk_stats: Vec::new(),
                finish_order: 0,
            },
        );
        state.scheduler.register(id, spec.weight);
        drop(state);
        self.shared.work_cv.notify_all();
        Ok(id)
    }

    /// Non-blocking progress snapshot. `cursor` selects which result
    /// events to return (pass 0 first, then the returned `next_cursor`).
    pub fn poll(&self, id: SessionId, cursor: usize) -> Result<SessionSnapshot, EngineError> {
        let state = self.lock_state();
        let slot = state
            .sessions
            .get(&id)
            .ok_or(EngineError::UnknownSession(id))?;
        let cursor = cursor.min(slot.events.len());
        Ok(SessionSnapshot {
            status: slot.status,
            found: slot.found,
            samples: slot.samples,
            charges: slot.charges,
            events: slot.events[cursor..].to_vec(),
            next_cursor: slot.events.len(),
        })
    }

    /// Request cancellation. Takes effect at the session's next frame
    /// boundary; `wait` then returns its partial trace with status
    /// [`SessionStatus::Cancelled`]. Cancelling a finished session is a
    /// no-op.
    pub fn cancel(&self, id: SessionId) -> Result<(), EngineError> {
        let state = self.lock_state();
        let slot = state
            .sessions
            .get(&id)
            .ok_or(EngineError::UnknownSession(id))?;
        slot.cancel.store(true, Ordering::Relaxed);
        drop(state);
        // A worker pass finalizes the cancellation even if the session is
        // currently parked.
        self.shared.work_cv.notify_all();
        Ok(())
    }

    /// Block until the session finishes (or is cancelled) and return its
    /// final report.
    pub fn wait(&self, id: SessionId) -> Result<SessionReport, EngineError> {
        let mut state = self.lock_state();
        loop {
            let slot = state
                .sessions
                .get(&id)
                .ok_or(EngineError::UnknownSession(id))?;
            if let Some(trace) = &slot.trace {
                return Ok(SessionReport {
                    status: slot.status,
                    trace: trace.clone(),
                    charges: slot.charges,
                    finish_order: slot.finish_order,
                    chunk_stats: slot.chunk_stats.clone(),
                });
            }
            // Drop takes `&mut self`, so no `wait` borrow can be alive
            // while the engine shuts down — no stop check is needed here.
            state = self
                .shared
                .done_cv
                .wait(state)
                .expect("engine state poisoned");
        }
    }

    /// Drop every trace of a *finished* session (its event log, trace,
    /// and ledger), returning the final report one last time.
    ///
    /// Finished sessions are retained indefinitely so late `poll`/`wait`
    /// callers can still read them; a long-lived engine serving an open-
    /// ended query stream should `forget` sessions once their results are
    /// consumed, or resident memory grows with every query ever run.
    pub fn forget(&self, id: SessionId) -> Result<SessionReport, EngineError> {
        let mut state = self.lock_state();
        let slot = state
            .sessions
            .get(&id)
            .ok_or(EngineError::UnknownSession(id))?;
        if slot.trace.is_none() {
            return Err(EngineError::SessionRunning(id));
        }
        let slot = state.sessions.remove(&id).expect("present above");
        Ok(SessionReport {
            status: slot.status,
            trace: slot.trace.expect("checked above"),
            charges: slot.charges,
            finish_order: slot.finish_order,
            chunk_stats: slot.chunk_stats,
        })
    }

    /// Shared-cache counters (hits, misses, evictions, residency).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Total detector invocations the engine has paid for — cache misses.
    /// With independent execution this would be the total frame count
    /// across sessions; the difference is what sharing saved.
    pub fn detector_invocations(&self) -> u64 {
        self.shared.cache.stats().misses
    }

    /// Durable-store counters, or `None` when persistence is off.
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.shared.persist.as_ref().map(|p| {
            let beliefs = p.beliefs.lock().expect("belief store poisoned");
            let snapshots = beliefs.load_stats();
            PersistStats {
                segments_loaded: p.detections_load.segments_loaded,
                segments_skipped: p.detections_load.segments_skipped,
                records_loaded: p.detections_load.records_loaded,
                damaged_tails: p.detections_load.damaged_tails,
                preloaded_frames: p.preloaded_frames,
                snapshots_loaded: snapshots.segments_loaded,
                snapshots_skipped: snapshots.segments_skipped,
                beliefs_resident: beliefs.len() as u64,
                snapshot_write_errors: beliefs.write_errors(),
                log_write_errors: p.log.lock().expect("detection log poisoned").write_errors(),
            }
        })
    }

    /// The belief statistics a warm-starting query over
    /// `(repo, class, chunks)` would import right now, if a snapshot
    /// exists. `None` when persistence is off or no prior search over
    /// that key has finished. `chunks` is the *effective* chunk count
    /// (i.e. after clamping to the repository's frame count).
    pub fn warm_beliefs(
        &self,
        repo: RepoId,
        class: exsample_videosim::ClassId,
        chunks: usize,
    ) -> Option<Vec<ChunkStats>> {
        let p = self.shared.persist.as_ref()?;
        let beliefs = p.beliefs.lock().expect("belief store poisoned");
        beliefs
            .get((repo.0, class.0, chunks as u32))
            .map(<[_]>::to_vec)
    }

    fn lock_state(&self) -> MutexGuard<'_, EngineState> {
        self.shared.state.lock().expect("engine state poisoned")
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Workers read `stop` under the state mutex before parking on
        // work_cv. Notifying while holding that mutex closes the lost-
        // wakeup window: either a worker has already parked (the notify
        // reaches it) or it still holds the mutex (we block here until it
        // parks, then our notify reaches it) — it can never re-check the
        // flag before our store became visible.
        {
            let _state = self.lock_state();
            self.shared.work_cv.notify_all();
            self.shared.done_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock_state();
        f.debug_struct("Engine")
            .field("workers", &self.workers.len())
            .field("repos", &state.repos.len())
            .field("sessions", &state.sessions.len())
            .field("cache", &self.shared.cache.stats())
            .finish()
    }
}

/// What one quantum of stepping produced (applied under the state lock).
struct QuantumOutcome {
    events: Vec<ResultEvent>,
    delta: SessionCharges,
    finished: bool,
    cancelled: bool,
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("engine state poisoned");
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let Some(id) = state.scheduler.lease_next() else {
            state = shared.work_cv.wait(state).expect("engine state poisoned");
            continue;
        };
        let slot = state.sessions.get_mut(&id).expect("leased session exists");
        let mut core = slot.core.take().expect("leased session has its core");
        let cancel = slot.cancel.clone();
        drop(state);

        let outcome = step_quantum(&mut core, shared, &cancel);

        state = shared.state.lock().expect("engine state poisoned");
        // Liveness floor: an all-hit quantum costs ~0 modelled seconds, and
        // charging exactly 0 would freeze the session's virtual time and
        // let a cache-warm session hold every lease until it finishes
        // (wall-clock-starving cost-paying sessions). Floor each release at
        // 0.1% of a fully-missing quantum — negligible for budget split,
        // sufficient for rotation. Session ledgers stay exact; only the
        // scheduler's arbitration sees the floor.
        let floor_s = shared.config.quantum as f64 / shared.config.detector_fps * 1e-3;
        state
            .scheduler
            .release(id, outcome.delta.total_s().max(floor_s));
        let finish_order = state.finished_sessions;
        // On finalization the core is kept out of the slot so the belief
        // snapshot below can read its final statistics.
        let retired = {
            let slot = state.sessions.get_mut(&id).expect("session exists");
            slot.events.extend_from_slice(&outcome.events);
            slot.charges.detect_s += outcome.delta.detect_s;
            slot.charges.io_s += outcome.delta.io_s;
            slot.charges.frames += outcome.delta.frames;
            slot.charges.cache_hits += outcome.delta.cache_hits;
            slot.charges.detector_invocations += outcome.delta.detector_invocations;
            slot.found = core.stepper.found();
            slot.samples = core.stepper.samples();
            if outcome.finished || outcome.cancelled {
                slot.status = if outcome.cancelled {
                    SessionStatus::Cancelled
                } else {
                    SessionStatus::Done
                };
                slot.trace = Some(core.stepper.clone().finish());
                slot.chunk_stats = core.policy.chunk_stats().to_vec();
                slot.finish_order = finish_order;
                Some(core)
            } else {
                slot.core = Some(core);
                None
            }
        };
        if let Some(core) = retired {
            state.finished_sessions += 1;
            state.scheduler.deactivate(id);
            // Make the belief snapshot visible (in memory) *before*
            // waiters learn the session finished: a warm_start query
            // submitted the instant `wait` returns must find it. Only the
            // durable file write is deferred past the state lock. The
            // offer is evidence-gated, so a short or cancelled run never
            // clobbers a richer snapshot of the same key.
            let snapshot_key = match &shared.persist {
                Some(persist) if core.stepper.samples() > 0 => {
                    let key = (
                        core.repo_id.0,
                        core.class.0,
                        core.policy.chunking().num_chunks() as u32,
                    );
                    let adopted = persist
                        .beliefs
                        .lock()
                        .expect("belief store poisoned")
                        .offer(key, core.policy.chunk_stats().to_vec());
                    adopted.then_some(key)
                }
                _ => None,
            };
            shared.done_cv.notify_all();
            if let Some(key) = snapshot_key {
                let persist = shared.persist.as_ref().expect("checked above");
                drop(state);
                persist
                    .beliefs
                    .lock()
                    .expect("belief store poisoned")
                    .persist_key(key);
                state = shared.state.lock().expect("engine state poisoned");
            }
        } else {
            // The session is runnable again; a parked worker may want it.
            shared.work_cv.notify_one();
        }
    }
}

/// Step one leased session for up to `quantum` frames. Runs without the
/// state lock; touches only the session's own core plus the shared cache.
fn step_quantum(core: &mut SessionCore, shared: &Shared, cancel: &AtomicBool) -> QuantumOutcome {
    let detect_frame_s = 1.0 / shared.config.detector_fps;
    let cost_model = shared.config.cost_model;
    let mut out = QuantumOutcome {
        events: Vec::new(),
        delta: SessionCharges::default(),
        finished: false,
        cancelled: false,
    };
    for _ in 0..shared.config.quantum {
        if cancel.load(Ordering::Relaxed) {
            out.cancelled = true;
            break;
        }
        let Some(frame) = core.stepper.next_frame(&mut core.policy, &mut core.rng) else {
            out.finished = true;
            break;
        };
        let mut io_s = 0.0;
        let container = &mut core.container;
        let repo = &core.repo;
        let gt_scratch = &mut core.gt_scratch;
        let (dets, hit) = shared.cache.get_or_compute((core.repo_id, frame), || {
            let before = *container.stats();
            container
                .read_frame(frame)
                .expect("engine-built container read");
            let after = *container.stats();
            io_s = cost_model.seconds(&decode_delta(&before, &after));
            let mut all = Vec::new();
            for det in &repo.detectors {
                all.extend(det.detect_with_scratch(frame, gt_scratch));
            }
            all
        });
        core.class_dets.clear();
        core.class_dets
            .extend(dets.iter().filter(|d| d.class == core.class).cloned());
        let obs = core.discrim.observe(frame, &core.class_dets);
        let fb = Feedback::new(obs.new_results, obs.matched_once);

        out.delta.frames += 1;
        let frame_cost = if hit {
            out.delta.cache_hits += 1;
            0.0
        } else {
            out.delta.detector_invocations += 1;
            out.delta.detect_s += detect_frame_s;
            out.delta.io_s += io_s;
            detect_frame_s + io_s
        };
        // The session clock lives in the stepper (record sets it to the
        // absolute value we pass), so there is a single source of truth.
        let now = core.stepper.seconds() + frame_cost;
        let done = core.stepper.record(&mut core.policy, frame, fb, now);
        if fb.new_results > 0 {
            out.events.push(ResultEvent {
                frame,
                new_results: fb.new_results,
                samples: core.stepper.samples(),
                seconds: now,
            });
        }
        if done {
            out.finished = true;
            break;
        }
    }
    out
}

/// Component-wise `after - before` of two decode tallies.
fn decode_delta(before: &DecodeStats, after: &DecodeStats) -> DecodeStats {
    DecodeStats {
        seeks: after.seeks - before.seeks,
        gops_fetched: after.gops_fetched - before.gops_fetched,
        frames_decoded: after.frames_decoded - before.frames_decoded,
        frames_returned: after.frames_returned - before.frames_returned,
        bytes_fetched: after.bytes_fetched - before.bytes_fetched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_core::driver::StopCond;
    use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, SkewSpec};

    fn truth(frames: u64, instances: usize) -> Arc<GroundTruth> {
        Arc::new(
            DatasetSpec::single_class(
                frames,
                ClassSpec::new(
                    "car",
                    instances,
                    200.0,
                    SkewSpec::CentralNormal { frac95: 0.2 },
                ),
            )
            .generate(17),
        )
    }

    fn small_engine(workers: usize) -> (Engine, RepoId) {
        let engine = Engine::new(EngineConfig {
            workers,
            quantum: 8,
            ..EngineConfig::default()
        });
        let repo = engine.register_repo(truth(20_000, 60), NoiseModel::none(), 5);
        (engine, repo)
    }

    #[test]
    fn single_session_reaches_result_limit() {
        let (engine, repo) = small_engine(2);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(10)).seed(3))
            .unwrap();
        let report = engine.wait(id).unwrap();
        assert_eq!(report.status, SessionStatus::Done);
        assert!(report.trace.found() >= 10);
        assert!(report.charges.frames > 0);
        assert!(report.charges.detector_invocations > 0);
        assert!(report.charges.total_s() > 0.0);
        // Engine seconds equal the charged ledger.
        assert!((report.trace.seconds() - report.charges.total_s()).abs() < 1e-9);
    }

    #[test]
    fn poll_streams_events_incrementally() {
        let (engine, repo) = small_engine(2);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(15)).seed(4))
            .unwrap();
        let mut cursor = 0;
        let mut streamed = 0u64;
        loop {
            let snap = engine.poll(id, cursor).unwrap();
            streamed += snap
                .events
                .iter()
                .map(|e| e.new_results as u64)
                .sum::<u64>();
            cursor = snap.next_cursor;
            if snap.status != SessionStatus::Running {
                break;
            }
            std::thread::yield_now();
        }
        let report = engine.wait(id).unwrap();
        assert_eq!(streamed, report.trace.found());
        // Events are monotone in samples and their results sum to found.
        let snap = engine.poll(id, 0).unwrap();
        for w in snap.events.windows(2) {
            assert!(w[0].samples < w[1].samples);
            assert!(w[0].seconds <= w[1].seconds);
        }
    }

    #[test]
    fn cancel_preserves_partial_trace() {
        // Big, nearly-empty repository: the session cannot exhaust or
        // finish before the cancel lands.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            quantum: 8,
            ..EngineConfig::default()
        });
        let repo = engine.register_repo(truth(500_000, 2), NoiseModel::none(), 5);
        // Unreachable target: only cancellation (or exhaustion) ends it.
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(1_000_000)).seed(5))
            .unwrap();
        // Let it make some progress, then cancel.
        loop {
            let snap = engine.poll(id, 0).unwrap();
            if snap.samples > 100 || snap.status != SessionStatus::Running {
                break;
            }
            std::thread::yield_now();
        }
        engine.cancel(id).unwrap();
        let report = engine.wait(id).unwrap();
        assert_eq!(report.status, SessionStatus::Cancelled);
        assert!(report.trace.samples() > 0);
        // Idempotent.
        engine.cancel(id).unwrap();
        assert_eq!(engine.wait(id).unwrap().status, SessionStatus::Cancelled);
    }

    #[test]
    fn overlapping_sessions_share_detections() {
        // Rare objects and a near-full-recall target force each session to
        // sweep a large share of the hot region, so the sessions' sample
        // sets overlap heavily.
        let engine = Engine::new(EngineConfig {
            workers: 3,
            quantum: 8,
            ..EngineConfig::default()
        });
        let gt = Arc::new(
            DatasetSpec::single_class(
                20_000,
                ClassSpec::new("car", 40, 40.0, SkewSpec::CentralNormal { frac95: 0.15 }),
            )
            .generate(17),
        );
        let repo = engine.register_repo(gt, NoiseModel::none(), 5);
        let ids: Vec<SessionId> = (0..4)
            .map(|i| {
                engine
                    .submit(
                        QuerySpec::new(repo, ClassId(0), StopCond::results(30))
                            .seed(100 + i)
                            .chunks(8),
                    )
                    .unwrap()
            })
            .collect();
        let mut total_frames = 0;
        for id in ids {
            let report = engine.wait(id).unwrap();
            assert_eq!(report.status, SessionStatus::Done);
            assert!(report.trace.found() >= 30);
            total_frames += report.charges.frames;
        }
        let stats = engine.cache_stats();
        assert!(
            stats.hits > 0,
            "overlapping sessions produced no cache hits"
        );
        assert_eq!(stats.hits + stats.misses, total_frames);
        assert!(engine.detector_invocations() < total_frames);
    }

    #[test]
    fn exhaustion_finishes_session() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let repo = engine.register_repo(truth(500, 2), NoiseModel::none(), 6);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(1_000)).seed(7))
            .unwrap();
        let report = engine.wait(id).unwrap();
        assert_eq!(report.status, SessionStatus::Done);
        assert!(report.trace.exhausted());
        assert_eq!(report.trace.samples(), 500);
    }

    #[test]
    fn api_errors() {
        let (engine, repo) = small_engine(1);
        assert_eq!(
            engine.submit(QuerySpec::new(RepoId(99), ClassId(0), StopCond::results(1))),
            Err(EngineError::UnknownRepo(RepoId(99)))
        );
        assert_eq!(
            engine.submit(QuerySpec::new(repo, ClassId(9), StopCond::results(1))),
            Err(EngineError::InvalidSpec("class not present in repository"))
        );
        assert_eq!(
            engine.submit(QuerySpec::new(repo, ClassId(0), StopCond::results(1)).weight(0)),
            Err(EngineError::InvalidSpec("weight must be positive"))
        );
        assert_eq!(
            engine.poll(SessionId(42), 0).unwrap_err(),
            EngineError::UnknownSession(SessionId(42))
        );
        assert_eq!(
            engine.wait(SessionId(42)).unwrap_err(),
            EngineError::UnknownSession(SessionId(42))
        );
        assert!(engine.cancel(SessionId(42)).is_err());
    }

    #[test]
    fn priority_weights_shift_detector_budget() {
        // One worker, equal sample budgets: the weight-4 session receives
        // 4/5 of the detector grants while both run, so it must reach its
        // budget — and finalize — strictly before the weight-1 session.
        // finish_order is assigned under the state lock, so this is
        // race-free.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            quantum: 4,
            ..EngineConfig::default()
        });
        let repo = engine.register_repo(truth(50_000, 40), NoiseModel::none(), 8);
        let heavy = engine
            .submit(
                QuerySpec::new(repo, ClassId(0), StopCond::samples(2_000))
                    .seed(1)
                    .weight(4),
            )
            .unwrap();
        let light = engine
            .submit(
                QuerySpec::new(repo, ClassId(0), StopCond::samples(2_000))
                    .seed(2)
                    .weight(1),
            )
            .unwrap();
        let heavy_report = engine.wait(heavy).unwrap();
        let light_report = engine.wait(light).unwrap();
        assert_eq!(heavy_report.trace.samples(), 2_000);
        assert_eq!(light_report.trace.samples(), 2_000);
        assert!(
            heavy_report.finish_order < light_report.finish_order,
            "weight-4 session finished after weight-1 ({} vs {})",
            heavy_report.finish_order,
            light_report.finish_order
        );
    }

    #[test]
    fn forget_releases_finished_sessions_only() {
        let (engine, repo) = small_engine(2);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(5)).seed(21))
            .unwrap();
        let report = engine.wait(id).unwrap();
        let forgotten = engine.forget(id).unwrap();
        assert_eq!(forgotten.trace, report.trace);
        assert_eq!(forgotten.charges, report.charges);
        // Gone: every later access errors.
        assert_eq!(
            engine.poll(id, 0).unwrap_err(),
            EngineError::UnknownSession(id)
        );
        assert_eq!(
            engine.forget(id).unwrap_err(),
            EngineError::UnknownSession(id)
        );
        // A running session cannot be forgotten.
        let busy = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(1_000_000)).seed(22))
            .unwrap();
        match engine.forget(busy) {
            Err(EngineError::SessionRunning(_)) => {}
            Ok(_) => {
                // It may legitimately have finished (exhaustion) before we
                // got here on a fast machine; that is fine too.
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn tracker_discriminator_is_selectable_per_session() {
        // Smoke test (ROADMAP: tracker in the engine): a session using the
        // SORT-style tracker under realistic detector noise must still
        // reach its result limit, concurrently with an oracle session.
        let engine = Engine::new(EngineConfig {
            workers: 2,
            quantum: 8,
            ..EngineConfig::default()
        });
        let repo = engine.register_repo(truth(20_000, 60), NoiseModel::realistic(), 5);
        let tracked = engine
            .submit(
                QuerySpec::new(repo, ClassId(0), StopCond::results(20))
                    .seed(31)
                    .discriminator(DiscriminatorKind::Tracker { seed: 7 }),
            )
            .unwrap();
        let oracle = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(20)).seed(32))
            .unwrap();
        let tracked = engine.wait(tracked).unwrap();
        let oracle = engine.wait(oracle).unwrap();
        assert_eq!(tracked.status, SessionStatus::Done);
        assert_eq!(oracle.status, SessionStatus::Done);
        assert!(tracked.trace.found() >= 20);
        assert!(oracle.trace.found() >= 20);
    }

    #[test]
    fn report_exposes_final_chunk_stats() {
        let (engine, repo) = small_engine(2);
        let id = engine
            .submit(
                QuerySpec::new(repo, ClassId(0), StopCond::results(10))
                    .seed(3)
                    .chunks(8),
            )
            .unwrap();
        let report = engine.wait(id).unwrap();
        assert_eq!(report.chunk_stats.len(), 8);
        let sampled: u64 = report.chunk_stats.iter().map(|s| s.n).sum();
        assert_eq!(sampled, report.trace.samples());
        assert!(report.chunk_stats.iter().any(|s| s.n1 > 0.0));
    }

    #[test]
    fn persist_stats_absent_without_persistence() {
        let (engine, _) = small_engine(1);
        assert!(engine.persist_stats().is_none());
        assert!(engine.warm_beliefs(RepoId(0), ClassId(0), 16).is_none());
    }

    #[test]
    fn persistence_warm_starts_cache_and_beliefs_across_engines() {
        let dir = std::env::temp_dir().join(format!(
            "exsample-engine-persist-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let persist = exsample_persist::PersistConfig::new(&dir).fingerprint(11);
        let config = EngineConfig {
            workers: 2,
            quantum: 8,
            persist: Some(persist),
            ..EngineConfig::default()
        };

        let engine = Engine::new(config.clone());
        let repo = engine.register_repo(truth(20_000, 60), NoiseModel::none(), 5);
        let spec = QuerySpec::new(repo, ClassId(0), StopCond::results(15))
            .seed(3)
            .warm_start(false);
        let first = engine.wait(engine.submit(spec.clone()).unwrap()).unwrap();
        let invocations = engine.detector_invocations();
        assert!(invocations > 0);
        drop(engine); // flushes the detection log

        let engine = Engine::new(config);
        let repo2 = engine.register_repo(truth(20_000, 60), NoiseModel::none(), 5);
        assert_eq!(repo2, repo);
        let ps = engine.persist_stats().expect("persistence on");
        assert_eq!(ps.records_loaded, invocations);
        assert_eq!(ps.preloaded_frames, invocations);
        assert_eq!(ps.segments_skipped, 0);
        assert_eq!(engine.cache_stats().warm_loads, invocations);
        // Beliefs: the first session's final stats are served bit-for-bit.
        let warm = engine
            .warm_beliefs(repo, ClassId(0), 16)
            .expect("snapshot exists");
        assert_eq!(warm.len(), first.chunk_stats.len());
        for (a, b) in warm.iter().zip(&first.chunk_stats) {
            assert_eq!(a.n1.to_bits(), b.n1.to_bits());
            assert_eq!(a.n, b.n);
        }
        // A cold-belief replay of the same query touches only cached
        // frames: zero detector invocations.
        let replay = engine.wait(engine.submit(spec).unwrap()).unwrap();
        assert_eq!(replay.trace.samples(), first.trace.samples());
        assert_eq!(replay.trace.found(), first.trace.found());
        assert_eq!(engine.detector_invocations(), 0);
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn session_results_are_deterministic_across_engines() {
        let run = || {
            let (engine, repo) = small_engine(4);
            let ids: Vec<SessionId> = (0..4)
                .map(|i| {
                    engine
                        .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(20)).seed(7 + i))
                        .unwrap()
                })
                .collect();
            ids.into_iter()
                .map(|id| {
                    let r = engine.wait(id).unwrap();
                    (
                        r.trace.samples(),
                        r.trace.found(),
                        r.trace
                            .points()
                            .iter()
                            .map(|p| (p.samples, p.found))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
