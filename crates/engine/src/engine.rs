//! The engine: worker threads multiplexing many search sessions.
//!
//! # Architecture
//!
//! ```text
//!  submit ──▶ ┌───────────────────────────────┐
//!  poll   ──▶ │ EngineState (one mutex)       │   work_cv / done_cv
//!  cancel ──▶ │  sessions: SessionId -> Slot  │◀──────────────┐
//!  wait   ──▶ │  scheduler: weighted fair     │               │
//!             └──────────────┬────────────────┘               │
//!                            │ lease (session checked out)    │
//!                 ┌──────────▼──────────┐                     │
//!                 │ worker thread pool  │── step quantum ─────┘
//!                 └──────────┬──────────┘
//!                            │ miss: decode + detect
//!                 ┌──────────▼──────────┐
//!                 │ FrameCache (sharded)│  hit: free, shared
//!                 └─────────────────────┘
//! ```
//!
//! A worker leases the runnable session with the smallest virtual time,
//! *takes the session core out of the slot* (so the state mutex is not
//! held while frames are processed), steps it for up to a quantum of
//! frames, then puts it back and charges the scheduler what the quantum
//! actually cost. Stepping proceeds in detector *batches* (§III-F,
//! [`EngineConfig::batch`] / `QuerySpec::batch`): each batch is drawn
//! from the sampler with no intermediate feedback, its cache misses are
//! resolved by a single detector dispatch issued outside the cache shard
//! locks, and discriminator feedback is replayed in draw order. Per-frame
//! cost is the modelled detector time (`1 / detector_fps`, cache misses
//! only) plus io/decode seconds from the session's own GOP container
//! reader priced by the store's `CostModel`, plus one
//! `CostModel::dispatch_s` overhead per dispatch; cache hits are free,
//! which is precisely the sharing the engine exists to exploit.
//!
//! # Determinism
//!
//! Each session owns its policy, RNG, and discriminator, and is stepped by
//! one worker at a time, so its frame sequence — and therefore its
//! results, for result- or sample-bounded stops — is a pure function of
//! its `QuerySpec`, independent of scheduling interleavings. Detector
//! output is deterministic per `(repo, frame)`, and the cache computes
//! each resident key exactly once, so total detector invocations are also
//! reproducible (given a cache large enough to avoid evictions).
//! Time-bounded stops (`StopCond::max_seconds`) react to *charged*
//! seconds, which depend on which session happens to pay for a shared
//! frame first — those stops are fair but not bit-reproducible.

use crate::cache::{CacheStats, CachedDetections, FrameCache, Lookup, MissGuard};
use crate::obs::EngineObs;
use crate::scheduler::Scheduler;
use crate::service::{
    Diagnostics, RepoInfo, SearchService, ServiceError, ServiceStats, SubmitError,
};
use crate::session::{
    DiscriminatorKind, QuerySpec, RepoId, ResultEvent, SessionCharges, SessionId, SessionReport,
    SessionSnapshot, SessionStatus, TenantBinding, TenantId,
};
use crate::threads::default_threads;
use exsample_colstore::{ColumnarStore, OpenError};
use exsample_core::belief::ChunkStats;
use exsample_core::driver::SearchStepper;
use exsample_core::exsample::ExSample;
use exsample_core::policy::Feedback;
use exsample_core::Chunking;
use exsample_detect::{
    dispatch_batch, Detection, Discriminator, NoiseModel, OracleDiscriminator, SimulatedDetector,
    TrackerDiscriminator,
};
use exsample_obs::{SpanRecord, Stage, TraceId, NO_SESSION};
use exsample_persist::{
    dataset_fingerprint, scan_detections_raw, BeliefStore, DetectionLog, LoadStats, PersistConfig,
    RecordVerdict, RepoCatalog,
};
use exsample_stats::{FxHashMap, Rng64};
use exsample_store::{Container, ContainerWriter, CostModel, DecodeStats};
use exsample_videosim::GroundTruth;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads (defaults to [`default_threads`]).
    pub workers: usize,
    /// Modelled detector throughput; one invocation charges
    /// `1 / detector_fps` seconds (the paper measures ≈ 20 fps).
    pub detector_fps: f64,
    /// Frames granted per scheduler lease. Smaller quanta interleave
    /// sessions more finely; larger quanta amortize locking.
    pub quantum: u32,
    /// Default detector batch size per session (§III-F), overridable per
    /// query via `QuerySpec::batch`. Each batch is drawn from the sampler
    /// with no intermediate feedback and its cache misses are resolved
    /// with a **single** detector dispatch, amortizing
    /// [`CostModel::dispatch_s`]. The effective batch is capped by
    /// `quantum` at each lease. The default of 1 is bit-identical to
    /// per-frame stepping.
    pub batch: u32,
    /// Shared detection cache capacity, in frames.
    pub cache_capacity: usize,
    /// Cache shard count (rounded up to a power of two).
    pub cache_shards: usize,
    /// Keyframe interval of the modelled storage containers.
    pub gop_size: u32,
    /// Prices io/decode work (seeks, GOP walks) in seconds.
    pub cost_model: CostModel,
    /// Durable detection store. When set, the engine preloads persisted
    /// detections into the cache at startup, appends every cache miss to
    /// the detection log (write-behind), and snapshots each finished
    /// session's chunk beliefs for later warm-starts. `None` (the
    /// default) keeps the engine fully in-memory.
    pub persist: Option<PersistConfig>,
    /// Orphan-session garbage collection. Sessions deliberately outlive
    /// connections (so remote clients can reconnect and resume), which
    /// means an abandoned session's event log and trace are otherwise
    /// retained until `forget`. With a TTL set, a *finished* session that
    /// has not been polled, waited on, or forgotten for this long is
    /// reaped as if forgotten; every poll/wait refreshes its liveness,
    /// and `forget` stays immediate. Reaping is piggybacked on engine
    /// activity (API calls and session finalization), so an idle engine
    /// reaps at its next touch. Pick a TTL comfortably above the slowest
    /// client's poll interval. `None` (the default) never reaps.
    pub session_ttl: Option<Duration>,
    /// Record latency histograms and flight-recorder events (on by
    /// default). Instrumentation is observational only — wall-clock
    /// reads and relaxed atomics — so session traces are identical
    /// either way; switching it off removes even that cost, which is
    /// the baseline the `obs_cmp` benchmark measures against. Metrics
    /// are still *registered* when off (with zero readings), so
    /// [`Engine::diagnostics`] keeps a stable shape.
    pub observe: bool,
    /// Record request-scoped span trees for distributed tracing (on by
    /// default, but inert unless [`observe`](Self::observe) is also on).
    /// Each accepted submit opens a trace — deterministically derived
    /// from the session id — and every instrumented stage adds a span to
    /// its causal tree, collectable via
    /// [`SearchService::collect_trace`].
    /// Like all instrumentation this is observational only; search
    /// traces are bit-identical with tracing on or off.
    pub trace: bool,
    /// Capacity of the flight recorder's event ring (most recent events
    /// win). Sized so a typical debugging window — a few thousand
    /// dispatches — stays resident.
    pub flight_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: default_threads(),
            detector_fps: 20.0,
            quantum: 32,
            batch: 1,
            cache_capacity: 1 << 20,
            cache_shards: 64,
            gop_size: 20,
            cost_model: CostModel::default(),
            persist: None,
            session_ttl: None,
            observe: true,
            trace: true,
            flight_capacity: 4096,
        }
    }
}

/// What the durable detection store did at startup and since (see
/// [`Engine::persist_stats`]). All "skipped" counters are benign: stale or
/// damaged data costs recomputation, never correctness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// Detection-log segments whose records were loaded at startup.
    pub segments_loaded: u64,
    /// Segments invalidated at startup (version/fingerprint mismatch or
    /// unrecognizable header).
    pub segments_skipped: u64,
    /// Checksum-valid detection records read at startup.
    pub records_loaded: u64,
    /// Damaged segment tails abandoned at startup (torn write, bit rot).
    pub damaged_tails: u64,
    /// Records actually injected into the cache (≤ `records_loaded`:
    /// duplicates and capacity overflow are declined).
    pub preloaded_frames: u64,
    /// Belief snapshots loaded at startup.
    pub snapshots_loaded: u64,
    /// Belief snapshots invalidated at startup.
    pub snapshots_skipped: u64,
    /// Belief snapshot keys currently resident (loaded + written since).
    pub beliefs_resident: u64,
    /// Detection-log write errors absorbed (the log goes inert after the
    /// first).
    pub log_write_errors: u64,
    /// Belief snapshot write errors absorbed.
    pub snapshot_write_errors: u64,
    /// Frames indexed by the mapped columnar container (0 when columnar
    /// persistence is off or no container exists).
    pub container_frames: u64,
    /// `(repo, chunk)` column groups in the mapped container.
    pub container_chunks: u64,
    /// Cache misses answered from the mapped container instead of the
    /// detector (lazy per-chunk warm starts).
    pub container_hits: u64,
    /// Container bytes actually consulted: header + chunk index + each
    /// touched column group once — the I/O a warm start really paid.
    pub container_bytes_touched: u64,
    /// 1 when a container file existed but was rejected (fingerprint
    /// mismatch or damage) — benign: the engine recomputes.
    pub container_skipped: u64,
    /// Startup log records whose detection decode was skipped (frame
    /// already in the container, or the cache declined the key) — the
    /// streamed-preload savings.
    pub preload_skipped: u64,
}

/// Durable-store handles shared by workers (independent of the state
/// mutex; lock order is always state → persist, or persist alone).
struct PersistShared {
    log: Arc<Mutex<DetectionLog>>,
    beliefs: Mutex<BeliefStore>,
    /// Durable `(name, dataset fingerprint) -> RepoId` assignments, so a
    /// restarted engine resolves re-registered repositories to the same
    /// ids its persisted detections and snapshots were written under.
    catalog: Mutex<RepoCatalog>,
    detections_load: LoadStats,
    preloaded_frames: u64,
    /// The mapped columnar container, when columnar persistence is on and
    /// a valid container exists. Shared (`Arc`) so every worker reads the
    /// same mapping zero-copy.
    container: Option<Arc<ColumnarStore>>,
    /// 1 when a container file existed but was rejected at startup.
    container_skipped: u64,
    /// Startup records whose decode was skipped (see [`PersistStats`]).
    preload_skipped: u64,
    /// Cache misses served from the container instead of the detector.
    container_hits: std::sync::atomic::AtomicU64,
}

/// Errors surfaced by the engine API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The repository id was never registered.
    UnknownRepo(RepoId),
    /// The session id was never submitted.
    UnknownSession(SessionId),
    /// The query spec is structurally invalid.
    InvalidSpec(&'static str),
    /// The session is still running (e.g. `forget` before completion).
    SessionRunning(SessionId),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownRepo(r) => write!(f, "unknown repository {r:?}"),
            EngineError::UnknownSession(s) => write!(f, "unknown session {s:?}"),
            EngineError::InvalidSpec(why) => write!(f, "invalid query spec: {why}"),
            EngineError::SessionRunning(s) => write!(f, "session {s:?} is still running"),
        }
    }
}

impl std::error::Error for EngineError {}

/// A registered repository: ground truth, one deterministic per-class
/// detector bank, and the bytes of its GOP container.
struct RepoData {
    gt: Arc<GroundTruth>,
    detectors: Vec<SimulatedDetector>,
    container: bytes::Bytes,
}

/// A repository slot in the engine state: catalog entry + live data.
struct RepoEntry {
    info: RepoInfo,
    /// Detector parameters the repository was built with. Re-registering
    /// the same identity with different parameters is rejected loudly:
    /// silently serving the original detectors would be wrong detections.
    noise: NoiseModel,
    det_seed: u64,
    data: Arc<RepoData>,
}

/// The per-session state a worker checks out while stepping.
struct SessionCore {
    repo_id: RepoId,
    repo: Arc<RepoData>,
    class: exsample_videosim::ClassId,
    policy: ExSample,
    rng: Rng64,
    stepper: SearchStepper,
    discrim: Box<dyn Discriminator + Send>,
    /// This session's private reader over the repo container (its own GOP
    /// cache and decode tally).
    container: Container,
    /// Reusable buffer for the query-class slice of cached detections.
    class_dets: Vec<Detection>,
    /// Reusable visible-instance scratch for cache-miss detection runs.
    gt_scratch: Vec<exsample_videosim::InstanceId>,
    /// Effective detector batch size (spec override or engine default).
    batch: usize,
}

/// Slot holding a session inside the engine state.
struct Slot {
    /// `Some` while the session still runs; taken by the leasing worker.
    core: Option<Box<SessionCore>>,
    status: SessionStatus,
    cancel: Arc<AtomicBool>,
    events: Vec<ResultEvent>,
    charges: SessionCharges,
    found: u64,
    samples: u64,
    /// Final trace, set at completion/cancellation.
    trace: Option<exsample_core::driver::SearchTrace>,
    /// Final belief statistics, set alongside `trace`.
    chunk_stats: Vec<ChunkStats>,
    /// Position in the engine-wide finish order, set at finalization.
    finish_order: u64,
    /// Last client touch (submit/poll/wait); drives TTL-based reaping of
    /// finished sessions when [`EngineConfig::session_ttl`] is set.
    last_access: Instant,
    /// Owning tenant when the session came through an authenticated
    /// serving layer ([`Engine::submit_tagged`]); `None` for in-process
    /// and anonymous submissions.
    tenant: Option<TenantId>,
}

struct EngineState {
    repos: FxHashMap<RepoId, RepoEntry>,
    /// `(name, dataset fingerprint) -> id`: in-memory identity index
    /// (mirrors the durable catalog when persistence is on).
    repo_ids: FxHashMap<(String, u64), RepoId>,
    /// Next id for catalog-less allocation (kept past the durable
    /// catalog's assignments when persistence is on).
    next_repo: u32,
    /// `poll_wait` callers currently parked on `done_cv`. Workers notify
    /// per event batch only when this is nonzero, so plain `wait()`
    /// callers are not stampeded on every quantum of a streaming-free
    /// engine.
    stream_waiters: usize,
    sessions: FxHashMap<SessionId, Slot>,
    scheduler: Scheduler,
    next_session: u64,
    finished_sessions: u64,
    /// Per-tenant count of *running* sessions (tagged submissions only):
    /// incremented at submit, decremented at finalization. This is the
    /// serving layer's session-quota accounting, kept here so it cannot
    /// drift from the authoritative session table.
    tenant_running: FxHashMap<TenantId, u64>,
    /// Finished sessions awaiting TTL expiry, roughly ordered by their
    /// earliest possible reap time. Entries whose session was forgotten
    /// in the meantime are skipped; entries whose session was touched
    /// since are re-queued at their refreshed deadline. Empty unless
    /// [`EngineConfig::session_ttl`] is set.
    reap_queue: VecDeque<(SessionId, Instant)>,
}

struct Shared {
    state: Mutex<EngineState>,
    /// Wakes workers when sessions become runnable (submit / release).
    work_cv: Condvar,
    /// Wakes `wait()` callers when any session finishes.
    done_cv: Condvar,
    cache: FrameCache,
    config: EngineConfig,
    persist: Option<PersistShared>,
    /// Instrumentation hub (`Arc` so the write-behind closure can hold
    /// it independently of the engine's lifetime).
    obs: Arc<EngineObs>,
    stop: AtomicBool,
}

/// Multi-query search engine front door.
///
/// See the [module docs](self) for the architecture. All methods take
/// `&self`; the engine is internally synchronized and is shut down (stop
/// flag + worker join) on drop.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Start an engine and its worker threads. With
    /// [`EngineConfig::persist`] set, previously persisted detections are
    /// preloaded into the cache and belief snapshots into memory before
    /// any worker runs; stale (fingerprint-mismatched) or damaged data is
    /// skipped and counted in [`Engine::persist_stats`], never an error.
    ///
    /// # Panics
    /// Panics if the configuration is degenerate (zero workers, quantum,
    /// fps, or cache capacity), or if the persist directory cannot be
    /// created or listed at all (directory-level IO failure — damaged
    /// *contents* never panic).
    pub fn new(config: EngineConfig) -> Self {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.quantum > 0, "quantum must be positive");
        assert!(config.batch > 0, "batch must be positive");
        assert!(config.detector_fps > 0.0, "detector_fps must be positive");
        let obs = Arc::new(EngineObs::new(
            config.observe,
            config.trace,
            config.flight_capacity,
        ));
        let mut cache = FrameCache::new(config.cache_capacity, config.cache_shards);
        let persist = config.persist.as_ref().map(|pc| {
            // Columnar pipeline first, before the log writer exists: sweep
            // crashed compaction leftovers, optionally fold the sealed
            // segments into the container, then map whatever container is
            // live. Every failure here is absorbed — the log stays
            // authoritative and the engine recomputes.
            let mut container: Option<Arc<ColumnarStore>> = None;
            let mut container_skipped = 0u64;
            if let Some(cc) = pc.columnar {
                if let Err(e) = exsample_colstore::sweep_orphans(&pc.dir) {
                    eprintln!("exsample-engine: orphan sweep failed: {e}");
                }
                if cc.compact_on_start {
                    let mut span = obs.span_flight(Stage::Compaction, NO_SESSION);
                    span.set_key(cc.chunk_frames);
                    if let Err(e) =
                        exsample_colstore::compact(&pc.dir, pc.fingerprint, cc.chunk_frames)
                    {
                        eprintln!("exsample-engine: startup compaction failed: {e}");
                    }
                }
                match ColumnarStore::open(
                    &exsample_colstore::container_path(&pc.dir),
                    pc.fingerprint,
                ) {
                    Ok(store) => container = Some(Arc::new(store)),
                    Err(OpenError::Missing) => {}
                    Err(e) => {
                        container_skipped = 1;
                        eprintln!("exsample-engine: ignoring columnar container: {e}");
                    }
                }
            }
            // lint: allow(panic_audit, an unusable persist directory at engine startup is fatal by design)
            let beliefs = BeliefStore::open(pc).expect("persist directory unusable");
            // lint: allow(panic_audit, an unusable persist directory at engine startup is fatal by design)
            let mut catalog = RepoCatalog::open(&pc.dir).expect("persist directory unusable");
            // lint: allow(panic_audit, an unusable persist directory at engine startup is fatal by design)
            let log = DetectionLog::open(pc).expect("persist directory unusable");
            let mut preloaded_frames = 0u64;
            let mut preload_skipped = 0u64;
            let mut max_artifact_repo: Option<u32> = container.as_ref().and_then(|c| c.max_repo());
            // Stream the remaining log: peek each record's key first and
            // decode detections only for records the cache will actually
            // take and the container does not already hold — startup work
            // and memory stay bounded by cache capacity, not log size.
            let detections_load = scan_detections_raw(&pc.dir, pc.fingerprint, |raw| {
                max_artifact_repo = Some(max_artifact_repo.map_or(raw.repo, |m| m.max(raw.repo)));
                let key = (RepoId(raw.repo), raw.frame);
                if container
                    .as_ref()
                    .is_some_and(|c| c.covers(raw.repo, raw.frame))
                    || !cache.wants(&key)
                {
                    preload_skipped += 1;
                    return RecordVerdict::Keep;
                }
                match raw.decode() {
                    Ok(rec) => {
                        if cache.preload(key, rec.dets) {
                            preloaded_frames += 1;
                        }
                        RecordVerdict::Keep
                    }
                    Err(_) => RecordVerdict::Abandon,
                }
            })
            // lint: allow(panic_audit, an unusable persist directory at engine startup is fatal by design)
            .expect("persist directory unusable");
            // Safety net for a lost or torn catalog: any id observed in a
            // surviving artifact (preloaded detections, belief snapshots)
            // must never be *newly* assigned, or those artifacts would be
            // silently remapped onto whatever footage registers in that
            // position next. Reserved ids keep meaning their original
            // footage (when the catalog entry survived) or nothing.
            for key in beliefs.keys() {
                max_artifact_repo = Some(max_artifact_repo.map_or(key.0, |m| m.max(key.0)));
            }
            if let Some(max) = max_artifact_repo {
                catalog.reserve_past(max);
            }
            let log = Arc::new(Mutex::new(log));
            let sink = log.clone();
            let wb_obs = obs.clone();
            cache.set_write_behind(Box::new(move |key, dets| {
                // The cache does not know which session published the
                // miss; write-behind events are unowned.
                let mut span = wb_obs.span_flight(Stage::WriteBehind, NO_SESSION);
                span.set_key(key.1);
                sink.lock()
                    .expect("detection log poisoned")
                    .append(key.0 .0, key.1, dets);
            }));
            PersistShared {
                log,
                beliefs: Mutex::new(beliefs),
                catalog: Mutex::new(catalog),
                detections_load,
                preloaded_frames,
                container,
                container_skipped,
                preload_skipped,
                container_hits: std::sync::atomic::AtomicU64::new(0),
            }
        });
        let workers = config.workers;
        let shared = Arc::new(Shared {
            state: Mutex::new(EngineState {
                repos: FxHashMap::default(),
                repo_ids: FxHashMap::default(),
                next_repo: 0,
                stream_waiters: 0,
                sessions: FxHashMap::default(),
                scheduler: Scheduler::new(),
                next_session: 0,
                finished_sessions: 0,
                tenant_running: FxHashMap::default(),
                reap_queue: VecDeque::new(),
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cache,
            config,
            persist,
            obs,
            stop: AtomicBool::new(false),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("exsample-engine-{i}"))
                    .spawn(move || {
                        // On a worker panic, dump the flight recorder —
                        // the last few thousand structured events are
                        // exactly the context a post-mortem needs — then
                        // let the panic proceed unchanged.
                        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            worker_loop(&shared)
                        }));
                        if let Err(panic) = run {
                            eprintln!(
                                "exsample-engine: worker panicked; {}",
                                shared.obs.flight().render()
                            );
                            std::panic::resume_unwind(panic);
                        }
                    })
                    // lint: allow(panic_audit, failing to spawn a worker at engine startup is fatal by design)
                    .expect("spawn engine worker")
            })
            .collect();
        Engine { shared, workers }
    }

    /// Register a repository under a caller-supplied `name`. Builds the
    /// per-class detector bank (the noise stream of class `c` is seeded by
    /// `det_seed + c`, so detection output is a pure function of
    /// `(repo, frame)`) and writes the repository's GOP container, which
    /// sessions decode through.
    ///
    /// # Identity
    ///
    /// The repository's identity is `(name, dataset fingerprint)` — not
    /// its registration order. Registering the same identity twice
    /// returns the same [`RepoId`] (the repository is *not* rebuilt), and
    /// with [`EngineConfig::persist`] set the assignment is durable: a
    /// restarted engine resolves the identity to the id its persisted
    /// detections and belief snapshots were written under, regardless of
    /// the order repositories are re-registered in. Footage that changes
    /// under the same name is a *new* identity and gets a fresh id, so
    /// stale persisted data can never be served for it. The catalog of
    /// registered repositories is browsable via [`Engine::repos`].
    ///
    /// # Panics
    ///
    /// Panics when the identity is already registered with *different*
    /// detector parameters (`noise`, `det_seed`): those are not part of
    /// the identity, and silently serving the original detector bank
    /// would hand the second caller wrong detections. (Across restarts
    /// the analogous protection is [`PersistConfig`]'s fingerprint —
    /// fold `detector_fingerprint(noise, det_seed)` into it so a
    /// detector upgrade invalidates persisted output.)
    pub fn register_repo(
        &self,
        name: &str,
        gt: Arc<GroundTruth>,
        noise: NoiseModel,
        det_seed: u64,
    ) -> RepoId {
        let fingerprint = dataset_fingerprint(&gt);
        let key = (name.to_string(), fingerprint);
        // The mismatch assert must run *after* the state guard drops, or
        // the panic would poison the engine mutex and turn into a
        // double-panic abort when Drop tries to lock it during unwind.
        let same_detectors = |existing: (NoiseModel, u64)| {
            assert!(
                existing == (noise, det_seed),
                "repository {name:?} is already registered with different detector parameters"
            );
        };
        {
            let state = self.lock_state();
            if let Some(&id) = state.repo_ids.get(&key) {
                // lint: allow(panic_audit, repo_ids only holds ids that are keys of repos)
                let existing = (state.repos[&id].noise, state.repos[&id].det_seed);
                drop(state);
                same_detectors(existing);
                return id;
            }
        }
        let detectors = (0..gt.num_classes())
            .map(|c| {
                SimulatedDetector::new(
                    gt.clone(),
                    exsample_videosim::ClassId(c as u16),
                    noise,
                    det_seed.wrapping_add(c as u64),
                )
            })
            .collect();
        // Model the storage layer with an empty payload per frame: decode
        // *cost* (seeks, keyframe walks) is structural, not content-bound.
        let mut writer = ContainerWriter::new(self.shared.config.gop_size);
        for _ in 0..gt.frames {
            writer.push_frame(&[]);
        }
        let frames = gt.frames;
        let classes = gt.num_classes() as u16;
        let repo = Arc::new(RepoData {
            gt,
            detectors,
            container: writer.finish(),
        });
        let mut state = self.lock_state();
        // Raced registration of the same identity: first writer wins, the
        // duplicate build is discarded.
        if let Some(&id) = state.repo_ids.get(&key) {
            // lint: allow(panic_audit, repo_ids only holds ids that are keys of repos)
            let existing = (state.repos[&id].noise, state.repos[&id].det_seed);
            drop(state);
            same_detectors(existing);
            return id;
        }
        // The durable file write happens *after* the state lock drops:
        // workers need this lock between every quantum, and an fsync must
        // never stall them (same discipline as belief snapshots). A crash
        // in the window loses only the assignment record, which the
        // startup `reserve_past` safety net already tolerates.
        let (id, fresh) = match &self.shared.persist {
            Some(p) => {
                let (id, fresh) = p
                    .catalog
                    .lock()
                    .expect("repo catalog poisoned")
                    .assign(name, fingerprint);
                (RepoId(id), fresh)
            }
            None => (RepoId(state.next_repo), false),
        };
        state.next_repo = state.next_repo.max(id.0.saturating_add(1));
        state.repo_ids.insert(key, id);
        state.repos.insert(
            id,
            RepoEntry {
                info: RepoInfo {
                    id,
                    name: name.to_string(),
                    frames,
                    classes,
                    dataset_fingerprint: fingerprint,
                },
                noise,
                det_seed,
                data: repo,
            },
        );
        drop(state);
        if fresh {
            // lint: allow(panic_audit, fresh is only set on the branch that already dereferenced persist)
            let p = self.shared.persist.as_ref().expect("fresh implies persist");
            p.catalog.lock().expect("repo catalog poisoned").persist();
        }
        id
    }

    /// The repository catalog: one [`RepoInfo`] per registered repository,
    /// in id order.
    pub fn repos(&self) -> Vec<RepoInfo> {
        let state = self.lock_state();
        let mut infos: Vec<RepoInfo> = state.repos.values().map(|e| e.info.clone()).collect();
        infos.sort_by_key(|i| i.id);
        infos
    }

    /// Submit a query; the session immediately competes for detector
    /// budget. Returns its id for `poll` / `cancel` / `wait`.
    ///
    /// The spec is validated *here*, not in a worker: a structurally
    /// invalid spec (zero chunks or weight, degenerate prior, non-finite
    /// time budget, unknown repository or class) is rejected before it
    /// can consume any detector budget or panic mid-search.
    pub fn submit(&self, spec: QuerySpec) -> Result<SessionId, EngineError> {
        self.submit_tagged(spec, None)
    }

    /// [`Engine::submit`] with an authenticated tenant binding, used by
    /// the serving layer (`exsample-serve`).
    ///
    /// The binding tags the session for per-tenant accounting (see
    /// [`Engine::tenant_running`]) and multiplies the spec's scheduler
    /// weight by the tenant's tier weight, so tier priority composes
    /// with per-query weights without the client being able to forge
    /// it: the binding comes from the server's auth registry, never
    /// from the wire spec.
    pub fn submit_tagged(
        &self,
        spec: QuerySpec,
        binding: Option<TenantBinding>,
    ) -> Result<SessionId, EngineError> {
        let submit_start = self.shared.obs.enabled().then(Instant::now);
        spec.validate().map_err(EngineError::InvalidSpec)?;
        let mut state = self.lock_state();
        let repo = state
            .repos
            .get(&spec.repo)
            .map(|e| e.data.clone())
            .ok_or(EngineError::UnknownRepo(spec.repo))?;
        if (spec.class.0 as usize) >= repo.gt.num_classes() {
            return Err(EngineError::InvalidSpec("class not present in repository"));
        }
        let frames = repo.gt.frames;
        if frames == 0 {
            return Err(EngineError::InvalidSpec("repository has no frames"));
        }
        let chunks = spec.chunks.min(frames as usize);
        let mut policy = ExSample::new(Chunking::even(frames, chunks), spec.config);
        if spec.warm_start {
            if let Some(p) = &self.shared.persist {
                let beliefs = p.beliefs.lock().expect("belief store poisoned");
                if let Some(stats) = beliefs.get((spec.repo.0, spec.class.0, chunks as u32)) {
                    policy.import_stats(stats);
                }
            }
        }
        let discrim: Box<dyn Discriminator + Send> = match spec.discriminator {
            DiscriminatorKind::Oracle => Box::new(OracleDiscriminator::new()),
            DiscriminatorKind::Tracker { seed } => {
                Box::new(TrackerDiscriminator::new(repo.gt.clone(), seed))
            }
        };
        let core = Box::new(SessionCore {
            repo_id: spec.repo,
            class: spec.class,
            policy,
            rng: Rng64::new(spec.seed),
            stepper: SearchStepper::new(spec.stop, 0.0),
            discrim,
            // lint: allow(panic_audit, the engine built this container spec itself when the repo registered)
            container: Container::open(repo.container.clone()).expect("engine-built container"),
            repo,
            class_dets: Vec::new(),
            gt_scratch: Vec::new(),
            batch: spec.batch.unwrap_or(self.shared.config.batch).max(1) as usize,
        });
        let id = SessionId(state.next_session);
        state.next_session += 1;
        state.sessions.insert(
            id,
            Slot {
                core: Some(core),
                status: SessionStatus::Running,
                cancel: Arc::new(AtomicBool::new(false)),
                events: Vec::new(),
                charges: SessionCharges::default(),
                found: 0,
                samples: 0,
                trace: None,
                chunk_stats: Vec::new(),
                finish_order: 0,
                last_access: Instant::now(),
                tenant: binding.map(|b| b.tenant),
            },
        );
        if let Some(b) = binding {
            *state.tenant_running.entry(b.tenant).or_insert(0) += 1;
        }
        let weight = match binding {
            Some(b) => spec.weight.saturating_mul(b.weight.max(1)),
            None => spec.weight,
        };
        state.scheduler.register(id, weight);
        drop(state);
        if self.shared.obs.enabled() {
            self.shared.obs.sessions_submitted_total.inc();
            // Untagged in-process submits are accounted under tenant 0.
            let tenant = binding.map_or(0, |b| b.tenant.0);
            self.shared
                .obs
                .submits_by_tenant
                .with(&tenant.to_string())
                .inc();
            self.shared
                .obs
                .sessions_active
                .with(&tenant.to_string())
                .add(1);
            let submit_ns = submit_start
                .map(|t| u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            self.shared.obs.trace_submit(id.0, submit_ns);
        }
        self.shared.work_cv.notify_all();
        Ok(id)
    }

    /// Non-blocking progress snapshot. `cursor` selects which result
    /// events to return (pass 0 first, then the returned `next_cursor`);
    /// see [`SessionSnapshot`] for the full cursor contract — in
    /// particular, a cursor at or past the end of the event log returns
    /// an empty snapshot, never an error.
    pub fn poll(&self, id: SessionId, cursor: u64) -> Result<SessionSnapshot, EngineError> {
        self.poll_window(id, cursor, None)
    }

    /// [`Engine::poll`] with a window: at most `window` events are
    /// returned and `next_cursor` advances only past what was returned,
    /// so a slow consumer paces the stream (`None` = unbounded).
    pub fn poll_window(
        &self,
        id: SessionId,
        cursor: u64,
        window: Option<u32>,
    ) -> Result<SessionSnapshot, EngineError> {
        let mut state = self.lock_state();
        let slot = state
            .sessions
            .get_mut(&id)
            .ok_or(EngineError::UnknownSession(id))?;
        slot.last_access = Instant::now();
        Ok(snapshot_slot(slot, cursor, window))
    }

    /// Blocking poll: parks until the session has result events past
    /// `cursor` *or* has finished, then snapshots like
    /// [`Engine::poll_window`]. This is what a streaming server loop
    /// uses — no busy-polling between result batches.
    pub fn poll_wait(
        &self,
        id: SessionId,
        cursor: u64,
        window: Option<u32>,
    ) -> Result<SessionSnapshot, EngineError> {
        let mut state = self.lock_state();
        loop {
            let slot = state
                .sessions
                .get_mut(&id)
                .ok_or(EngineError::UnknownSession(id))?;
            slot.last_access = Instant::now();
            if slot.trace.is_some() || (slot.events.len() as u64) > cursor {
                return Ok(snapshot_slot(slot, cursor, window));
            }
            // Registered under the same lock the worker checks before its
            // per-batch notify, so a wakeup can never be missed.
            state.stream_waiters += 1;
            state = self
                .shared
                .done_cv
                .wait(state)
                .expect("engine state poisoned");
            state.stream_waiters -= 1;
        }
    }

    /// Request cancellation. Takes effect at the session's next frame
    /// boundary; `wait` then returns its partial trace with status
    /// [`SessionStatus::Cancelled`]. Cancelling a finished session is a
    /// no-op.
    pub fn cancel(&self, id: SessionId) -> Result<(), EngineError> {
        let state = self.lock_state();
        let slot = state
            .sessions
            .get(&id)
            .ok_or(EngineError::UnknownSession(id))?;
        slot.cancel.store(true, Ordering::Relaxed);
        drop(state);
        // A worker pass finalizes the cancellation even if the session is
        // currently parked.
        self.shared.work_cv.notify_all();
        Ok(())
    }

    /// Block until the session finishes (or is cancelled) and return its
    /// final report.
    pub fn wait(&self, id: SessionId) -> Result<SessionReport, EngineError> {
        let mut state = self.lock_state();
        loop {
            let slot = state
                .sessions
                .get_mut(&id)
                .ok_or(EngineError::UnknownSession(id))?;
            slot.last_access = Instant::now();
            if let Some(trace) = &slot.trace {
                return Ok(SessionReport {
                    status: slot.status,
                    trace: trace.clone(),
                    charges: slot.charges,
                    finish_order: slot.finish_order,
                    chunk_stats: slot.chunk_stats.clone(),
                });
            }
            // Drop takes `&mut self`, so no `wait` borrow can be alive
            // while the engine shuts down — no stop check is needed here.
            state = self
                .shared
                .done_cv
                .wait(state)
                .expect("engine state poisoned");
        }
    }

    /// Non-blocking [`Engine::wait`]: the final report if the session
    /// has finished, `None` while it still runs. This is what a
    /// readiness-driven server uses — it cannot afford to park a thread
    /// per pending wait.
    pub fn try_wait(&self, id: SessionId) -> Result<Option<SessionReport>, EngineError> {
        let mut state = self.lock_state();
        let slot = state
            .sessions
            .get_mut(&id)
            .ok_or(EngineError::UnknownSession(id))?;
        slot.last_access = Instant::now();
        Ok(slot.trace.as_ref().map(|trace| SessionReport {
            status: slot.status,
            trace: trace.clone(),
            charges: slot.charges,
            finish_order: slot.finish_order,
            chunk_stats: slot.chunk_stats.clone(),
        }))
    }

    /// Number of sessions currently *running* (admitted and not yet
    /// finished or cancelled) — the admission layer's queue-depth
    /// signal.
    pub fn running_sessions(&self) -> usize {
        self.lock_state().scheduler.active_sessions()
    }

    /// Number of running sessions tagged with `tenant` (see
    /// [`Engine::submit_tagged`]). Zero for tenants with nothing
    /// running.
    pub fn tenant_running(&self, tenant: TenantId) -> u64 {
        self.lock_state()
            .tenant_running
            .get(&tenant)
            .copied()
            .unwrap_or(0)
    }

    /// Drop every trace of a *finished* session (its event log, trace,
    /// and ledger), returning the final report one last time.
    ///
    /// Finished sessions are retained indefinitely so late `poll`/`wait`
    /// callers can still read them; a long-lived engine serving an open-
    /// ended query stream should `forget` sessions once their results are
    /// consumed, or resident memory grows with every query ever run.
    pub fn forget(&self, id: SessionId) -> Result<SessionReport, EngineError> {
        let mut state = self.lock_state();
        let slot = state
            .sessions
            .get(&id)
            .ok_or(EngineError::UnknownSession(id))?;
        if slot.trace.is_none() {
            return Err(EngineError::SessionRunning(id));
        }
        // lint: allow(panic_audit, the same key was fetched two lines up under the same lock)
        let slot = state.sessions.remove(&id).expect("present above");
        Ok(SessionReport {
            status: slot.status,
            // lint: allow(panic_audit, trace.is_none() returned SessionRunning above)
            trace: slot.trace.expect("checked above"),
            charges: slot.charges,
            finish_order: slot.finish_order,
            chunk_stats: slot.chunk_stats,
        })
    }

    /// Shared-cache counters (hits, misses, evictions, residency).
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Total detector invocations the engine has paid for — cache misses.
    /// With independent execution this would be the total frame count
    /// across sessions; the difference is what sharing saved.
    pub fn detector_invocations(&self) -> u64 {
        self.shared.cache.stats().misses
    }

    /// Durable-store counters, or `None` when persistence is off.
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.shared.persist.as_ref().map(|p| {
            let beliefs = p.beliefs.lock().expect("belief store poisoned");
            let snapshots = beliefs.load_stats();
            PersistStats {
                segments_loaded: p.detections_load.segments_loaded,
                segments_skipped: p.detections_load.segments_skipped,
                records_loaded: p.detections_load.records_loaded,
                damaged_tails: p.detections_load.damaged_tails,
                preloaded_frames: p.preloaded_frames,
                snapshots_loaded: snapshots.segments_loaded,
                snapshots_skipped: snapshots.segments_skipped,
                beliefs_resident: beliefs.len() as u64,
                snapshot_write_errors: beliefs.write_errors(),
                log_write_errors: p.log.lock().expect("detection log poisoned").write_errors(),
                container_frames: p.container.as_ref().map_or(0, |c| c.frames_indexed()),
                container_chunks: p.container.as_ref().map_or(0, |c| c.group_count() as u64),
                container_hits: p.container_hits.load(Ordering::Relaxed),
                container_bytes_touched: p.container.as_ref().map_or(0, |c| c.bytes_touched()),
                container_skipped: p.container_skipped,
                preload_skipped: p.preload_skipped,
            }
        })
    }

    /// The belief statistics a warm-starting query over
    /// `(repo, class, chunks)` would import right now, if a snapshot
    /// exists. `None` when persistence is off or no prior search over
    /// that key has finished. `chunks` is the *effective* chunk count
    /// (i.e. after clamping to the repository's frame count).
    pub fn warm_beliefs(
        &self,
        repo: RepoId,
        class: exsample_videosim::ClassId,
        chunks: usize,
    ) -> Option<Vec<ChunkStats>> {
        let p = self.shared.persist.as_ref()?;
        let beliefs = p.beliefs.lock().expect("belief store poisoned");
        beliefs
            .get((repo.0, class.0, chunks as u32))
            .map(<[_]>::to_vec)
    }

    /// Aggregate service counters: cache behaviour, durable-store
    /// activity, and resident session count — the per-shard unit a
    /// cluster router sums into fleet-wide statistics.
    pub fn service_stats(&self) -> ServiceStats {
        let live_sessions = {
            let state = self.lock_state();
            state.sessions.len() as u64
        };
        ServiceStats {
            cache: self.cache_stats(),
            persist: self.persist_stats(),
            live_sessions,
        }
    }

    /// The engine's observability snapshot: every registered latency
    /// histogram and counter plus the flight recorder's resident
    /// events. Cheap — atomic loads and one ring copy; no state lock.
    /// With [`EngineConfig::observe`] off, the shape is identical but
    /// every reading is zero.
    pub fn diagnostics(&self) -> Diagnostics {
        let obs = &self.shared.obs;
        Diagnostics {
            histograms: obs.registry().histograms(),
            counters: obs.registry().counters(),
            events: obs.flight().dump(),
        }
    }

    /// The instrumentation hub — other layers (e.g. the wire server)
    /// time their own stages into the same registry and flight
    /// recorder through this.
    pub fn obs(&self) -> &EngineObs {
        &self.shared.obs
    }

    /// This shard's recorded spans for `trace`, as a causal tree rooted
    /// at the session span. Empty when tracing is off (or the trace was
    /// evicted); never an error.
    pub fn collect_trace(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.shared.obs.tracer().collect(trace)
    }

    fn lock_state(&self) -> MutexGuard<'_, EngineState> {
        let mut state = self.shared.state.lock().expect("engine state poisoned");
        // Orphan-session GC piggybacks on every API touch: cheap (a front
        // peek) when nothing is due, and no dedicated timer thread.
        if let Some(ttl) = self.shared.config.session_ttl {
            reap_expired(&mut state, ttl);
        }
        state
    }
}

/// Reap finished sessions whose TTL elapsed without a client touch.
/// Entries are queued at finalization; a session polled or waited on
/// since then is re-queued at its refreshed deadline, and one forgotten
/// in the meantime is simply skipped.
fn reap_expired(state: &mut EngineState, ttl: Duration) {
    let now = Instant::now();
    while let Some(&(id, due)) = state.reap_queue.front() {
        if due > now {
            break;
        }
        state.reap_queue.pop_front();
        let Some(slot) = state.sessions.get(&id) else {
            continue; // forgotten before its TTL ran out
        };
        let deadline = slot.last_access + ttl;
        if deadline <= now {
            state.sessions.remove(&id);
        } else {
            state.reap_queue.push_back((id, deadline));
        }
    }
}

/// Map lifecycle [`EngineError`]s onto the service vocabulary. Submit
/// errors are handled separately (they map onto [`SubmitError`]).
fn service_err(e: EngineError) -> ServiceError {
    match e {
        EngineError::UnknownSession(s) => ServiceError::UnknownSession(s),
        EngineError::SessionRunning(s) => ServiceError::SessionRunning(s),
        // Unreachable from lifecycle calls; surfaced faithfully anyway.
        other => ServiceError::Transport(other.to_string()),
    }
}

/// The in-process implementation of the client-facing API: calls go
/// straight to the engine, no serialization. The remote implementation
/// (`exsample-proto`'s `RemoteClient`) is interchangeable with this one
/// and produces identical session results.
impl SearchService for Engine {
    fn repos(&self) -> Result<Vec<RepoInfo>, ServiceError> {
        Ok(Engine::repos(self))
    }

    fn submit(&self, spec: QuerySpec) -> Result<SessionId, SubmitError> {
        Engine::submit(self, spec).map_err(|e| match e {
            EngineError::UnknownRepo(r) => SubmitError::UnknownRepo(r),
            EngineError::InvalidSpec(why) => SubmitError::InvalidSpec(why.to_string()),
            other => SubmitError::InvalidSpec(other.to_string()),
        })
    }

    fn poll(
        &self,
        id: SessionId,
        cursor: u64,
        window: Option<u32>,
    ) -> Result<SessionSnapshot, ServiceError> {
        Engine::poll_window(self, id, cursor, window).map_err(service_err)
    }

    fn cancel(&self, id: SessionId) -> Result<(), ServiceError> {
        Engine::cancel(self, id).map_err(service_err)
    }

    fn wait(&self, id: SessionId) -> Result<SessionReport, ServiceError> {
        Engine::wait(self, id).map_err(service_err)
    }

    fn forget(&self, id: SessionId) -> Result<SessionReport, ServiceError> {
        Engine::forget(self, id).map_err(service_err)
    }

    fn stats(&self) -> Result<ServiceStats, ServiceError> {
        Ok(Engine::service_stats(self))
    }

    fn diagnostics(&self) -> Result<Diagnostics, ServiceError> {
        Ok(Engine::diagnostics(self))
    }

    fn collect_trace(&self, trace: TraceId) -> Result<Vec<SpanRecord>, ServiceError> {
        Ok(Engine::collect_trace(self, trace))
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        // Workers read `stop` under the state mutex before parking on
        // work_cv. Notifying while holding that mutex closes the lost-
        // wakeup window: either a worker has already parked (the notify
        // reaches it) or it still holds the mutex (we block here until it
        // parks, then our notify reaches it) — it can never re-check the
        // flag before our store became visible.
        {
            let _state = self.lock_state();
            self.shared.work_cv.notify_all();
            self.shared.done_cv.notify_all();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock_state();
        f.debug_struct("Engine")
            .field("workers", &self.workers.len())
            .field("repos", &state.repos.len())
            .field("sessions", &state.sessions.len())
            .field("cache", &self.shared.cache.stats())
            .finish()
    }
}

/// What one quantum of stepping produced (applied under the state lock).
struct QuantumOutcome {
    events: Vec<ResultEvent>,
    delta: SessionCharges,
    finished: bool,
    cancelled: bool,
}

fn worker_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("engine state poisoned");
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        let Some(id) = state.scheduler.lease_next() else {
            state = shared.work_cv.wait(state).expect("engine state poisoned");
            continue;
        };
        // lint: allow(panic_audit, the scheduler only leases ids of registered sessions)
        let slot = state.sessions.get_mut(&id).expect("leased session exists");
        // lint: allow(panic_audit, a leased session's core is parked in its slot between quanta)
        let mut core = slot.core.take().expect("leased session has its core");
        let cancel = slot.cancel.clone();
        drop(state);

        // The lease span covers the session checkout: everything between
        // taking the core and being ready to release the lease. Measured
        // manually (not via guard) because the release itself happens
        // back under the state lock.
        let lease_t0 = shared.obs.enabled().then(Instant::now);
        let outcome = step_quantum(&mut core, shared, &cancel, id);
        if let Some(t0) = lease_t0 {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            shared
                .obs
                .record(Stage::Lease, id.0, ns, outcome.delta.frames);
            shared.obs.frames_total.add(outcome.delta.frames);
        }

        state = shared.state.lock().expect("engine state poisoned");
        // Fairness floor: an all-hit quantum costs ~0 modelled seconds,
        // and a near-zero charge would let a cache-warm session hold
        // every lease until it finishes (wall-clock-starving cost-paying
        // sessions). Floor each release at 0.1% of a fully-missing
        // quantum — negligible for budget split, sufficient for rotation.
        // This is *policy*; correctness (NaN/negative/zero charges) is
        // the scheduler's own validation in `Scheduler::release`. Session
        // ledgers stay exact; only the arbitration sees the floor.
        let floor_s = shared.config.quantum as f64 / shared.config.detector_fps * 1e-3;
        state
            .scheduler
            .release(id, outcome.delta.total_s().max(floor_s));
        let finish_order = state.finished_sessions;
        // On finalization the core is kept out of the slot so the belief
        // snapshot below can read its final statistics.
        let retired = {
            // lint: allow(panic_audit, the session stays registered while its quantum is in flight)
            let slot = state.sessions.get_mut(&id).expect("session exists");
            slot.events.extend_from_slice(&outcome.events);
            slot.charges.detect_s += outcome.delta.detect_s;
            slot.charges.io_s += outcome.delta.io_s;
            slot.charges.dispatch_s += outcome.delta.dispatch_s;
            slot.charges.frames += outcome.delta.frames;
            slot.charges.cache_hits += outcome.delta.cache_hits;
            slot.charges.detector_invocations += outcome.delta.detector_invocations;
            slot.charges.dispatches += outcome.delta.dispatches;
            slot.found = core.stepper.found();
            slot.samples = core.stepper.samples();
            if outcome.finished || outcome.cancelled {
                slot.status = if outcome.cancelled {
                    SessionStatus::Cancelled
                } else {
                    SessionStatus::Done
                };
                slot.trace = Some(core.stepper.clone().finish());
                slot.chunk_stats = core.policy.chunk_stats().to_vec();
                slot.finish_order = finish_order;
                slot.last_access = Instant::now();
                Some(core)
            } else {
                slot.core = Some(core);
                None
            }
        };
        if let Some(core) = retired {
            state.finished_sessions += 1;
            state.scheduler.deactivate(id);
            // Release the tenant's quota slot the moment the session
            // stops running — not at forget/reap, which can be much
            // later (or never) and would wedge the tenant's admission.
            let tenant = state.sessions.get(&id).and_then(|s| s.tenant);
            if let Some(t) = tenant {
                if let Some(n) = state.tenant_running.get_mut(&t) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        state.tenant_running.remove(&t);
                    }
                }
            }
            if shared.obs.enabled() {
                shared.obs.sessions_finished_total.inc();
                shared
                    .obs
                    .sessions_active
                    .with(&tenant.map_or(0, |t| t.0).to_string())
                    .sub(1);
                shared.obs.trace_finish(id.0);
            }
            // The TTL clock starts at finalization; reap opportunistically
            // so a busy engine collects orphans even with no API traffic.
            if let Some(ttl) = shared.config.session_ttl {
                state.reap_queue.push_back((id, Instant::now() + ttl));
                reap_expired(&mut state, ttl);
            }
            // Make the belief snapshot visible (in memory) *before*
            // waiters learn the session finished: a warm_start query
            // submitted the instant `wait` returns must find it. Only the
            // durable file write is deferred past the state lock. The
            // offer is evidence-gated, so a short or cancelled run never
            // clobbers a richer snapshot of the same key.
            let snapshot_key = match &shared.persist {
                Some(persist) if core.stepper.samples() > 0 => {
                    let key = (
                        core.repo_id.0,
                        core.class.0,
                        core.policy.chunking().num_chunks() as u32,
                    );
                    let adopted = persist
                        .beliefs
                        .lock()
                        .expect("belief store poisoned")
                        .offer(key, core.policy.chunk_stats().to_vec());
                    adopted.then_some(key)
                }
                _ => None,
            };
            shared.done_cv.notify_all();
            if let Some(key) = snapshot_key {
                // lint: allow(panic_audit, snapshot_key is only Some when persist was Some above)
                let persist = shared.persist.as_ref().expect("checked above");
                drop(state);
                {
                    let mut span = shared.obs.span_flight(Stage::BeliefSnapshot, id.0);
                    span.set_key(key.2 as u64);
                    persist
                        .beliefs
                        .lock()
                        .expect("belief store poisoned")
                        .persist_key(key);
                }
                state = shared.state.lock().expect("engine state poisoned");
            }
        } else {
            if !outcome.events.is_empty() && state.stream_waiters > 0 {
                // Streaming consumers (`poll_wait`) park on done_cv until
                // events land; wake them per batch, not just at finish —
                // but only when someone is actually streaming, so plain
                // `wait` callers are not stampeded every quantum.
                shared.done_cv.notify_all();
            }
            // The session is runnable again; a parked worker may want it.
            shared.work_cv.notify_one();
        }
    }
}

/// How one drawn frame's detections were obtained (see
/// [`resolve_batch`]).
struct ResolvedFrame {
    dets: CachedDetections,
    /// io/decode seconds this session paid (misses only).
    io_s: f64,
    /// This session ran the detector for the frame (a cache miss).
    miss: bool,
    /// Recording this frame also bills one dispatch overhead
    /// ([`CostModel::dispatch_s`]) — set on the first miss of each
    /// dispatch.
    dispatch: bool,
}

/// Resolve detections for one drawn batch against the shared cache:
///
/// 1. **Reserve** every key ([`FrameCache::begin`]) — hits are served
///    immediately, misses become this session's reservations, keys other
///    sessions are computing become waits.
/// 2. **Dispatch once**: decode every missed frame through the session's
///    own container reader, run them through the repository's detector
///    bank as a single batched dispatch, and publish each result — all
///    with **no cache shard lock held**, so detection never serializes
///    unrelated sessions on a shard.
/// 3. **Wait** for the in-flight keys, strictly *after* our own fills —
///    two sessions batching overlapping frames therefore can never
///    deadlock on each other. An abandoned in-flight entry (its computer
///    panicked) is recomputed here as its own single-frame dispatch.
///
/// `resolved` is filled positionally (one entry per drawn frame).
fn resolve_batch(
    core: &mut SessionCore,
    shared: &Shared,
    drawn: &[u64],
    resolved: &mut Vec<Option<ResolvedFrame>>,
    sid: SessionId,
) {
    let cost_model = shared.config.cost_model;
    resolved.clear();
    resolved.resize_with(drawn.len(), || None);
    let mut reservations: Vec<(usize, MissGuard<'_>)> = Vec::new();
    let mut waits = Vec::new();
    for (k, &frame) in drawn.iter().enumerate() {
        match shared.cache.begin((core.repo_id, frame)) {
            Lookup::Hit(dets) => {
                // lint: allow(panic_audit, k enumerates drawn and resolved is sized to drawn.len())
                resolved[k] = Some(ResolvedFrame {
                    dets,
                    io_s: 0.0,
                    miss: false,
                    dispatch: false,
                });
            }
            Lookup::Pending(wait) => waits.push((k, wait)),
            Lookup::Miss(guard) => reservations.push((k, guard)),
        }
    }
    // Lazy warm start: before paying any detector time, let the mapped
    // columnar container answer reservations. Only the touched chunks'
    // columns are decoded (and only once per chunk, cached); a served
    // frame is a warm hit — no miss, no io bill, no write-behind.
    if !reservations.is_empty() {
        if let Some(p) = shared.persist.as_ref() {
            if let Some(store) = p.container.as_ref() {
                let mut still = Vec::with_capacity(reservations.len());
                for (k, guard) in reservations {
                    // lint: allow(panic_audit, k enumerates drawn and resolved is sized to drawn.len())
                    match store.get(core.repo_id.0, drawn[k]) {
                        Some(dets) => {
                            p.container_hits.fetch_add(1, Ordering::Relaxed);
                            // lint: allow(panic_audit, k enumerates drawn and resolved is sized to drawn.len())
                            resolved[k] = Some(ResolvedFrame {
                                dets: guard.fill_warm(dets),
                                io_s: 0.0,
                                miss: false,
                                dispatch: false,
                            });
                        }
                        None => still.push((k, guard)),
                    }
                }
                reservations = still;
            }
        }
    }
    if !reservations.is_empty() {
        // One dispatch for every miss in the batch: decode, then detect
        // back-to-back, then publish. The first miss carries the
        // dispatch-overhead bill. The span covers all three phases; its
        // event key is the miss count, so summing dispatch-event keys
        // reproduces the engine's detector-invocation total.
        let mut span = shared.obs.span_flight(Stage::Dispatch, sid.0);
        span.set_key(reservations.len() as u64);
        // lint: allow(panic_audit, k enumerates drawn and resolved is sized to drawn.len())
        let miss_frames: Vec<u64> = reservations.iter().map(|(k, _)| drawn[*k]).collect();
        let mut io = Vec::with_capacity(miss_frames.len());
        for &frame in &miss_frames {
            let before = *core.container.stats();
            core.container
                .read_frame(frame)
                // lint: allow(panic_audit, the container was validated at registration; torn storage mid-run is fatal by design)
                .expect("engine-built container read");
            let after = *core.container.stats();
            io.push(cost_model.seconds(&decode_delta(&before, &after)));
        }
        let banks = dispatch_batch(&core.repo.detectors, &miss_frames, &mut core.gt_scratch);
        let mut first = true;
        for (((k, guard), dets), io_s) in reservations.into_iter().zip(banks).zip(io) {
            let value = guard.fill(dets);
            // lint: allow(panic_audit, k enumerates drawn and resolved is sized to drawn.len())
            resolved[k] = Some(ResolvedFrame {
                dets: value,
                io_s,
                miss: true,
                dispatch: std::mem::take(&mut first),
            });
        }
    }
    for (k, wait) in waits {
        // lint: allow(panic_audit, k enumerates drawn and resolved is sized to drawn.len())
        let frame = drawn[k];
        // Covers this key's whole resolution: the actual park on the
        // computing session plus (rarely) the recompute of an abandoned
        // entry. Key is the frame index waited on.
        let mut wait_span = shared.obs.span_flight(Stage::CacheWait, sid.0);
        wait_span.set_key(frame);
        let mut wait = Some(wait);
        // lint: allow(panic_audit, k enumerates drawn and resolved is sized to drawn.len())
        resolved[k] = Some(loop {
            let pending = match wait.take() {
                Some(w) => w,
                None => match shared.cache.begin((core.repo_id, frame)) {
                    Lookup::Hit(dets) => {
                        break ResolvedFrame {
                            dets,
                            io_s: 0.0,
                            miss: false,
                            dispatch: false,
                        }
                    }
                    Lookup::Pending(w) => w,
                    Lookup::Miss(guard) => {
                        // The session computing this frame died; serve it
                        // from the columnar container if possible, else
                        // recompute it as a single-frame dispatch.
                        if let Some(p) = shared.persist.as_ref() {
                            if let Some(store) = p.container.as_ref() {
                                if let Some(dets) = store.get(core.repo_id.0, frame) {
                                    p.container_hits.fetch_add(1, Ordering::Relaxed);
                                    break ResolvedFrame {
                                        dets: guard.fill_warm(dets),
                                        io_s: 0.0,
                                        miss: false,
                                        dispatch: false,
                                    };
                                }
                            }
                        }
                        // A real detector invocation: record it as its
                        // own single-frame dispatch so dispatch events
                        // still account for every invocation.
                        let mut dspan = shared.obs.span_flight(Stage::Dispatch, sid.0);
                        dspan.set_key(1);
                        let before = *core.container.stats();
                        core.container
                            .read_frame(frame)
                            // lint: allow(panic_audit, the container was validated at registration; torn storage mid-run is fatal by design)
                            .expect("engine-built container read");
                        let after = *core.container.stats();
                        let io_s = cost_model.seconds(&decode_delta(&before, &after));
                        let dets = exsample_detect::detect_frame(
                            &core.repo.detectors,
                            frame,
                            &mut core.gt_scratch,
                        );
                        break ResolvedFrame {
                            dets: guard.fill(dets),
                            io_s,
                            miss: true,
                            dispatch: true,
                        };
                    }
                },
            };
            if let Some(dets) = pending.wait() {
                break ResolvedFrame {
                    dets,
                    io_s: 0.0,
                    miss: false,
                    dispatch: false,
                };
            }
        });
    }
}

/// Step one leased session for up to `quantum` frames, in detector
/// batches of the session's batch size (§III-F). Runs without the state
/// lock; touches only the session's own core plus the shared cache.
///
/// Per batch: draw up to `batch` frames from the sampler with no
/// intermediate feedback, resolve their detections ([`resolve_batch`]:
/// one dispatch for the misses, outside the cache shard locks), then
/// replay discriminator feedback **in draw order** — so a session's
/// frame sequence and results are a pure function of its spec and batch
/// size, independent of worker interleavings and of the hit/miss
/// partition. With `batch = 1` the stepping, charging, and RNG
/// consumption are bit-identical to per-frame execution.
///
/// When the stop condition fires mid-batch, the remaining drawn frames
/// are discarded unrecorded — the speculative tail real batched
/// inference wastes. Their detections stay in the shared cache (later
/// sessions hit them for free) but are *not* billed to this session's
/// ledger: the clock stops where the search stopped.
fn step_quantum(
    core: &mut SessionCore,
    shared: &Shared,
    cancel: &AtomicBool,
    sid: SessionId,
) -> QuantumOutcome {
    let detect_frame_s = 1.0 / shared.config.detector_fps;
    let cost_model = shared.config.cost_model;
    let mut out = QuantumOutcome {
        events: Vec::new(),
        delta: SessionCharges::default(),
        finished: false,
        cancelled: false,
    };
    let quantum = shared.config.quantum as usize;
    let mut drawn: Vec<u64> = Vec::new();
    let mut resolved: Vec<Option<ResolvedFrame>> = Vec::new();
    let mut stepped = 0usize;
    'quantum: while stepped < quantum {
        if cancel.load(Ordering::Relaxed) {
            out.cancelled = true;
            break;
        }
        let want = core.batch.min(quantum - stepped);
        core.stepper
            .next_batch(&mut core.policy, &mut core.rng, want, &mut drawn);
        if drawn.is_empty() {
            out.finished = true;
            break;
        }
        {
            // Histogram-only span (no flight event): at B=1 this fires
            // per frame, which would churn the event ring for no
            // diagnostic value.
            let mut span = shared.obs.span(Stage::BatchAssembly, sid.0);
            span.set_key(drawn.len() as u64);
            resolve_batch(core, shared, &drawn, &mut resolved, sid);
        }
        for (k, &frame) in drawn.iter().enumerate() {
            // lint: allow(panic_audit, resolve_batch's postcondition is that every drawn slot is Some)
            let r = resolved[k].take().expect("resolve_batch fills every slot");
            core.class_dets.clear();
            core.class_dets
                .extend(r.dets.iter().filter(|d| d.class == core.class).cloned());
            let obs = core.discrim.observe(frame, &core.class_dets);
            let fb = Feedback::new(obs.new_results, obs.matched_once);

            out.delta.frames += 1;
            let frame_cost = if r.miss {
                out.delta.detector_invocations += 1;
                out.delta.detect_s += detect_frame_s;
                out.delta.io_s += r.io_s;
                let mut cost = detect_frame_s + r.io_s;
                if r.dispatch {
                    out.delta.dispatches += 1;
                    out.delta.dispatch_s += cost_model.dispatch_s;
                    cost += cost_model.dispatch_s;
                }
                cost
            } else {
                out.delta.cache_hits += 1;
                0.0
            };
            // The session clock lives in the stepper (record sets it to
            // the absolute value we pass), so there is a single source of
            // truth.
            let now = core.stepper.seconds() + frame_cost;
            let done = core.stepper.record(&mut core.policy, frame, fb, now);
            if fb.new_results > 0 {
                out.events.push(ResultEvent {
                    frame,
                    new_results: fb.new_results,
                    samples: core.stepper.samples(),
                    seconds: now,
                });
            }
            stepped += 1;
            if done {
                out.finished = true;
                break 'quantum;
            }
        }
    }
    out
}

/// Snapshot a slot's observable state from `cursor`, returning at most
/// `window` events (the [`SessionSnapshot`] cursor contract: a cursor at
/// or past the end of the log yields empty events, clamped, never OOB).
fn snapshot_slot(slot: &Slot, cursor: u64, window: Option<u32>) -> SessionSnapshot {
    let len = slot.events.len();
    let start = cursor.min(len as u64) as usize;
    let end = match window {
        Some(w) => start.saturating_add(w as usize).min(len),
        None => len,
    };
    SessionSnapshot {
        status: slot.status,
        found: slot.found,
        samples: slot.samples,
        charges: slot.charges,
        // lint: allow(panic_audit, start and end are both clamped to events.len() just above)
        events: slot.events[start..end].to_vec(),
        next_cursor: end as u64,
    }
}

/// Component-wise `after - before` of two decode tallies.
fn decode_delta(before: &DecodeStats, after: &DecodeStats) -> DecodeStats {
    DecodeStats {
        seeks: after.seeks - before.seeks,
        gops_fetched: after.gops_fetched - before.gops_fetched,
        frames_decoded: after.frames_decoded - before.frames_decoded,
        frames_returned: after.frames_returned - before.frames_returned,
        bytes_fetched: after.bytes_fetched - before.bytes_fetched,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_core::driver::StopCond;
    use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, SkewSpec};

    fn truth(frames: u64, instances: usize) -> Arc<GroundTruth> {
        Arc::new(
            DatasetSpec::single_class(
                frames,
                ClassSpec::new(
                    "car",
                    instances,
                    200.0,
                    SkewSpec::CentralNormal { frac95: 0.2 },
                ),
            )
            .generate(17),
        )
    }

    fn small_engine(workers: usize) -> (Engine, RepoId) {
        let engine = Engine::new(EngineConfig {
            workers,
            quantum: 8,
            ..EngineConfig::default()
        });
        let repo = engine.register_repo("test-repo", truth(20_000, 60), NoiseModel::none(), 5);
        (engine, repo)
    }

    #[test]
    fn single_session_reaches_result_limit() {
        let (engine, repo) = small_engine(2);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(10)).seed(3))
            .unwrap();
        let report = engine.wait(id).unwrap();
        assert_eq!(report.status, SessionStatus::Done);
        assert!(report.trace.found() >= 10);
        assert!(report.charges.frames > 0);
        assert!(report.charges.detector_invocations > 0);
        assert!(report.charges.total_s() > 0.0);
        // Engine seconds equal the charged ledger.
        assert!((report.trace.seconds() - report.charges.total_s()).abs() < 1e-9);
    }

    #[test]
    fn tenant_tagged_submits_are_counted_and_released() {
        let (engine, repo) = small_engine(2);
        let t = TenantId(7);
        let binding = Some(TenantBinding {
            tenant: t,
            weight: 4,
        });
        let a = engine
            .submit_tagged(
                QuerySpec::new(repo, ClassId(0), StopCond::results(5)).seed(1),
                binding,
            )
            .unwrap();
        let b = engine
            .submit_tagged(
                QuerySpec::new(repo, ClassId(0), StopCond::results(5)).seed(2),
                binding,
            )
            .unwrap();
        // Untagged sessions never touch tenant accounting.
        let c = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(5)).seed(3))
            .unwrap();
        assert!(engine.tenant_running(t) <= 2);
        assert_eq!(engine.tenant_running(TenantId(8)), 0);
        for id in [a, b, c] {
            engine.wait(id).unwrap();
        }
        // Quota slots release at finalization, not at forget.
        assert_eq!(engine.tenant_running(t), 0);
        assert_eq!(engine.forget(a).unwrap().status, SessionStatus::Done);
    }

    #[test]
    fn try_wait_is_none_until_finished() {
        let (engine, repo) = small_engine(2);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(5)).seed(9))
            .unwrap();
        // Running or finished, try_wait never blocks and never errors on
        // a live session.
        let early = engine.try_wait(id).unwrap();
        let report = engine.wait(id).unwrap();
        let late = engine.try_wait(id).unwrap().expect("finished");
        assert_eq!(late.trace, report.trace);
        if let Some(early) = early {
            assert_eq!(early.trace, report.trace);
        }
        assert!(engine.try_wait(SessionId(999)).is_err());
    }

    #[test]
    fn poll_streams_events_incrementally() {
        let (engine, repo) = small_engine(2);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(15)).seed(4))
            .unwrap();
        let mut cursor = 0;
        let mut streamed = 0u64;
        loop {
            let snap = engine.poll(id, cursor).unwrap();
            streamed += snap
                .events
                .iter()
                .map(|e| e.new_results as u64)
                .sum::<u64>();
            cursor = snap.next_cursor;
            if snap.status != SessionStatus::Running {
                break;
            }
            std::thread::yield_now();
        }
        let report = engine.wait(id).unwrap();
        assert_eq!(streamed, report.trace.found());
        // Events are monotone in samples and their results sum to found.
        let snap = engine.poll(id, 0).unwrap();
        for w in snap.events.windows(2) {
            assert!(w[0].samples < w[1].samples);
            assert!(w[0].seconds <= w[1].seconds);
        }
    }

    #[test]
    fn cancel_preserves_partial_trace() {
        // Big, nearly-empty repository: the session cannot exhaust or
        // finish before the cancel lands.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            quantum: 8,
            ..EngineConfig::default()
        });
        let repo = engine.register_repo("big-repo", truth(500_000, 2), NoiseModel::none(), 5);
        // Unreachable target: only cancellation (or exhaustion) ends it.
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(1_000_000)).seed(5))
            .unwrap();
        // Let it make some progress, then cancel.
        loop {
            let snap = engine.poll(id, 0).unwrap();
            if snap.samples > 100 || snap.status != SessionStatus::Running {
                break;
            }
            std::thread::yield_now();
        }
        engine.cancel(id).unwrap();
        let report = engine.wait(id).unwrap();
        assert_eq!(report.status, SessionStatus::Cancelled);
        assert!(report.trace.samples() > 0);
        // Idempotent.
        engine.cancel(id).unwrap();
        assert_eq!(engine.wait(id).unwrap().status, SessionStatus::Cancelled);
    }

    #[test]
    fn overlapping_sessions_share_detections() {
        // Rare objects and a near-full-recall target force each session to
        // sweep a large share of the hot region, so the sessions' sample
        // sets overlap heavily.
        let engine = Engine::new(EngineConfig {
            workers: 3,
            quantum: 8,
            ..EngineConfig::default()
        });
        let gt = Arc::new(
            DatasetSpec::single_class(
                20_000,
                ClassSpec::new("car", 40, 40.0, SkewSpec::CentralNormal { frac95: 0.15 }),
            )
            .generate(17),
        );
        let repo = engine.register_repo("overlap-repo", gt, NoiseModel::none(), 5);
        let ids: Vec<SessionId> = (0..4)
            .map(|i| {
                engine
                    .submit(
                        QuerySpec::new(repo, ClassId(0), StopCond::results(30))
                            .seed(100 + i)
                            .chunks(8),
                    )
                    .unwrap()
            })
            .collect();
        let mut total_frames = 0;
        for id in ids {
            let report = engine.wait(id).unwrap();
            assert_eq!(report.status, SessionStatus::Done);
            assert!(report.trace.found() >= 30);
            total_frames += report.charges.frames;
        }
        let stats = engine.cache_stats();
        assert!(
            stats.hits > 0,
            "overlapping sessions produced no cache hits"
        );
        assert_eq!(stats.hits + stats.misses, total_frames);
        assert!(engine.detector_invocations() < total_frames);
    }

    #[test]
    fn exhaustion_finishes_session() {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            ..EngineConfig::default()
        });
        let repo = engine.register_repo("tiny-repo", truth(500, 2), NoiseModel::none(), 6);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(1_000)).seed(7))
            .unwrap();
        let report = engine.wait(id).unwrap();
        assert_eq!(report.status, SessionStatus::Done);
        assert!(report.trace.exhausted());
        assert_eq!(report.trace.samples(), 500);
    }

    #[test]
    fn api_errors() {
        let (engine, repo) = small_engine(1);
        assert_eq!(
            engine.submit(QuerySpec::new(RepoId(99), ClassId(0), StopCond::results(1))),
            Err(EngineError::UnknownRepo(RepoId(99)))
        );
        assert_eq!(
            engine.submit(QuerySpec::new(repo, ClassId(9), StopCond::results(1))),
            Err(EngineError::InvalidSpec("class not present in repository"))
        );
        assert_eq!(
            engine.submit(QuerySpec::new(repo, ClassId(0), StopCond::results(1)).weight(0)),
            Err(EngineError::InvalidSpec("weight must be positive"))
        );
        assert_eq!(
            engine.poll(SessionId(42), 0).unwrap_err(),
            EngineError::UnknownSession(SessionId(42))
        );
        assert_eq!(
            engine.wait(SessionId(42)).unwrap_err(),
            EngineError::UnknownSession(SessionId(42))
        );
        assert!(engine.cancel(SessionId(42)).is_err());
    }

    #[test]
    fn priority_weights_shift_detector_budget() {
        // One worker, equal sample budgets: the weight-4 session receives
        // 4/5 of the detector grants while both run, so it must reach its
        // budget — and finalize — strictly before the weight-1 session.
        // finish_order is assigned under the state lock, so this is
        // race-free.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            quantum: 4,
            ..EngineConfig::default()
        });
        let repo = engine.register_repo("priority-repo", truth(50_000, 40), NoiseModel::none(), 8);
        let heavy = engine
            .submit(
                QuerySpec::new(repo, ClassId(0), StopCond::samples(2_000))
                    .seed(1)
                    .weight(4),
            )
            .unwrap();
        let light = engine
            .submit(
                QuerySpec::new(repo, ClassId(0), StopCond::samples(2_000))
                    .seed(2)
                    .weight(1),
            )
            .unwrap();
        let heavy_report = engine.wait(heavy).unwrap();
        let light_report = engine.wait(light).unwrap();
        assert_eq!(heavy_report.trace.samples(), 2_000);
        assert_eq!(light_report.trace.samples(), 2_000);
        assert!(
            heavy_report.finish_order < light_report.finish_order,
            "weight-4 session finished after weight-1 ({} vs {})",
            heavy_report.finish_order,
            light_report.finish_order
        );
    }

    #[test]
    fn forget_releases_finished_sessions_only() {
        let (engine, repo) = small_engine(2);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(5)).seed(21))
            .unwrap();
        let report = engine.wait(id).unwrap();
        let forgotten = engine.forget(id).unwrap();
        assert_eq!(forgotten.trace, report.trace);
        assert_eq!(forgotten.charges, report.charges);
        // Gone: every later access errors.
        assert_eq!(
            engine.poll(id, 0).unwrap_err(),
            EngineError::UnknownSession(id)
        );
        assert_eq!(
            engine.forget(id).unwrap_err(),
            EngineError::UnknownSession(id)
        );
        // A running session cannot be forgotten.
        let busy = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(1_000_000)).seed(22))
            .unwrap();
        match engine.forget(busy) {
            Err(EngineError::SessionRunning(_)) => {}
            Ok(_) => {
                // It may legitimately have finished (exhaustion) before we
                // got here on a fast machine; that is fine too.
            }
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn tracker_discriminator_is_selectable_per_session() {
        // Smoke test (ROADMAP: tracker in the engine): a session using the
        // SORT-style tracker under realistic detector noise must still
        // reach its result limit, concurrently with an oracle session.
        let engine = Engine::new(EngineConfig {
            workers: 2,
            quantum: 8,
            ..EngineConfig::default()
        });
        let repo =
            engine.register_repo("noisy-repo", truth(20_000, 60), NoiseModel::realistic(), 5);
        let tracked = engine
            .submit(
                QuerySpec::new(repo, ClassId(0), StopCond::results(20))
                    .seed(31)
                    .discriminator(DiscriminatorKind::Tracker { seed: 7 }),
            )
            .unwrap();
        let oracle = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(20)).seed(32))
            .unwrap();
        let tracked = engine.wait(tracked).unwrap();
        let oracle = engine.wait(oracle).unwrap();
        assert_eq!(tracked.status, SessionStatus::Done);
        assert_eq!(oracle.status, SessionStatus::Done);
        assert!(tracked.trace.found() >= 20);
        assert!(oracle.trace.found() >= 20);
    }

    #[test]
    fn report_exposes_final_chunk_stats() {
        let (engine, repo) = small_engine(2);
        let id = engine
            .submit(
                QuerySpec::new(repo, ClassId(0), StopCond::results(10))
                    .seed(3)
                    .chunks(8),
            )
            .unwrap();
        let report = engine.wait(id).unwrap();
        assert_eq!(report.chunk_stats.len(), 8);
        let sampled: u64 = report.chunk_stats.iter().map(|s| s.n).sum();
        assert_eq!(sampled, report.trace.samples());
        assert!(report.chunk_stats.iter().any(|s| s.n1 > 0.0));
    }

    #[test]
    fn persist_stats_absent_without_persistence() {
        let (engine, _) = small_engine(1);
        assert!(engine.persist_stats().is_none());
        assert!(engine.warm_beliefs(RepoId(0), ClassId(0), 16).is_none());
    }

    #[test]
    fn persistence_warm_starts_cache_and_beliefs_across_engines() {
        let dir = std::env::temp_dir().join(format!(
            "exsample-engine-persist-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let persist = exsample_persist::PersistConfig::new(&dir).fingerprint(11);
        let config = EngineConfig {
            workers: 2,
            quantum: 8,
            persist: Some(persist),
            ..EngineConfig::default()
        };

        let engine = Engine::new(config.clone());
        let repo = engine.register_repo("persist-repo", truth(20_000, 60), NoiseModel::none(), 5);
        let spec = QuerySpec::new(repo, ClassId(0), StopCond::results(15))
            .seed(3)
            .warm_start(false);
        let first = engine.wait(engine.submit(spec.clone()).unwrap()).unwrap();
        let invocations = engine.detector_invocations();
        assert!(invocations > 0);
        drop(engine); // flushes the detection log

        let engine = Engine::new(config);
        let repo2 = engine.register_repo("persist-repo", truth(20_000, 60), NoiseModel::none(), 5);
        assert_eq!(repo2, repo);
        let ps = engine.persist_stats().expect("persistence on");
        assert_eq!(ps.records_loaded, invocations);
        assert_eq!(ps.preloaded_frames, invocations);
        assert_eq!(ps.segments_skipped, 0);
        assert_eq!(engine.cache_stats().warm_loads, invocations);
        // Beliefs: the first session's final stats are served bit-for-bit.
        let warm = engine
            .warm_beliefs(repo, ClassId(0), 16)
            .expect("snapshot exists");
        assert_eq!(warm.len(), first.chunk_stats.len());
        for (a, b) in warm.iter().zip(&first.chunk_stats) {
            assert_eq!(a.n1.to_bits(), b.n1.to_bits());
            assert_eq!(a.n, b.n);
        }
        // A cold-belief replay of the same query touches only cached
        // frames: zero detector invocations.
        let replay = engine.wait(engine.submit(spec).unwrap()).unwrap();
        assert_eq!(replay.trace.samples(), first.trace.samples());
        assert_eq!(replay.trace.found(), first.trace.found());
        assert_eq!(engine.detector_invocations(), 0);
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repo_catalog_lists_and_deduplicates_registrations() {
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let gt_a = truth(5_000, 10);
        let gt_b = truth(7_000, 12);
        let a = engine.register_repo("cam-north", gt_a.clone(), NoiseModel::none(), 1);
        let b = engine.register_repo("cam-south", gt_b, NoiseModel::none(), 1);
        assert_ne!(a, b);
        // Same identity + same detector parameters → same id, no
        // rebuild, no new catalog row.
        assert_eq!(
            engine.register_repo("cam-north", gt_a.clone(), NoiseModel::none(), 1),
            a
        );
        let infos = engine.repos();
        assert_eq!(infos.len(), 2);
        assert_eq!(infos[0].id, a);
        assert_eq!(infos[0].name, "cam-north");
        assert_eq!(infos[0].frames, 5_000);
        assert_eq!(infos[0].classes, 1);
        assert_eq!(infos[1].id, b);
        assert_eq!(infos[1].name, "cam-south");
        // Same name, different footage → different identity, fresh id.
        let a2 = engine.register_repo("cam-north", truth(5_000, 11), NoiseModel::none(), 1);
        assert_ne!(a2, a);
        assert_eq!(engine.repos().len(), 3);
    }

    #[test]
    #[should_panic(expected = "different detector parameters")]
    fn re_registering_with_different_detector_parameters_panics() {
        // The detector bank is built once per identity; pretending the
        // second caller's parameters took effect would silently serve it
        // wrong detections, so the mismatch is a loud error instead.
        let engine = Engine::new(EngineConfig {
            workers: 1,
            ..EngineConfig::default()
        });
        let gt = truth(2_000, 5);
        engine.register_repo("cam", gt.clone(), NoiseModel::none(), 1);
        engine.register_repo("cam", gt, NoiseModel::realistic(), 1);
    }

    #[test]
    fn repo_ids_are_stable_across_restarts_despite_reordering() {
        let dir = std::env::temp_dir().join(format!(
            "exsample-engine-repo-id-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let persist = exsample_persist::PersistConfig::new(&dir).fingerprint(13);
        let config = EngineConfig {
            workers: 2,
            quantum: 8,
            persist: Some(persist),
            ..EngineConfig::default()
        };
        let gt_a = truth(6_000, 20);
        let gt_b = Arc::new(
            DatasetSpec::single_class(
                9_000,
                ClassSpec::new("car", 30, 80.0, SkewSpec::CentralNormal { frac95: 0.3 }),
            )
            .generate(99),
        );

        let engine = Engine::new(config.clone());
        let a = engine.register_repo("cam-a", gt_a.clone(), NoiseModel::none(), 5);
        let b = engine.register_repo("cam-b", gt_b.clone(), NoiseModel::none(), 5);
        let spec = QuerySpec::new(b, ClassId(0), StopCond::results(8))
            .seed(3)
            .warm_start(false);
        let first = engine.wait(engine.submit(spec.clone()).unwrap()).unwrap();
        let invocations = engine.detector_invocations();
        assert!(invocations > 0);
        drop(engine);

        // Restart, registering in the *opposite* order: identities — not
        // registration order — decide the ids, so persisted detections
        // and beliefs keep meaning the footage they were computed from.
        let engine = Engine::new(config);
        let b2 = engine.register_repo("cam-b", gt_b, NoiseModel::none(), 5);
        let a2 = engine.register_repo("cam-a", gt_a, NoiseModel::none(), 5);
        assert_eq!((a2, b2), (a, b));
        assert!(engine.warm_beliefs(b, ClassId(0), 16).is_some());
        assert!(engine.warm_beliefs(a, ClassId(0), 16).is_none());
        // The replay is served entirely from preloaded detections.
        let replay = engine.wait(engine.submit(spec).unwrap()).unwrap();
        assert_eq!(replay.trace.samples(), first.trace.samples());
        assert_eq!(replay.trace.found(), first.trace.found());
        assert_eq!(engine.detector_invocations(), 0);
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lost_catalog_never_remaps_surviving_artifacts() {
        // The catalog file is deleted between runs (partial restore, say)
        // while the detection log survives. Re-registration in a
        // different order must NOT inherit the orphaned ids — that would
        // serve one repository's cached detections for another's footage.
        // Instead the identities get fresh ids past every id observed in
        // surviving artifacts, and the engine re-pays the detector.
        let dir = std::env::temp_dir().join(format!(
            "exsample-engine-lost-catalog-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let persist = exsample_persist::PersistConfig::new(&dir).fingerprint(21);
        let config = EngineConfig {
            workers: 2,
            quantum: 8,
            persist: Some(persist),
            ..EngineConfig::default()
        };
        let gt_a = truth(6_000, 20);
        let gt_b = Arc::new(
            DatasetSpec::single_class(
                9_000,
                ClassSpec::new("car", 30, 80.0, SkewSpec::CentralNormal { frac95: 0.3 }),
            )
            .generate(99),
        );

        let engine = Engine::new(config.clone());
        let a = engine.register_repo("cam-a", gt_a.clone(), NoiseModel::none(), 5);
        let b = engine.register_repo("cam-b", gt_b.clone(), NoiseModel::none(), 5);
        let spec = QuerySpec::new(b, ClassId(0), StopCond::results(8))
            .seed(3)
            .warm_start(false);
        let first = engine.wait(engine.submit(spec.clone()).unwrap()).unwrap();
        assert!(engine.detector_invocations() > 0);
        drop(engine);

        std::fs::remove_file(dir.join("repos.xsr")).expect("catalog written");

        // Restart, reversed order: without the artifact-id reservation,
        // cam-b would land on cam-a's old id and be served cam-a's
        // cached detections.
        let engine = Engine::new(config);
        let b2 = engine.register_repo("cam-b", gt_b, NoiseModel::none(), 5);
        let a2 = engine.register_repo("cam-a", gt_a, NoiseModel::none(), 5);
        assert!(b2 != a && b2 != b, "orphaned ids must not be reassigned");
        assert!(a2 != a && a2 != b, "orphaned ids must not be reassigned");
        let spec = QuerySpec { repo: b2, ..spec };
        let replay = engine.wait(engine.submit(spec).unwrap()).unwrap();
        // Correct results (same footage, same seed), honestly re-paid.
        assert_eq!(replay.trace.samples(), first.trace.samples());
        assert_eq!(replay.trace.found(), first.trace.found());
        assert!(
            engine.detector_invocations() > 0,
            "stale detections must not be served under a fresh id"
        );
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn poll_window_paces_the_stream_and_past_end_cursor_is_empty() {
        let (engine, repo) = small_engine(2);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(12)).seed(6))
            .unwrap();
        engine.wait(id).unwrap();
        let all = engine.poll(id, 0).unwrap();
        assert!(!all.events.is_empty());
        // Windowed polls return the same events, at most `w` at a time,
        // advancing the cursor only past what was returned.
        let mut cursor = 0;
        let mut paged = Vec::new();
        loop {
            let snap = engine.poll_window(id, cursor, Some(1)).unwrap();
            assert!(snap.events.len() <= 1);
            if snap.events.is_empty() {
                break;
            }
            assert_eq!(snap.next_cursor, cursor + snap.events.len() as u64);
            paged.extend(snap.events);
            cursor = snap.next_cursor;
        }
        assert_eq!(paged, all.events);
        // A cursor past the end is clamped: empty snapshot, not an error.
        let past = engine.poll(id, u64::MAX).unwrap();
        assert!(past.events.is_empty());
        assert_eq!(past.next_cursor, all.events.len() as u64);
        assert_eq!(past.status, SessionStatus::Done);
        assert_eq!(past.found, all.found);
    }

    #[test]
    fn poll_wait_streams_without_busy_polling() {
        let (engine, repo) = small_engine(2);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(15)).seed(8))
            .unwrap();
        let mut cursor = 0;
        let mut streamed = 0u64;
        loop {
            let snap = engine.poll_wait(id, cursor, Some(4)).unwrap();
            assert!(snap.events.len() <= 4);
            streamed += snap
                .events
                .iter()
                .map(|e| e.new_results as u64)
                .sum::<u64>();
            cursor = snap.next_cursor;
            if snap.status != SessionStatus::Running && snap.events.is_empty() {
                break;
            }
        }
        let report = engine.wait(id).unwrap();
        assert_eq!(streamed, report.trace.found());
        // On a finished session poll_wait returns immediately.
        let snap = engine.poll_wait(id, cursor, None).unwrap();
        assert!(snap.events.is_empty());
        assert_eq!(
            engine.poll_wait(SessionId(404), 0, None).unwrap_err(),
            EngineError::UnknownSession(SessionId(404))
        );
    }

    #[test]
    fn submit_validates_specs_before_any_worker_sees_them() {
        let (engine, repo) = small_engine(1);
        let base = QuerySpec::new(repo, ClassId(0), StopCond::results(1));
        let mut degenerate_prior = base.clone();
        degenerate_prior.config.prior = exsample_core::belief::BeliefPrior {
            alpha0: 0.0,
            beta0: 1.0,
        };
        assert_eq!(
            engine.submit(degenerate_prior),
            Err(EngineError::InvalidSpec(
                "prior pseudo-counts must be positive and finite"
            ))
        );
        let nan_stop = base.clone().chunks(4);
        let nan_stop = QuerySpec {
            stop: StopCond::seconds(f64::NAN),
            ..nan_stop
        };
        assert_eq!(
            engine.submit(nan_stop),
            Err(EngineError::InvalidSpec("stop seconds must be finite"))
        );
        assert_eq!(
            engine.submit(base.clone().chunks(0)),
            Err(EngineError::InvalidSpec("chunks must be positive"))
        );
        // A valid spec still goes through after the rejections.
        let id = engine.submit(base).unwrap();
        assert_eq!(engine.wait(id).unwrap().status, SessionStatus::Done);
    }

    #[test]
    fn engine_serves_the_search_service_trait() {
        let (engine, repo) = small_engine(2);
        let svc: &dyn SearchService = &engine;
        let infos = svc.repos().unwrap();
        assert_eq!(infos.len(), 1);
        assert_eq!(infos[0].id, repo);
        assert_eq!(
            svc.submit(QuerySpec::new(RepoId(77), ClassId(0), StopCond::results(1))),
            Err(SubmitError::UnknownRepo(RepoId(77)))
        );
        let id = svc
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(5)).seed(41))
            .unwrap();
        let mut cursor = 0;
        let mut streamed = 0u64;
        loop {
            let snap = svc.poll(id, cursor, Some(2)).unwrap();
            streamed += snap
                .events
                .iter()
                .map(|e| e.new_results as u64)
                .sum::<u64>();
            cursor = snap.next_cursor;
            if snap.status != SessionStatus::Running && snap.events.is_empty() {
                break;
            }
            std::thread::yield_now();
        }
        let report = svc.wait(id).unwrap();
        assert_eq!(streamed, report.trace.found());
        assert_eq!(svc.forget(id).unwrap().trace, report.trace);
        assert_eq!(svc.wait(id).unwrap_err(), ServiceError::UnknownSession(id));
    }

    #[test]
    fn session_ttl_reaps_unpolled_finished_sessions() {
        let ttl = Duration::from_millis(200);
        let engine = Engine::new(EngineConfig {
            workers: 2,
            quantum: 8,
            session_ttl: Some(ttl),
            ..EngineConfig::default()
        });
        let repo = engine.register_repo("ttl-repo", truth(20_000, 60), NoiseModel::none(), 5);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(5)).seed(3))
            .unwrap();
        engine.wait(id).unwrap();
        // Within the TTL the session is still readable.
        assert!(engine.poll(id, 0).is_ok());
        std::thread::sleep(ttl * 2);
        // The next API touch reaps it — as if forgotten.
        assert_eq!(
            engine.poll(id, 0).unwrap_err(),
            EngineError::UnknownSession(id)
        );
        assert_eq!(
            engine.wait(id).unwrap_err(),
            EngineError::UnknownSession(id)
        );
        assert_eq!(engine.service_stats().live_sessions, 0);
    }

    #[test]
    fn session_ttl_polling_refreshes_liveness() {
        let ttl = Duration::from_millis(250);
        let engine = Engine::new(EngineConfig {
            workers: 2,
            quantum: 8,
            session_ttl: Some(ttl),
            ..EngineConfig::default()
        });
        let repo = engine.register_repo("ttl-repo", truth(20_000, 60), NoiseModel::none(), 5);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(5)).seed(4))
            .unwrap();
        engine.wait(id).unwrap();
        // Keep touching it for well over one TTL: every poll refreshes
        // the deadline, so the session must survive.
        for _ in 0..8 {
            std::thread::sleep(ttl / 3);
            assert!(engine.poll(id, 0).is_ok(), "poll must refresh liveness");
        }
        // `forget` stays immediate — no TTL involved.
        assert!(engine.forget(id).is_ok());
        assert_eq!(
            engine.poll(id, 0).unwrap_err(),
            EngineError::UnknownSession(id)
        );
    }

    #[test]
    fn service_stats_aggregates_cache_and_sessions() {
        let (engine, repo) = small_engine(2);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(5)).seed(9))
            .unwrap();
        engine.wait(id).unwrap();
        let stats = engine.service_stats();
        assert_eq!(stats.cache, engine.cache_stats());
        assert!(stats.cache.misses > 0);
        assert!(stats.persist.is_none());
        assert_eq!(stats.live_sessions, 1);
        engine.forget(id).unwrap();
        assert_eq!(engine.service_stats().live_sessions, 0);
    }

    #[test]
    fn engine_stepping_matches_blocking_run_search_per_query() {
        // The engine's batched stepping at batch = 1 (the default) must
        // sample exactly the frames the classic blocking per-frame driver
        // samples: same RNG consumption, same feedback order, same trace
        // shape. This is the bit-identity contract of §III-F batching.
        use exsample_core::driver::{run_search, SearchCost};
        use exsample_core::exsample::{ExSample, ExSampleConfig};
        let gt = truth(20_000, 60);
        let engine = Engine::new(EngineConfig {
            workers: 1,
            quantum: 8,
            ..EngineConfig::default()
        });
        let repo = engine.register_repo("ref-repo", gt.clone(), NoiseModel::none(), 5);
        let id = engine
            .submit(
                QuerySpec::new(repo, ClassId(0), StopCond::results(12))
                    .seed(9)
                    .chunks(16),
            )
            .unwrap();
        let report = engine.wait(id).unwrap();

        let mut policy = ExSample::new(Chunking::even(20_000, 16), ExSampleConfig::default());
        let mut oracle = exsample_detect::QueryOracle::new(
            SimulatedDetector::new(gt, ClassId(0), NoiseModel::none(), 5),
            OracleDiscriminator::new(),
        );
        let mut rng = Rng64::new(9);
        let reference = {
            let mut f = |frame| oracle.process(frame);
            run_search(
                &mut policy,
                &mut f,
                &SearchCost::per_sample(1.0 / 20.0),
                &StopCond::results(12),
                &mut rng,
            )
        };
        assert_eq!(report.trace.samples(), reference.samples());
        assert_eq!(report.trace.found(), reference.found());
        let engine_curve: Vec<(u64, u64)> = report
            .trace
            .points()
            .iter()
            .map(|p| (p.samples, p.found))
            .collect();
        let reference_curve: Vec<(u64, u64)> = reference
            .points()
            .iter()
            .map(|p| (p.samples, p.found))
            .collect();
        assert_eq!(engine_curve, reference_curve);
    }

    #[test]
    fn dispatch_overhead_is_charged_once_per_batch() {
        let cost_model = CostModel {
            dispatch_s: 0.05,
            ..CostModel::default()
        };
        let engine = Engine::new(EngineConfig {
            workers: 1,
            quantum: 16,
            batch: 8,
            cost_model,
            ..EngineConfig::default()
        });
        let repo = engine.register_repo("batch-repo", truth(20_000, 60), NoiseModel::none(), 5);
        let id = engine
            .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(15)).seed(4))
            .unwrap();
        let report = engine.wait(id).unwrap();
        assert!(report.charges.dispatches > 0);
        assert!(
            report.charges.dispatches < report.charges.detector_invocations,
            "{} dispatches did not amortize {} invocations",
            report.charges.dispatches,
            report.charges.detector_invocations
        );
        // One overhead charge per dispatch, and the trace clock equals
        // the full charged ledger including dispatch overhead.
        assert!((report.charges.dispatch_s - report.charges.dispatches as f64 * 0.05).abs() < 1e-9);
        assert!((report.trace.seconds() - report.charges.total_s()).abs() < 1e-9);
    }

    #[test]
    fn session_results_are_deterministic_across_engines() {
        let run = || {
            let (engine, repo) = small_engine(4);
            let ids: Vec<SessionId> = (0..4)
                .map(|i| {
                    engine
                        .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(20)).seed(7 + i))
                        .unwrap()
                })
                .collect();
            ids.into_iter()
                .map(|id| {
                    let r = engine.wait(id).unwrap();
                    (
                        r.trace.samples(),
                        r.trace.found(),
                        r.trace
                            .points()
                            .iter()
                            .map(|p| (p.samples, p.found))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
