//! Multi-query search engine for ExSample workloads.
//!
//! The core crates answer "how do I find distinct objects in video with
//! the fewest detector invocations?" for *one* query. A production
//! service faces many concurrent users whose queries overlap on the same
//! repositories — where detector outputs can be shared and the GPU budget
//! must be arbitrated. This crate provides that serving layer:
//!
//! * [`SearchService`] — the client-facing API every consumer programs
//!   against: repository catalog, submit, windowed cursor polls, cancel,
//!   wait, forget. Implemented in-process by [`Engine`] and remotely by
//!   `exsample-proto`'s `RemoteClient`, interchangeably.
//! * [`Engine`] — the front door: register repositories under stable
//!   names, [`Engine::submit`] queries, [`Engine::poll`] incremental
//!   results (plus [`Engine::poll_wait`] for push-style streaming),
//!   [`Engine::cancel`], and [`Engine::wait`] for the final
//!   `SearchTrace`. Sessions are multiplexed over a worker-thread pool.
//! * [`FrameCache`] — a sharded, thread-safe memo of detector output keyed
//!   by `(video, frame)`, with hit/miss/eviction statistics. Overlapping
//!   queries never pay for the same frame twice.
//! * [`Scheduler`] — weighted-fair arbitration of the modelled detector
//!   budget: sessions are charged detection plus io/decode seconds (via
//!   `exsample_store::CostModel`) and the next quantum always goes to the
//!   cheapest-so-far session per unit priority.
//! * [`QuerySpec`] / [`SessionId`] / [`SessionSnapshot`] /
//!   [`SessionReport`] — the session lifecycle vocabulary, including the
//!   selectable discriminator ([`DiscriminatorKind`]) and per-query
//!   belief warm-starting.
//! * **Durable detection store** — with [`EngineConfig::persist`] set
//!   (see [`PersistConfig`]), detector output is written behind the cache
//!   into `exsample_persist`'s segmented log and preloaded on the next
//!   start, so a restarted engine answers previously-detected frames
//!   with zero detector invocations; finished sessions snapshot their
//!   chunk beliefs for cross-session warm-starts. [`Engine::persist_stats`]
//!   reports what was loaded, skipped (stale fingerprints), or salvaged.
//! * [`default_threads`] — the workspace-wide `EXSAMPLE_THREADS`
//!   convention, shared with the experiments harness.
//!
//! # Example
//!
//! ```
//! use exsample_engine::{Engine, EngineConfig, QuerySpec};
//! use exsample_core::driver::StopCond;
//! use exsample_detect::NoiseModel;
//! use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, SkewSpec};
//! use std::sync::Arc;
//!
//! let gt = Arc::new(
//!     DatasetSpec::single_class(
//!         50_000,
//!         ClassSpec::new("car", 80, 300.0, SkewSpec::CentralNormal { frac95: 0.2 }),
//!     )
//!     .generate(11),
//! );
//! let engine = Engine::new(EngineConfig::default());
//! let repo = engine.register_repo("city-cam", gt, NoiseModel::none(), 1);
//!
//! // Two overlapping queries race for the same detector budget ...
//! let a = engine
//!     .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(10)).seed(1))
//!     .unwrap();
//! let b = engine
//!     .submit(QuerySpec::new(repo, ClassId(0), StopCond::results(10)).seed(2))
//!     .unwrap();
//! assert!(engine.wait(a).unwrap().trace.found() >= 10);
//! assert!(engine.wait(b).unwrap().trace.found() >= 10);
//! // ... and frames sampled by both were only detected once.
//! let stats = engine.cache_stats();
//! assert_eq!(stats.misses, engine.detector_invocations());
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod engine;
pub mod obs;
pub mod scheduler;
pub mod service;
pub mod session;
pub mod threads;

pub use cache::{
    CacheStats, CachedDetections, FrameCache, FrameKey, Lookup, MissGuard, PendingWait,
};
pub use engine::{Engine, EngineConfig, EngineError, PersistStats};
pub use exsample_persist::{
    dataset_fingerprint, detector_fingerprint, ColumnarConfig, PersistConfig,
};
pub use obs::EngineObs;
pub use scheduler::Scheduler;
pub use service::{Diagnostics, RepoInfo, SearchService, ServiceError, ServiceStats, SubmitError};
pub use session::{
    DiscriminatorKind, QuerySpec, RepoId, ResultEvent, SessionCharges, SessionId, SessionReport,
    SessionSnapshot, SessionStatus, TenantBinding, TenantId,
};
pub use threads::default_threads;
