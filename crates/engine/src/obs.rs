//! The engine's instrumentation hub: one [`Registry`], one
//! [`FlightRecorder`], and pre-resolved histogram handles for every
//! engine stage, so hot paths record through plain `Arc` derefs and
//! relaxed atomics — never through the registry lock.
//!
//! Instrumentation is strictly observational (wall clock + atomics); it
//! cannot perturb a session's deterministic trace. With
//! [`EngineConfig::observe`](crate::EngineConfig::observe) off, spans
//! are inert and never read the clock, which is the uninstrumented
//! baseline the `obs_cmp` benchmark compares against.

use exsample_obs::{
    Counter, CounterFamily, FlightRecorder, GaugeFamily, LatencyHistogram, Registry, SpanCollector,
    SpanGuard, SpanId, Stage, TraceId, NO_SESSION,
};
use std::sync::Arc;

/// Pre-registered metric handles plus the flight recorder; owned by the
/// engine's shared state and reachable from every worker.
///
/// The metric catalog (names, units, span taxonomy) is documented in
/// `docs/OBSERVABILITY.md`.
#[derive(Debug)]
pub struct EngineObs {
    enabled: bool,
    registry: Arc<Registry>,
    flight: FlightRecorder,
    dispatch: Arc<LatencyHistogram>,
    batch_assembly: Arc<LatencyHistogram>,
    cache_wait: Arc<LatencyHistogram>,
    lease: Arc<LatencyHistogram>,
    write_behind: Arc<LatencyHistogram>,
    belief_snapshot: Arc<LatencyHistogram>,
    compaction: Arc<LatencyHistogram>,
    server_submit: Arc<LatencyHistogram>,
    server_poll: Arc<LatencyHistogram>,
    server_stream: Arc<LatencyHistogram>,
    serve_accept: Arc<LatencyHistogram>,
    serve_handshake: Arc<LatencyHistogram>,
    serve_turn: Arc<LatencyHistogram>,
    serve_admission: Arc<LatencyHistogram>,
    session_hist: Arc<LatencyHistogram>,
    tracer: SpanCollector,
    /// Frames stepped across all sessions (bumped once per quantum).
    pub frames_total: Arc<Counter>,
    /// Queries accepted by `submit`.
    pub sessions_submitted_total: Arc<Counter>,
    /// Sessions finalized (finished or cancelled).
    pub sessions_finished_total: Arc<Counter>,
    /// Accepted submits, labeled by tenant (`submits_total{tenant=...}`;
    /// untagged in-process submits land under tenant `0`).
    pub submits_by_tenant: Arc<CounterFamily>,
    /// Unfinished sessions per tenant
    /// (`sessions_active{tenant=...}`), maintained at submit and
    /// finalization for tenant-tagged sessions.
    pub sessions_active: Arc<GaugeFamily>,
}

impl EngineObs {
    /// Build the hub, registering the full engine metric catalog up
    /// front so diagnostics always expose a stable shape. `enabled`
    /// gates *recording* only; `trace` additionally switches the span
    /// collector (request-scoped tracing) and is effective only when
    /// `enabled` is too.
    pub fn new(enabled: bool, trace: bool, flight_capacity: usize) -> Self {
        let registry = Arc::new(Registry::new());
        EngineObs {
            enabled,
            dispatch: registry.histogram("dispatch_ns"),
            batch_assembly: registry.histogram("batch_assembly_ns"),
            cache_wait: registry.histogram("cache_wait_ns"),
            lease: registry.histogram("lease_ns"),
            write_behind: registry.histogram("write_behind_ns"),
            belief_snapshot: registry.histogram("belief_snapshot_ns"),
            compaction: registry.histogram("compaction_ns"),
            server_submit: registry.histogram("server_submit_ns"),
            server_poll: registry.histogram("server_poll_ns"),
            server_stream: registry.histogram("server_stream_ns"),
            serve_accept: registry.histogram("accept_ns"),
            serve_handshake: registry.histogram("handshake_ns"),
            serve_turn: registry.histogram("turn_ns"),
            serve_admission: registry.histogram("admission_ns"),
            session_hist: registry.histogram("session_ns"),
            tracer: SpanCollector::new(enabled && trace),
            frames_total: registry.counter("frames_total"),
            sessions_submitted_total: registry.counter("sessions_submitted_total"),
            sessions_finished_total: registry.counter("sessions_finished_total"),
            submits_by_tenant: registry.counter_family("submits_total", "tenant"),
            sessions_active: registry.gauge_family("sessions_active", "tenant"),
            flight: FlightRecorder::new(flight_capacity),
            registry,
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The metric registry (for render/collect and for other layers —
    /// e.g. the wire server — to register their own metrics alongside
    /// the engine's).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The engine histogram for `stage`.
    fn hist(&self, stage: Stage) -> &Arc<LatencyHistogram> {
        match stage {
            Stage::Dispatch => &self.dispatch,
            Stage::BatchAssembly => &self.batch_assembly,
            Stage::CacheWait => &self.cache_wait,
            Stage::Lease => &self.lease,
            Stage::WriteBehind => &self.write_behind,
            Stage::BeliefSnapshot => &self.belief_snapshot,
            Stage::Compaction => &self.compaction,
            // Recorded by the wire server (`exsample-proto`), which
            // reaches the same hub through `Engine::obs`.
            Stage::Submit => &self.server_submit,
            Stage::Poll => &self.server_poll,
            Stage::Stream => &self.server_stream,
            // Recorded by the reactor (`exsample-serve`), same route.
            Stage::Accept => &self.serve_accept,
            Stage::Handshake => &self.serve_handshake,
            Stage::Turn => &self.serve_turn,
            Stage::Admission => &self.serve_admission,
            // Fed by `trace_finish` with the root span's duration, so it
            // fills only while tracing is on.
            Stage::Session => &self.session_hist,
        }
    }

    /// The request-scoped span collector. Disabled (inert) unless both
    /// [`EngineConfig::observe`](crate::EngineConfig::observe) and
    /// [`EngineConfig::trace`](crate::EngineConfig::trace) are set.
    pub fn tracer(&self) -> &SpanCollector {
        &self.tracer
    }

    /// Open `session`'s trace at submit: mint the root session span and
    /// record an engine-side submit span of `submit_ns` under it.
    /// No-op unless tracing is on.
    pub fn trace_submit(&self, session: u64, submit_ns: u64) {
        if !self.tracer.enabled() {
            return;
        }
        let trace = TraceId::from_session(session);
        self.tracer.open_root(trace, session);
        self.tracer
            .record(trace, SpanId::ROOT, Stage::Submit, session, submit_ns, 0);
    }

    /// Close `session`'s trace at finalization; the root span's
    /// lifetime lands in the `session_ns` histogram.
    pub fn trace_finish(&self, session: u64) {
        if let Some(ns) = self.tracer.close_root(TraceId::from_session(session)) {
            self.session_hist.record(ns);
        }
    }

    /// A histogram-only span (no flight event) — for high-frequency
    /// stages where a per-occurrence event would churn the ring.
    pub fn span(&self, stage: Stage, session: u64) -> SpanGuard<'_> {
        if self.enabled {
            let mut span = SpanGuard::start(Some(self.hist(stage)), None, session, stage);
            span.attach_tracer(&self.tracer);
            span
        } else {
            SpanGuard::disabled(stage)
        }
    }

    /// A span that records the histogram *and* leaves a structured
    /// flight event behind.
    pub fn span_flight(&self, stage: Stage, session: u64) -> SpanGuard<'_> {
        if self.enabled {
            let mut span =
                SpanGuard::start(Some(self.hist(stage)), Some(&self.flight), session, stage);
            span.attach_tracer(&self.tracer);
            span
        } else {
            SpanGuard::disabled(stage)
        }
    }

    /// Record an already-measured duration for `stage` (used where a
    /// guard cannot span the region, e.g. across lock boundaries),
    /// with a flight event.
    pub fn record(&self, stage: Stage, session: u64, duration_ns: u64, key: u64) {
        if !self.enabled {
            return;
        }
        self.hist(stage).record(duration_ns);
        self.flight.record(session, stage, duration_ns, key);
        if self.tracer.enabled() && session != NO_SESSION {
            self.tracer.record(
                TraceId::from_session(session),
                SpanId::ROOT,
                stage,
                session,
                duration_ns,
                key,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_records_nothing() {
        let obs = EngineObs::new(false, false, 16);
        {
            let mut s = obs.span_flight(Stage::Dispatch, 1);
            s.set_key(4);
        }
        obs.record(Stage::Lease, 1, 99, 0);
        assert!(obs
            .registry()
            .histograms()
            .iter()
            .all(|(_, s)| s.is_empty()));
        assert!(obs.flight().dump().is_empty());
    }

    #[test]
    fn catalog_is_registered_up_front() {
        let obs = EngineObs::new(true, true, 16);
        let names: Vec<String> = obs
            .registry()
            .histograms()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        for expect in [
            "batch_assembly_ns",
            "belief_snapshot_ns",
            "cache_wait_ns",
            "compaction_ns",
            "dispatch_ns",
            "lease_ns",
            "write_behind_ns",
        ] {
            assert!(names.iter().any(|n| n == expect), "missing {expect}");
        }
        let counters: Vec<String> = obs
            .registry()
            .counters()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(counters.iter().any(|n| n == "frames_total"));
    }

    #[test]
    fn enabled_spans_land_in_hist_and_flight() {
        let obs = EngineObs::new(true, false, 16);
        {
            let mut s = obs.span_flight(Stage::Dispatch, 7);
            s.set_key(3);
        }
        {
            let _s = obs.span(Stage::BatchAssembly, 7);
        }
        let hists = obs.registry().histograms();
        let get = |name: &str| {
            hists
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.total())
                .unwrap()
        };
        assert_eq!(get("dispatch_ns"), 1);
        assert_eq!(get("batch_assembly_ns"), 1);
        // Only the flight-recording span left an event.
        let events = obs.flight().dump();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].stage, Stage::Dispatch);
        assert_eq!(events[0].key, 3);
        assert_eq!(events[0].session, 7);
    }

    #[test]
    fn trace_lifecycle_builds_a_session_tree() {
        let obs = EngineObs::new(true, true, 16);
        obs.trace_submit(5, 1_000);
        {
            let mut s = obs.span_flight(Stage::Dispatch, 5);
            s.set_key(2);
        }
        obs.record(Stage::Lease, 5, 42, 0);
        obs.trace_finish(5);
        let spans = obs.tracer().collect(TraceId::from_session(5));
        exsample_obs::validate_spans(&spans).expect("valid tree");
        assert_eq!(spans.len(), 4, "root + submit + dispatch + lease");
        let root = spans.iter().find(|s| s.stage == Stage::Session).unwrap();
        assert!(root.duration_ns > 0, "trace_finish closed the root");
        let hists = obs.registry().histograms();
        let session_total = hists
            .iter()
            .find(|(n, _)| n == "session_ns")
            .map(|(_, s)| s.total())
            .unwrap();
        assert_eq!(session_total, 1);
    }
}
