//! The engine's instrumentation hub: one [`Registry`], one
//! [`FlightRecorder`], and pre-resolved histogram handles for every
//! engine stage, so hot paths record through plain `Arc` derefs and
//! relaxed atomics — never through the registry lock.
//!
//! Instrumentation is strictly observational (wall clock + atomics); it
//! cannot perturb a session's deterministic trace. With
//! [`EngineConfig::observe`](crate::EngineConfig::observe) off, spans
//! are inert and never read the clock, which is the uninstrumented
//! baseline the `obs_cmp` benchmark compares against.

use exsample_obs::{Counter, FlightRecorder, LatencyHistogram, Registry, SpanGuard, Stage};
use std::sync::Arc;

/// Pre-registered metric handles plus the flight recorder; owned by the
/// engine's shared state and reachable from every worker.
///
/// The metric catalog (names, units, span taxonomy) is documented in
/// `docs/OBSERVABILITY.md`.
#[derive(Debug)]
pub struct EngineObs {
    enabled: bool,
    registry: Arc<Registry>,
    flight: FlightRecorder,
    dispatch: Arc<LatencyHistogram>,
    batch_assembly: Arc<LatencyHistogram>,
    cache_wait: Arc<LatencyHistogram>,
    lease: Arc<LatencyHistogram>,
    write_behind: Arc<LatencyHistogram>,
    belief_snapshot: Arc<LatencyHistogram>,
    compaction: Arc<LatencyHistogram>,
    server_submit: Arc<LatencyHistogram>,
    server_poll: Arc<LatencyHistogram>,
    server_stream: Arc<LatencyHistogram>,
    serve_accept: Arc<LatencyHistogram>,
    serve_handshake: Arc<LatencyHistogram>,
    serve_turn: Arc<LatencyHistogram>,
    /// Frames stepped across all sessions (bumped once per quantum).
    pub frames_total: Arc<Counter>,
    /// Queries accepted by `submit`.
    pub sessions_submitted_total: Arc<Counter>,
    /// Sessions finalized (finished or cancelled).
    pub sessions_finished_total: Arc<Counter>,
}

impl EngineObs {
    /// Build the hub, registering the full engine metric catalog up
    /// front so diagnostics always expose a stable shape. `enabled`
    /// gates *recording* only.
    pub fn new(enabled: bool, flight_capacity: usize) -> Self {
        let registry = Arc::new(Registry::new());
        EngineObs {
            enabled,
            dispatch: registry.histogram("dispatch_ns"),
            batch_assembly: registry.histogram("batch_assembly_ns"),
            cache_wait: registry.histogram("cache_wait_ns"),
            lease: registry.histogram("lease_ns"),
            write_behind: registry.histogram("write_behind_ns"),
            belief_snapshot: registry.histogram("belief_snapshot_ns"),
            compaction: registry.histogram("compaction_ns"),
            server_submit: registry.histogram("server_submit_ns"),
            server_poll: registry.histogram("server_poll_ns"),
            server_stream: registry.histogram("server_stream_ns"),
            serve_accept: registry.histogram("accept_ns"),
            serve_handshake: registry.histogram("handshake_ns"),
            serve_turn: registry.histogram("turn_ns"),
            frames_total: registry.counter("frames_total"),
            sessions_submitted_total: registry.counter("sessions_submitted_total"),
            sessions_finished_total: registry.counter("sessions_finished_total"),
            flight: FlightRecorder::new(flight_capacity),
            registry,
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The metric registry (for render/collect and for other layers —
    /// e.g. the wire server — to register their own metrics alongside
    /// the engine's).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The engine histogram for `stage`.
    fn hist(&self, stage: Stage) -> &Arc<LatencyHistogram> {
        match stage {
            Stage::Dispatch => &self.dispatch,
            Stage::BatchAssembly => &self.batch_assembly,
            Stage::CacheWait => &self.cache_wait,
            Stage::Lease => &self.lease,
            Stage::WriteBehind => &self.write_behind,
            Stage::BeliefSnapshot => &self.belief_snapshot,
            Stage::Compaction => &self.compaction,
            // Recorded by the wire server (`exsample-proto`), which
            // reaches the same hub through `Engine::obs`.
            Stage::Submit => &self.server_submit,
            Stage::Poll => &self.server_poll,
            Stage::Stream => &self.server_stream,
            // Recorded by the reactor (`exsample-serve`), same route.
            Stage::Accept => &self.serve_accept,
            Stage::Handshake => &self.serve_handshake,
            Stage::Turn => &self.serve_turn,
        }
    }

    /// A histogram-only span (no flight event) — for high-frequency
    /// stages where a per-occurrence event would churn the ring.
    pub fn span(&self, stage: Stage, session: u64) -> SpanGuard<'_> {
        if self.enabled {
            SpanGuard::start(Some(self.hist(stage)), None, session, stage)
        } else {
            SpanGuard::disabled(stage)
        }
    }

    /// A span that records the histogram *and* leaves a structured
    /// flight event behind.
    pub fn span_flight(&self, stage: Stage, session: u64) -> SpanGuard<'_> {
        if self.enabled {
            SpanGuard::start(Some(self.hist(stage)), Some(&self.flight), session, stage)
        } else {
            SpanGuard::disabled(stage)
        }
    }

    /// Record an already-measured duration for `stage` (used where a
    /// guard cannot span the region, e.g. across lock boundaries),
    /// with a flight event.
    pub fn record(&self, stage: Stage, session: u64, duration_ns: u64, key: u64) {
        if !self.enabled {
            return;
        }
        self.hist(stage).record(duration_ns);
        self.flight.record(session, stage, duration_ns, key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hub_records_nothing() {
        let obs = EngineObs::new(false, 16);
        {
            let mut s = obs.span_flight(Stage::Dispatch, 1);
            s.set_key(4);
        }
        obs.record(Stage::Lease, 1, 99, 0);
        assert!(obs
            .registry()
            .histograms()
            .iter()
            .all(|(_, s)| s.is_empty()));
        assert!(obs.flight().dump().is_empty());
    }

    #[test]
    fn catalog_is_registered_up_front() {
        let obs = EngineObs::new(true, 16);
        let names: Vec<String> = obs
            .registry()
            .histograms()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        for expect in [
            "batch_assembly_ns",
            "belief_snapshot_ns",
            "cache_wait_ns",
            "compaction_ns",
            "dispatch_ns",
            "lease_ns",
            "write_behind_ns",
        ] {
            assert!(names.iter().any(|n| n == expect), "missing {expect}");
        }
        let counters: Vec<String> = obs
            .registry()
            .counters()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert!(counters.iter().any(|n| n == "frames_total"));
    }

    #[test]
    fn enabled_spans_land_in_hist_and_flight() {
        let obs = EngineObs::new(true, 16);
        {
            let mut s = obs.span_flight(Stage::Dispatch, 7);
            s.set_key(3);
        }
        {
            let _s = obs.span(Stage::BatchAssembly, 7);
        }
        let hists = obs.registry().histograms();
        let get = |name: &str| {
            hists
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, s)| s.total())
                .unwrap()
        };
        assert_eq!(get("dispatch_ns"), 1);
        assert_eq!(get("batch_assembly_ns"), 1);
        // Only the flight-recording span left an event.
        let events = obs.flight().dump();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].stage, Stage::Dispatch);
        assert_eq!(events[0].key, 3);
        assert_eq!(events[0].session, 7);
    }
}
