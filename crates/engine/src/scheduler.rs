//! Cost-aware arbitration of the detector budget across sessions.
//!
//! The engine owns one modelled detector able to process a fixed number of
//! frames per second ([`crate::EngineConfig::detector_fps`]); every
//! detector invocation and every container decode a session causes is
//! charged to that session in seconds (via `exsample_store::CostModel` for
//! the io side). The scheduler then implements **weighted fair queueing**
//! over those charges: each session has a priority weight, its *virtual
//! time* is `charged_seconds / weight`, and the next quantum of detector
//! budget always goes to the runnable session with the smallest virtual
//! time. With equal per-frame costs this degenerates to weighted
//! round-robin; with a warm cache, sessions whose frames keep hitting are
//! charged almost nothing and get proportionally more turns — the budget
//! follows the *real* cost, not the frame count.
//!
//! Sessions joining late start at the current minimum virtual time, so a
//! newcomer competes fairly from now on instead of monopolizing the
//! detector while it "catches up" on seconds it never consumed.
//!
//! Charges are validated where they are applied: [`Scheduler::release`]
//! sanitizes non-finite and negative charges (a NaN would otherwise
//! poison the virtual-time comparison in [`Scheduler::lease_next`] and
//! panic a worker) and enforces a tiny minimum advance so a zero charge
//! can never freeze a session's virtual time and let it hold every lease
//! forever. That floor is a *correctness* guarantee — eventual rotation,
//! finite ordering — not a fairness policy; callers wanting an all-hit
//! session to rotate out promptly should still impose their own larger
//! policy floor, as the engine's worker loop does.

use crate::session::SessionId;

/// Minimum virtual-time advance per [`Scheduler::release`], applied after
/// sanitizing the reported charge. Small enough to be invisible next to
/// any real charge (detection is ~50 modelled milliseconds), large enough
/// that a session releasing "free" quanta forever still makes monotone
/// progress and eventually yields the lease.
const MIN_RELEASE_CHARGE_S: f64 = 1e-9;

#[derive(Debug, Clone, Copy)]
struct Entry {
    id: SessionId,
    weight: u32,
    /// Total seconds charged (detector + io/decode).
    charged_s: f64,
    /// Currently checked out by a worker thread.
    leased: bool,
}

impl Entry {
    fn virtual_time(&self) -> f64 {
        self.charged_s / self.weight as f64
    }
}

/// Weighted-fair scheduler over session cost charges.
///
/// Not internally synchronized: the engine keeps it inside its state
/// mutex. All operations are O(#sessions), which is the regime the engine
/// targets (tens to hundreds of concurrent sessions, stepped in quanta of
/// many frames).
#[derive(Debug, Default)]
pub struct Scheduler {
    entries: Vec<Entry>,
}

impl Scheduler {
    /// Empty scheduler.
    pub fn new() -> Self {
        Scheduler::default()
    }

    fn index_of(&self, id: SessionId) -> usize {
        self.entries
            .iter()
            .position(|e| e.id == id)
            // lint: allow(panic_audit, the engine registers every session before scheduling it; an unknown id here is state corruption worth crashing on)
            .expect("session registered with scheduler")
    }

    /// Register a session with the given priority weight (higher weight ⇒
    /// larger share of the detector budget). The session joins at the
    /// current minimum virtual time among active sessions.
    ///
    /// # Panics
    /// Panics if `weight` is zero.
    pub fn register(&mut self, id: SessionId, weight: u32) {
        assert!(weight > 0, "scheduler weight must be positive");
        let joined_v = self
            .entries
            .iter()
            .map(Entry::virtual_time)
            .fold(f64::INFINITY, f64::min);
        let charged_s = if joined_v.is_finite() {
            joined_v * weight as f64
        } else {
            0.0
        };
        self.entries.push(Entry {
            id,
            weight,
            charged_s,
            leased: false,
        });
    }

    /// The runnable (active, unleased) session with the smallest virtual
    /// time, marked leased so no other worker picks it. Ties break on the
    /// older session id for determinism.
    pub fn lease_next(&mut self) -> Option<SessionId> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.leased)
            .min_by(|(_, a), (_, b)| {
                a.virtual_time()
                    .partial_cmp(&b.virtual_time())
                    // lint: allow(panic_audit, release() sanitizes every charge so virtual_time is always finite)
                    .expect("finite virtual time")
                    .then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)?;
        let entry = self.entries.get_mut(best)?;
        entry.leased = true;
        Some(entry.id)
    }

    /// Return a leased session, charging it the seconds its quantum cost.
    ///
    /// The charge is validated here, not trusted from the caller: a NaN
    /// or infinite charge is dropped (it would poison every later
    /// virtual-time comparison and panic `lease_next` on a worker
    /// thread), a negative charge is clamped to zero (virtual time must
    /// never rewind), and the applied charge is floored at a tiny
    /// epsilon (`MIN_RELEASE_CHARGE_S`) so even a zero-cost release
    /// advances virtual time — a frozen clock would let the session hold
    /// every lease. Larger floors for *fairness* (rotating all-cache-hit
    /// sessions out promptly) remain the caller's policy.
    pub fn release(&mut self, id: SessionId, charge_s: f64) {
        let i = self.index_of(id);
        let charge_s = if charge_s.is_finite() {
            charge_s.max(0.0)
        } else {
            0.0
        };
        // One bounds-checked access for the whole update (index_of
        // returned a live position; `get_mut` keeps the no-panic proof
        // local instead of relying on it three times).
        let Some(entry) = self.entries.get_mut(i) else {
            return;
        };
        debug_assert!(entry.leased, "release of unleased session");
        entry.leased = false;
        let advanced = entry.charged_s + charge_s.max(MIN_RELEASE_CHARGE_S);
        // The epsilon alone can be absorbed by float rounding once the
        // accumulated charge is large (1e-9 < ulp(charged_s)/2 beyond
        // ~1.7e7 charged seconds); "every release advances virtual time"
        // is a strict guarantee, so fall back to the next representable
        // value when the addition rounds away.
        entry.charged_s = if advanced > entry.charged_s {
            advanced
        } else {
            entry.charged_s.next_up()
        };
    }

    /// Mark a session finished: its entry is removed outright, so the
    /// `lease_next` scan and the entry table stay proportional to the
    /// *concurrent* session count, not the total ever submitted.
    pub fn deactivate(&mut self, id: SessionId) {
        let i = self.index_of(id);
        self.entries.swap_remove(i);
    }

    /// Seconds charged to a session so far.
    ///
    /// # Panics
    /// Panics if the session was deactivated (its charges live on in the
    /// engine's per-session ledger, not here).
    pub fn charged(&self, id: SessionId) -> f64 {
        // lint: allow(panic_audit, index_of just returned a live position and documents the panic contract)
        self.entries[self.index_of(id)].charged_s
    }

    /// Whether any session is runnable right now.
    pub fn has_runnable(&self) -> bool {
        self.entries.iter().any(|e| !e.leased)
    }

    /// Number of unfinished sessions (leased or not).
    pub fn active_sessions(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(n: u64) -> SessionId {
        SessionId(n)
    }

    /// Run `rounds` grants where every grant costs `cost(id)` seconds, and
    /// count grants per session.
    fn simulate(
        sched: &mut Scheduler,
        rounds: usize,
        cost: impl Fn(SessionId) -> f64,
    ) -> Vec<(SessionId, usize)> {
        let mut counts: Vec<(SessionId, usize)> = Vec::new();
        for _ in 0..rounds {
            let id = sched.lease_next().expect("runnable session");
            sched.release(id, cost(id));
            match counts.iter_mut().find(|(s, _)| *s == id) {
                Some((_, c)) => *c += 1,
                None => counts.push((id, 1)),
            }
        }
        counts.sort();
        counts
    }

    #[test]
    fn equal_weights_share_equally() {
        let mut s = Scheduler::new();
        s.register(sid(1), 1);
        s.register(sid(2), 1);
        let counts = simulate(&mut s, 100, |_| 1.0);
        assert_eq!(counts, vec![(sid(1), 50), (sid(2), 50)]);
    }

    #[test]
    fn weights_scale_the_share() {
        let mut s = Scheduler::new();
        s.register(sid(1), 3);
        s.register(sid(2), 1);
        let counts = simulate(&mut s, 120, |_| 1.0);
        // 3:1 split of the budget.
        assert_eq!(counts, vec![(sid(1), 90), (sid(2), 30)]);
    }

    #[test]
    fn cheap_sessions_get_more_turns() {
        // Session 2's frames keep hitting the cache (cost 0.1 vs 1.0):
        // equal *seconds* means ~10x the turns.
        let mut s = Scheduler::new();
        s.register(sid(1), 1);
        s.register(sid(2), 1);
        let counts = simulate(&mut s, 110, |id| if id == sid(1) { 1.0 } else { 0.1 });
        let c1 = counts[0].1 as f64;
        let c2 = counts[1].1 as f64;
        assert!(c2 / c1 > 8.0, "c1={c1} c2={c2}");
    }

    #[test]
    fn late_joiner_does_not_monopolize() {
        let mut s = Scheduler::new();
        s.register(sid(1), 1);
        for _ in 0..50 {
            let id = s.lease_next().unwrap();
            s.release(id, 1.0);
        }
        s.register(sid(2), 1);
        // From here on the split is even; session 2 must NOT receive all
        // 50 next grants to "catch up".
        let counts = simulate(&mut s, 20, |_| 1.0);
        let c2 = counts
            .iter()
            .find(|(s, _)| *s == sid(2))
            .map_or(0, |&(_, c)| c);
        assert!((8..=12).contains(&c2), "late joiner got {c2}/20 grants");
    }

    #[test]
    fn leased_sessions_are_skipped_until_released() {
        let mut s = Scheduler::new();
        s.register(sid(1), 1);
        s.register(sid(2), 1);
        let a = s.lease_next().unwrap();
        let b = s.lease_next().unwrap();
        assert_ne!(a, b);
        assert!(s.lease_next().is_none());
        assert!(!s.has_runnable());
        s.release(a, 1.0);
        assert_eq!(s.lease_next(), Some(a));
        s.release(a, 0.0);
        s.release(b, 0.0);
    }

    #[test]
    fn deactivated_sessions_stop_competing() {
        let mut s = Scheduler::new();
        s.register(sid(1), 1);
        s.register(sid(2), 1);
        s.deactivate(sid(1));
        assert_eq!(s.active_sessions(), 1);
        for _ in 0..5 {
            assert_eq!(s.lease_next(), Some(sid(2)));
            s.release(sid(2), 1.0);
        }
        s.deactivate(sid(2));
        assert!(s.lease_next().is_none());
        assert_eq!(s.active_sessions(), 0);
    }

    #[test]
    fn charges_accumulate() {
        let mut s = Scheduler::new();
        s.register(sid(7), 2);
        let id = s.lease_next().unwrap();
        s.release(id, 1.5);
        let id = s.lease_next().unwrap();
        s.release(id, 0.25);
        assert!((s.charged(sid(7)) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn zero_cost_grants_with_floor_preserve_liveness() {
        // The engine floors every release at a small epsilon (worker
        // loop); with the floor, an all-hit (near-free) session cannot
        // hold the lease forever — the cold session keeps rotating in.
        let mut s = Scheduler::new();
        s.register(sid(1), 1); // all cache hits: floored charge
        s.register(sid(2), 1); // cold frames: real cost
        let floor = 1e-3;
        let mut cold_grants = 0;
        for _ in 0..5_000 {
            let id = s.lease_next().unwrap();
            s.release(id, if id == sid(1) { floor } else { 1.0 });
            if id == sid(2) {
                cold_grants += 1;
            }
        }
        // One cold grant per ~1000 warm grants at this floor ratio.
        assert!(
            (4..=7).contains(&cold_grants),
            "cold session got {cold_grants} grants"
        );
    }

    #[test]
    fn nan_charge_is_sanitized_instead_of_poisoning_lease_next() {
        // Regression: a NaN charge used to make the session's virtual
        // time NaN, and the next `lease_next` panicked a worker on
        // `partial_cmp(...).expect("finite virtual time")`.
        let mut s = Scheduler::new();
        s.register(sid(1), 1);
        s.register(sid(2), 1);
        let id = s.lease_next().unwrap();
        s.release(id, f64::NAN);
        // Both sessions still lease and order deterministically.
        let a = s.lease_next().expect("scheduler survives NaN charge");
        let b = s.lease_next().expect("scheduler survives NaN charge");
        assert_ne!(a, b);
        s.release(a, f64::INFINITY); // non-finite likewise dropped
        s.release(b, 1.0);
        assert!(s.charged(a).is_finite());
        assert_eq!(s.lease_next(), Some(a));
    }

    #[test]
    fn negative_charge_never_rewinds_virtual_time() {
        let mut s = Scheduler::new();
        s.register(sid(1), 1);
        let id = s.lease_next().unwrap();
        s.release(id, 5.0);
        let before = s.charged(sid(1));
        let id = s.lease_next().unwrap();
        s.release(id, -100.0);
        assert!(
            s.charged(sid(1)) >= before,
            "virtual time rewound: {} < {before}",
            s.charged(sid(1))
        );
    }

    #[test]
    fn zero_charge_still_advances_virtual_time() {
        // Correctness floor (not the engine's policy floor): each release
        // must advance the clock, so a zero-cost session eventually
        // rotates out even if the caller applies no floor of its own.
        let mut s = Scheduler::new();
        s.register(sid(1), 1);
        let mut last = s.charged(sid(1));
        for _ in 0..10 {
            let id = s.lease_next().unwrap();
            s.release(id, 0.0);
            let now = s.charged(sid(1));
            assert!(now > last, "zero-charge release froze virtual time");
            last = now;
        }
        // The guarantee must survive float absorption: once the
        // accumulated charge is large enough that the epsilon floor is
        // below half an ulp, a plain `+= 1e-9` would round away and
        // re-freeze the clock.
        let id = s.lease_next().unwrap();
        s.release(id, 1e12);
        let mut last = s.charged(sid(1));
        for _ in 0..10 {
            let id = s.lease_next().unwrap();
            s.release(id, 0.0);
            let now = s.charged(sid(1));
            assert!(now > last, "epsilon absorbed at charged_s = {last}");
            last = now;
        }
    }

    #[test]
    fn ties_break_by_session_id() {
        let mut s = Scheduler::new();
        s.register(sid(2), 1);
        s.register(sid(1), 1);
        assert_eq!(s.lease_next(), Some(sid(1)));
    }
}
