//! The client-facing search API: the [`SearchService`] trait.
//!
//! Every consumer of the system — examples, experiments, benchmarks,
//! remote clients — addresses a search service through this one trait:
//! discover repositories ([`SearchService::repos`]), submit queries,
//! stream incremental results with cursor/window backpressure, cancel,
//! wait for final reports, and forget finished sessions. Two
//! interchangeable implementations exist:
//!
//! * [`Engine`](crate::Engine) — in-process: calls go straight to the
//!   worker pool;
//! * `RemoteClient` (in the `exsample-proto` crate) — remote: calls are
//!   encoded onto a versioned binary wire protocol and served by a
//!   `SearchServer` wrapping an engine, so the same code drives a search
//!   service across a socket.
//!
//! Code written against `&dyn SearchService` cannot tell the difference —
//! by design, and by test: the protocol crate asserts remote sessions
//! produce traces identical to in-process ones.
//!
//! # Errors
//!
//! Submission failures are [`SubmitError`] (unknown repository, invalid
//! spec) and are validated *at submit time*, before the query reaches a
//! worker. Session-lifecycle failures are [`ServiceError`]. Both carry a
//! `Transport` variant used only by remote implementations; the in-process
//! engine never returns it.

use crate::cache::CacheStats;
use crate::engine::PersistStats;
use crate::session::{QuerySpec, RepoId, SessionId, SessionReport, SessionSnapshot};
use exsample_obs::{FlightEvent, HistSnapshot, SpanRecord, TraceId};

/// Everything a client can know about a registered repository, returned
/// by the [`SearchService::repos`] catalog call.
///
/// The `(name, dataset_fingerprint)` pair is the repository's *identity*:
/// an engine with persistence resolves it to the same [`RepoId`] across
/// restarts regardless of registration order, so snapshots and cached
/// detections can never be remapped onto the wrong footage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepoInfo {
    /// Stable repository id — what [`QuerySpec::repo`] must carry.
    pub id: RepoId,
    /// Caller-supplied name under which the repository was registered.
    pub name: String,
    /// Number of frames in the repository.
    pub frames: u64,
    /// Number of object classes in its ground truth.
    pub classes: u16,
    /// Structural fingerprint of the footage
    /// (`exsample_persist::dataset_fingerprint`).
    pub dataset_fingerprint: u64,
}

/// Operational counters of one search service: what its detection cache
/// and durable store have been doing. Returned by
/// [`SearchService::stats`], and the unit a cluster router sums per shard
/// into fleet-wide statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Shared detection cache counters (hits, misses, evictions,
    /// residency, warm loads).
    pub cache: CacheStats,
    /// Durable-store counters; `None` when the service runs without
    /// persistence.
    pub persist: Option<PersistStats>,
    /// Sessions currently resident (running or finished-but-not-forgotten).
    pub live_sessions: u64,
}

/// One service's observability snapshot, returned by
/// [`SearchService::diagnostics`]: every latency histogram and counter
/// in its metric registry plus the recent structured events of its
/// flight recorder (see `docs/OBSERVABILITY.md` for the catalog).
///
/// Over the wire this is protocol v5's `DiagnosticsReply`; a cluster
/// router merges the per-shard histograms (by name) and sums the
/// counters into fleet-level distributions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diagnostics {
    /// Latency histogram snapshots, sorted by metric name. Values are
    /// nanoseconds.
    pub histograms: Vec<(String, HistSnapshot)>,
    /// Counter and gauge readings, sorted by metric name.
    pub counters: Vec<(String, u64)>,
    /// Recent flight-recorder events, oldest first. Session ids are
    /// raw [`SessionId`] values (namespaced by cluster routers), with
    /// `u64::MAX` marking unowned work.
    pub events: Vec<FlightEvent>,
}

impl Diagnostics {
    /// The snapshot of the histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s)
    }

    /// The reading of the counter (or gauge) named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }
}

/// Why a submission was rejected. Raised at submit time over both
/// implementations — an invalid spec never reaches a worker thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The spec names a repository id the service does not know.
    UnknownRepo(RepoId),
    /// The spec is structurally invalid (zero chunks or weight, class not
    /// present, non-positive prior, non-finite stop condition, …).
    InvalidSpec(String),
    /// The cluster shard owning the spec's repository is marked down.
    /// Only returned by routing implementations (`exsample-cluster`).
    ShardDown {
        /// Name of the unreachable shard.
        shard: String,
        /// The failure that marked it down.
        cause: String,
    },
    /// The remote transport failed (connection, framing, or protocol
    /// error). Never returned by the in-process engine.
    Transport(String),
    /// The serving layer shed this submission under load (queue depth or
    /// per-tenant quota); the client should retry after the hinted
    /// delay. Never returned by the in-process engine.
    Overloaded {
        /// Server's suggested backoff before retrying.
        retry_after_ms: u64,
    },
    /// The serving layer requires an authenticated tenant for this
    /// operation and the connection has none (or presented a token it
    /// rejected). Never returned by the in-process engine.
    Unauthorized(String),
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::UnknownRepo(r) => write!(f, "unknown repository {r:?}"),
            SubmitError::InvalidSpec(why) => write!(f, "invalid query spec: {why}"),
            SubmitError::ShardDown { shard, cause } => {
                write!(f, "shard {shard:?} is down: {cause}")
            }
            SubmitError::Transport(why) => write!(f, "transport error: {why}"),
            SubmitError::Overloaded { retry_after_ms } => {
                write!(f, "service overloaded; retry after {retry_after_ms} ms")
            }
            SubmitError::Unauthorized(why) => write!(f, "unauthorized: {why}"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why a session-lifecycle call failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The session id was never submitted (or already forgotten).
    UnknownSession(SessionId),
    /// The session is still running (e.g. `forget` before completion).
    SessionRunning(SessionId),
    /// The cluster shard owning the addressed session or resource is
    /// marked down. Only returned by routing implementations
    /// (`exsample-cluster`); calls to healthy shards are unaffected.
    ShardDown {
        /// Name of the unreachable shard.
        shard: String,
        /// The failure that marked it down.
        cause: String,
    },
    /// The peer speaks a different protocol version; the connection was
    /// rejected at the handshake, before any message could be misparsed.
    VersionMismatch {
        /// Protocol version this side speaks.
        ours: u16,
        /// Protocol version the peer announced.
        theirs: u16,
    },
    /// The remote transport failed (connection, framing, or protocol
    /// error). Never returned by the in-process engine.
    Transport(String),
    /// The serving layer shed this call under load; the client should
    /// retry after the hinted delay. Never returned by the in-process
    /// engine.
    Overloaded {
        /// Server's suggested backoff before retrying.
        retry_after_ms: u64,
    },
    /// The serving layer requires an authenticated tenant for this
    /// operation and the connection has none (or presented a token it
    /// rejected). Never returned by the in-process engine.
    Unauthorized(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::UnknownSession(s) => write!(f, "unknown session {s:?}"),
            ServiceError::SessionRunning(s) => write!(f, "session {s:?} is still running"),
            ServiceError::ShardDown { shard, cause } => {
                write!(f, "shard {shard:?} is down: {cause}")
            }
            ServiceError::VersionMismatch { ours, theirs } => write!(
                f,
                "protocol version mismatch: we speak v{ours}, peer speaks v{theirs}"
            ),
            ServiceError::Transport(why) => write!(f, "transport error: {why}"),
            ServiceError::Overloaded { retry_after_ms } => {
                write!(f, "service overloaded; retry after {retry_after_ms} ms")
            }
            ServiceError::Unauthorized(why) => write!(f, "unauthorized: {why}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// A search service: the complete client-facing surface of the engine.
///
/// All methods take `&self` and are safe to call from many threads;
/// implementations are internally synchronized.
///
/// # Poll contract
///
/// [`SearchService::poll`] is a cursor over the session's append-only
/// result-event log. Pass `cursor = 0` first, then the returned
/// [`SessionSnapshot::next_cursor`]; each event is returned exactly once
/// per cursor chain. `window` caps how many events one poll returns
/// (`None` = all available) — a client that acknowledges slowly therefore
/// receives slowly, which is the backpressure story of the remote
/// implementation. A cursor at or past the end of the event log returns
/// an **empty** snapshot (`next_cursor` = log length, current status and
/// counters) — never an error, never out-of-bounds.
pub trait SearchService {
    /// The repository catalog: everything registered with this service,
    /// in id order. Clients resolve names to [`RepoId`]s here instead of
    /// assuming registration order.
    fn repos(&self) -> Result<Vec<RepoInfo>, ServiceError>;

    /// Submit a query for execution. The spec is validated now — a
    /// rejected spec never consumes detector budget.
    fn submit(&self, spec: QuerySpec) -> Result<SessionId, SubmitError>;

    /// Non-blocking progress snapshot; see the trait docs for the
    /// cursor/window contract.
    fn poll(
        &self,
        id: SessionId,
        cursor: u64,
        window: Option<u32>,
    ) -> Result<SessionSnapshot, ServiceError>;

    /// Request cancellation (idempotent; takes effect at the session's
    /// next frame boundary).
    fn cancel(&self, id: SessionId) -> Result<(), ServiceError>;

    /// Block until the session finishes (or is cancelled) and return its
    /// final report.
    fn wait(&self, id: SessionId) -> Result<SessionReport, ServiceError>;

    /// Drop all state of a *finished* session, returning the final report
    /// one last time.
    fn forget(&self, id: SessionId) -> Result<SessionReport, ServiceError>;

    /// Operational counters: cache behaviour, durable-store activity, and
    /// resident session count. Cheap (no detector work); a cluster router
    /// sums this per shard into fleet-wide statistics.
    fn stats(&self) -> Result<ServiceStats, ServiceError>;

    /// The service's observability snapshot: latency histograms,
    /// counters, and recent flight-recorder events. Cheap (atomic loads
    /// plus one ring copy); safe to poll from a metrics scraper. A
    /// cluster router merges this per shard into fleet-level
    /// distributions.
    fn diagnostics(&self) -> Result<Diagnostics, ServiceError>;

    /// The recorded spans of one distributed trace, as a causal tree
    /// rooted at the session span (`exsample_obs::validate_spans`
    /// documents the invariants). Trace ids derive deterministically
    /// from session ids (`TraceId::from_session`); a cluster router
    /// resolves a trace to its owning shard and re-namespaces the
    /// returned spans, so clients collect fleet-wide traces by the same
    /// id they derived locally. Unknown, evicted, or untraced ids
    /// return an empty vector — never an error. The default
    /// implementation returns empty, so services without a span
    /// collector (mocks, thin adapters) stay source-compatible.
    fn collect_trace(&self, trace: TraceId) -> Result<Vec<SpanRecord>, ServiceError> {
        let _ = trace;
        Ok(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert_eq!(
            SubmitError::UnknownRepo(RepoId(3)).to_string(),
            "unknown repository RepoId(3)"
        );
        assert_eq!(
            SubmitError::InvalidSpec("chunks must be positive".into()).to_string(),
            "invalid query spec: chunks must be positive"
        );
        assert_eq!(
            ServiceError::VersionMismatch { ours: 1, theirs: 2 }.to_string(),
            "protocol version mismatch: we speak v1, peer speaks v2"
        );
        assert!(ServiceError::UnknownSession(SessionId(9))
            .to_string()
            .contains("SessionId(9)"));
        assert_eq!(
            ServiceError::ShardDown {
                shard: "shard-b".into(),
                cause: "transport error: broken pipe".into(),
            }
            .to_string(),
            "shard \"shard-b\" is down: transport error: broken pipe"
        );
        assert_eq!(
            SubmitError::ShardDown {
                shard: "shard-b".into(),
                cause: "gone".into(),
            }
            .to_string(),
            "shard \"shard-b\" is down: gone"
        );
    }
}
