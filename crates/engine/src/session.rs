//! Public vocabulary of the engine: queries, sessions, and their
//! observable state.

use exsample_core::belief::ChunkStats;
use exsample_core::driver::{SearchTrace, StopCond};
use exsample_core::exsample::ExSampleConfig;
use exsample_videosim::ClassId;

/// Identifies a video repository registered with an engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RepoId(pub u32);

/// Identifies one submitted search session. Monotonic per engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

/// Identifies one tenant of a shared engine. Assigned by the serving
/// layer's authentication registry (`exsample-serve`); the engine treats
/// it as an opaque accounting key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

/// A tenant identity bound to a submission by an *authenticated* serving
/// layer — never derived from client-controlled spec fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantBinding {
    /// The authenticated tenant.
    pub tenant: TenantId,
    /// Tier weight multiplier (≥ 1): the session's effective scheduler
    /// weight is `spec.weight × weight`, so a paying tenant's sessions
    /// outschedule free-tier ones submitting identical specs.
    pub weight: u32,
}

/// Which discriminator a session uses to decide "is this detection a new
/// distinct object?" (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiscriminatorKind {
    /// Ground-truth identity matching — perfect discrimination, isolating
    /// the sampling question (the paper's simulation-study setting).
    #[default]
    Oracle,
    /// The SORT-style IoU tracker with emulated forward/backward track
    /// extension: exercises duplicate/split noise under concurrency.
    Tracker {
        /// Seed of the tracker's private drift RNG.
        seed: u64,
    },
}

/// A declarative search request: "find distinct objects of `class` in
/// `repo` until `stop`", plus knobs for the sampler and the scheduler.
///
/// A spec is pure data with a stable wire encoding (`exsample-proto`), so
/// the same value drives an in-process engine or a remote search service
/// identically.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Repository to search.
    pub repo: RepoId,
    /// Object class queried.
    pub class: ClassId,
    /// Stop condition (result limit / sample budget / time budget).
    pub stop: StopCond,
    /// Number of temporal chunks for the ExSample policy.
    pub chunks: usize,
    /// Sampler configuration (prior, selector, within-chunk order).
    pub config: ExSampleConfig,
    /// Scheduler priority weight: a weight-2 session receives twice the
    /// detector budget of a weight-1 session.
    pub weight: u32,
    /// Seed for the session's private sampling RNG.
    pub seed: u64,
    /// Discriminator implementation for this session.
    pub discriminator: DiscriminatorKind,
    /// Warm-start chunk beliefs from a persisted snapshot of an earlier
    /// search over the same `(repo, class, chunks)`, when the engine has
    /// persistence configured and a snapshot exists. On by default —
    /// without persistence it is a no-op. Disable for bit-reproducible
    /// replays of a cold run.
    pub warm_start: bool,
    /// Detector batch size for this session (§III-F): the sampler draws
    /// this many Thompson samples *before* seeing any of their outcomes,
    /// and the engine resolves each batch's cache misses with a single
    /// detector dispatch, amortizing the per-dispatch overhead of
    /// `exsample_store::CostModel::dispatch_s`. `None` (the default)
    /// inherits the engine's `EngineConfig::batch`. A batch of 1 is
    /// bit-identical to per-frame stepping; larger batches trade feedback
    /// freshness for dispatch amortization, exactly like real GPU batched
    /// inference.
    pub batch: Option<u32>,
}

impl QuerySpec {
    /// A query with the paper-default sampler over 16 chunks, weight 1,
    /// the oracle discriminator, and warm-starting enabled.
    pub fn new(repo: RepoId, class: ClassId, stop: StopCond) -> Self {
        QuerySpec {
            repo,
            class,
            stop,
            chunks: 16,
            config: ExSampleConfig::default(),
            weight: 1,
            seed: 0,
            discriminator: DiscriminatorKind::default(),
            warm_start: true,
            batch: None,
        }
    }

    /// Set the chunk count.
    pub fn chunks(mut self, chunks: usize) -> Self {
        self.chunks = chunks;
        self
    }

    /// Set the scheduler weight (priority).
    pub fn weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the sampler configuration.
    pub fn config(mut self, config: ExSampleConfig) -> Self {
        self.config = config;
        self
    }

    /// Select the discriminator implementation.
    pub fn discriminator(mut self, kind: DiscriminatorKind) -> Self {
        self.discriminator = kind;
        self
    }

    /// Enable or disable belief warm-starting (see
    /// [`QuerySpec::warm_start`]).
    pub fn warm_start(mut self, warm: bool) -> Self {
        self.warm_start = warm;
        self
    }

    /// Set the detector batch size (see [`QuerySpec::batch`]).
    pub fn batch(mut self, batch: u32) -> Self {
        self.batch = Some(batch);
        self
    }

    /// Structural validation, shared by every
    /// [`SearchService`](crate::SearchService) implementation: every
    /// problem checkable from the spec alone is rejected *at submit
    /// time* — a degenerate prior, for instance, would otherwise panic
    /// deep inside a worker thread's Gamma sampler. Repository and class
    /// existence are the service's job (they need the catalog).
    pub fn validate(&self) -> Result<(), &'static str> {
        if self.chunks == 0 {
            return Err("chunks must be positive");
        }
        if self.weight == 0 {
            return Err("weight must be positive");
        }
        let p = &self.config.prior;
        if !(p.alpha0 > 0.0 && p.alpha0.is_finite() && p.beta0 > 0.0 && p.beta0.is_finite()) {
            return Err("prior pseudo-counts must be positive and finite");
        }
        if self.stop.max_seconds.is_some_and(|s| !s.is_finite()) {
            return Err("stop seconds must be finite");
        }
        if self.batch == Some(0) {
            return Err("batch must be positive");
        }
        Ok(())
    }
}

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionStatus {
    /// Competing for detector budget (includes "queued behind others").
    Running,
    /// Stop condition reached or repository exhausted.
    Done,
    /// Cancelled by the client; the partial trace is preserved.
    Cancelled,
}

/// One incremental result: a frame that yielded new distinct objects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResultEvent {
    /// The frame that was processed.
    pub frame: u64,
    /// How many new distinct results it contributed.
    pub new_results: u32,
    /// Session sample count after this frame.
    pub samples: u64,
    /// Session charged seconds after this frame.
    pub seconds: f64,
}

/// Cost ledger of a session, maintained by the scheduler loop.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SessionCharges {
    /// Modelled detector seconds charged (misses only — hits are free).
    pub detect_s: f64,
    /// Modelled io/decode seconds charged (container seeks + GOP walks).
    pub io_s: f64,
    /// Modelled dispatch-overhead seconds charged: one
    /// `CostModel::dispatch_s` per detector dispatch this session paid
    /// for. Zero unless the engine's cost model prices dispatches.
    pub dispatch_s: f64,
    /// Frames this session processed.
    pub frames: u64,
    /// Frames answered from the shared cache.
    pub cache_hits: u64,
    /// Frames this session paid detector time for.
    pub detector_invocations: u64,
    /// Detector dispatches this session paid for. Per-frame stepping
    /// (`batch = 1`) dispatches once per miss; batched stepping resolves
    /// a whole batch's misses with one dispatch, so
    /// `dispatches ≤ detector_invocations` and the gap is what batching
    /// amortized (§III-F).
    pub dispatches: u64,
}

impl SessionCharges {
    /// Total seconds charged against the scheduler budget.
    pub fn total_s(&self) -> f64 {
        self.detect_s + self.io_s + self.dispatch_s
    }
}

/// Snapshot returned by [`crate::Engine::poll`]: status, aggregate
/// counters, and the result events the caller has not yet consumed.
///
/// # Cursor contract
///
/// The event log is append-only; `cursor` indexes into it. A poll returns
/// the events in `cursor..` (optionally capped by a window) and
/// `next_cursor` set just past the last event returned. A cursor at or
/// past the end of the log yields an empty `events` with `next_cursor`
/// equal to the log length — never an error, never out of bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// Lifecycle state at snapshot time.
    pub status: SessionStatus,
    /// Distinct results found so far.
    pub found: u64,
    /// Frames processed so far.
    pub samples: u64,
    /// Cost ledger so far.
    pub charges: SessionCharges,
    /// Events `cursor..` (pass `next_cursor` back in to continue).
    pub events: Vec<ResultEvent>,
    /// Cursor to pass to the next poll.
    pub next_cursor: u64,
}

/// Final report for a finished session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Lifecycle state (Done or Cancelled).
    pub status: SessionStatus,
    /// The discovery trace, identical in shape to a single-query
    /// `run_search` trace (seconds = charged engine seconds).
    pub trace: SearchTrace,
    /// Cost ledger.
    pub charges: SessionCharges,
    /// 0-based position in the engine's finish order (session 0 finished
    /// first). Useful for observing scheduling effects.
    pub finish_order: u64,
    /// Final per-chunk `(N1, n)` belief statistics of the session's
    /// sampler — exactly what a persistence-enabled engine snapshots for
    /// later warm-starts.
    pub chunk_stats: Vec<ChunkStats>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_spec_builder() {
        let q = QuerySpec::new(RepoId(3), ClassId(1), StopCond::results(5))
            .chunks(32)
            .weight(4)
            .seed(99)
            .discriminator(DiscriminatorKind::Tracker { seed: 5 })
            .warm_start(false)
            .batch(16);
        assert_eq!(q.repo, RepoId(3));
        assert_eq!(q.class, ClassId(1));
        assert_eq!(q.chunks, 32);
        assert_eq!(q.weight, 4);
        assert_eq!(q.seed, 99);
        assert_eq!(q.stop.max_results, Some(5));
        assert_eq!(q.discriminator, DiscriminatorKind::Tracker { seed: 5 });
        assert!(!q.warm_start);
        assert_eq!(q.batch, Some(16));
    }

    #[test]
    fn query_spec_defaults_to_oracle_and_warm_start() {
        let q = QuerySpec::new(RepoId(0), ClassId(0), StopCond::results(1));
        assert_eq!(q.discriminator, DiscriminatorKind::Oracle);
        assert!(q.warm_start);
        assert_eq!(q.batch, None, "batch defaults to the engine's setting");
    }

    #[test]
    fn zero_batch_is_rejected_at_validation() {
        let q = QuerySpec::new(RepoId(0), ClassId(0), StopCond::results(1)).batch(0);
        assert_eq!(q.validate(), Err("batch must be positive"));
        let q = QuerySpec::new(RepoId(0), ClassId(0), StopCond::results(1)).batch(1);
        assert_eq!(q.validate(), Ok(()));
    }

    #[test]
    fn charges_total() {
        let c = SessionCharges {
            detect_s: 1.5,
            io_s: 0.25,
            dispatch_s: 0.5,
            ..Default::default()
        };
        assert!((c.total_s() - 2.25).abs() < 1e-12);
    }
}
