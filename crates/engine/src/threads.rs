//! The workspace-wide worker-thread convention.
//!
//! Every component that fans work out over OS threads — the engine's
//! worker pool and the experiment harness's `parallel_map` — sizes itself
//! through [`default_threads`], so the single `EXSAMPLE_THREADS`
//! environment variable caps parallelism everywhere at once.

/// Number of worker threads to use: respects `EXSAMPLE_THREADS`, defaults
/// to available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("EXSAMPLE_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    #[test]
    fn default_threads_positive() {
        assert!(super::default_threads() > 0);
    }
}
