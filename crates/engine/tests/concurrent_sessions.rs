//! Integration test: many concurrent sessions over one repository must
//! all reach their stop conditions, share detector work through the
//! cache, and produce results that are deterministic under fixed seeds.

use exsample_core::driver::StopCond;
use exsample_detect::NoiseModel;
use exsample_engine::{Engine, EngineConfig, QuerySpec, SessionReport, SessionStatus};
use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, GroundTruth, SkewSpec};
use std::sync::Arc;

fn repository() -> Arc<GroundTruth> {
    // Rare objects in a hot region: sessions chasing high recall sweep
    // overlapping frames.
    Arc::new(
        DatasetSpec::single_class(
            50_000,
            ClassSpec::new("car", 60, 50.0, SkewSpec::CentralNormal { frac95: 0.15 }),
        )
        .generate(41),
    )
}

/// Submit six concurrent sessions (mixed targets, weights, seeds) and
/// wait for all of them.
fn run_fleet(workers: usize) -> (Vec<SessionReport>, u64, u64) {
    run_fleet_batched(workers, 1)
}

/// [`run_fleet`] with a detector batch size (§III-F) for every session.
fn run_fleet_batched(workers: usize, batch: u32) -> (Vec<SessionReport>, u64, u64) {
    let engine = Engine::new(EngineConfig {
        workers,
        quantum: 8,
        batch,
        ..EngineConfig::default()
    });
    let repo = engine.register_repo("it-repo", repository(), NoiseModel::none(), 3);
    let specs: Vec<QuerySpec> = (0..6)
        .map(|i| {
            QuerySpec::new(repo, ClassId(0), StopCond::results(40 + 2 * i as u64))
                .chunks(16)
                .weight(1 + (i % 3) as u32)
                .seed(900 + i as u64)
        })
        .collect();
    let ids: Vec<_> = specs
        .into_iter()
        .map(|s| engine.submit(s).expect("valid spec"))
        .collect();
    let reports: Vec<SessionReport> = ids
        .into_iter()
        .map(|id| engine.wait(id).expect("session finishes"))
        .collect();
    let stats = engine.cache_stats();
    (reports, stats.hits, engine.detector_invocations())
}

#[test]
fn concurrent_sessions_reach_stop_share_cache_and_are_deterministic() {
    let (reports, hits, invocations) = run_fleet(4);

    // Every session reached its StopCond (the result limit, not
    // exhaustion or cancellation).
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.status, SessionStatus::Done, "session {i}");
        assert!(!r.trace.exhausted(), "session {i} exhausted the repository");
        assert!(
            r.trace.found() >= 40 + 2 * i as u64,
            "session {i} under target"
        );
        // The ledger is consistent: every frame was a hit or an invocation.
        assert_eq!(
            r.charges.cache_hits + r.charges.detector_invocations,
            r.charges.frames,
            "session {i} ledger"
        );
        assert_eq!(r.trace.samples(), r.charges.frames, "session {i} samples");
    }

    // Overlap was shared: hits happened, and the engine paid for strictly
    // fewer invocations than the frames it served.
    let total_frames: u64 = reports.iter().map(|r| r.charges.frames).sum();
    assert!(hits > 0, "no cache hits across six overlapping sessions");
    assert_eq!(hits + invocations, total_frames);
    assert!(invocations < total_frames);

    // Determinism: a second engine with the same seeds reproduces every
    // session's sampled-frame count, result count, and discovery curve —
    // and (with no evictions) the same total detector spend — regardless
    // of worker interleaving. Use a different worker count to stress that
    // independence.
    let (again, hits2, invocations2) = run_fleet(2);
    assert_eq!(reports.len(), again.len());
    for (a, b) in reports.iter().zip(&again) {
        assert_eq!(a.trace.samples(), b.trace.samples());
        assert_eq!(a.trace.found(), b.trace.found());
        let curve_a: Vec<(u64, u64)> = a
            .trace
            .points()
            .iter()
            .map(|p| (p.samples, p.found))
            .collect();
        let curve_b: Vec<(u64, u64)> = b
            .trace
            .points()
            .iter()
            .map(|p| (p.samples, p.found))
            .collect();
        assert_eq!(curve_a, curve_b);
    }
    assert_eq!(
        invocations, invocations2,
        "detector spend is not reproducible"
    );
    assert_eq!(hits, hits2);
}

#[test]
fn batched_sessions_are_deterministic_across_worker_counts() {
    // §III-F batched dispatch: the fleet steps in 8-frame detector
    // batches. Each session's frame sequence (and therefore its trace) is
    // a pure function of its spec and batch size — it must not depend on
    // how many workers interleave the sessions or on the hit/miss
    // partition those interleavings produce.
    let (reports, hits, invocations) = run_fleet_batched(4, 8);
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.status, SessionStatus::Done, "session {i}");
        assert!(
            r.trace.found() >= 40 + 2 * i as u64,
            "session {i} under target"
        );
        assert_eq!(
            r.charges.cache_hits + r.charges.detector_invocations,
            r.charges.frames,
            "session {i} ledger"
        );
        // Batching amortizes dispatches: never more dispatches than
        // invocations, and with batches of 8 over a mostly-cold cache,
        // strictly fewer.
        assert!(
            r.charges.dispatches <= r.charges.detector_invocations,
            "session {i}: {} dispatches for {} invocations",
            r.charges.dispatches,
            r.charges.detector_invocations
        );
    }
    let total_dispatches: u64 = reports.iter().map(|r| r.charges.dispatches).sum();
    assert!(
        total_dispatches < invocations,
        "8-frame batches did not amortize dispatches: {total_dispatches} >= {invocations}"
    );
    assert!(hits > 0, "batched sessions stopped sharing the cache");

    let (again, _, invocations2) = run_fleet_batched(1, 8);
    for (a, b) in reports.iter().zip(&again) {
        assert_eq!(a.trace.samples(), b.trace.samples());
        assert_eq!(a.trace.found(), b.trace.found());
        let curve_a: Vec<(u64, u64)> = a
            .trace
            .points()
            .iter()
            .map(|p| (p.samples, p.found))
            .collect();
        let curve_b: Vec<(u64, u64)> = b
            .trace
            .points()
            .iter()
            .map(|p| (p.samples, p.found))
            .collect();
        assert_eq!(curve_a, curve_b, "batched trace depends on worker count");
    }
    assert_eq!(invocations, invocations2);
}

#[test]
fn per_query_batch_override_takes_precedence_over_engine_default() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        quantum: 8,
        batch: 1,
        ..EngineConfig::default()
    });
    let repo = engine.register_repo("it-repo", repository(), NoiseModel::none(), 3);
    // Batch larger than the quantum: capped per lease, still correct.
    let batched = engine
        .submit(
            QuerySpec::new(repo, ClassId(0), StopCond::results(30))
                .chunks(16)
                .seed(77)
                .batch(64),
        )
        .expect("valid spec");
    let per_frame = engine
        .submit(
            QuerySpec::new(repo, ClassId(0), StopCond::results(30))
                .chunks(16)
                .seed(78),
        )
        .expect("valid spec");
    let batched = engine.wait(batched).expect("finishes");
    let per_frame = engine.wait(per_frame).expect("finishes");
    assert!(batched.trace.found() >= 30);
    assert!(per_frame.trace.found() >= 30);
    assert!(
        batched.charges.dispatches < batched.charges.detector_invocations,
        "override ignored: {} dispatches for {} invocations",
        batched.charges.dispatches,
        batched.charges.detector_invocations
    );
    // The engine-default session dispatches per miss.
    assert_eq!(
        per_frame.charges.dispatches,
        per_frame.charges.detector_invocations
    );
}
