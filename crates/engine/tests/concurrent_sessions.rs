//! Integration test: many concurrent sessions over one repository must
//! all reach their stop conditions, share detector work through the
//! cache, and produce results that are deterministic under fixed seeds.

use exsample_core::driver::StopCond;
use exsample_detect::NoiseModel;
use exsample_engine::{Engine, EngineConfig, QuerySpec, SessionReport, SessionStatus};
use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, GroundTruth, SkewSpec};
use std::sync::Arc;

fn repository() -> Arc<GroundTruth> {
    // Rare objects in a hot region: sessions chasing high recall sweep
    // overlapping frames.
    Arc::new(
        DatasetSpec::single_class(
            50_000,
            ClassSpec::new("car", 60, 50.0, SkewSpec::CentralNormal { frac95: 0.15 }),
        )
        .generate(41),
    )
}

/// Submit six concurrent sessions (mixed targets, weights, seeds) and
/// wait for all of them.
fn run_fleet(workers: usize) -> (Vec<SessionReport>, u64, u64) {
    let engine = Engine::new(EngineConfig {
        workers,
        quantum: 8,
        ..EngineConfig::default()
    });
    let repo = engine.register_repo("it-repo", repository(), NoiseModel::none(), 3);
    let specs: Vec<QuerySpec> = (0..6)
        .map(|i| {
            QuerySpec::new(repo, ClassId(0), StopCond::results(40 + 2 * i as u64))
                .chunks(16)
                .weight(1 + (i % 3) as u32)
                .seed(900 + i as u64)
        })
        .collect();
    let ids: Vec<_> = specs
        .into_iter()
        .map(|s| engine.submit(s).expect("valid spec"))
        .collect();
    let reports: Vec<SessionReport> = ids
        .into_iter()
        .map(|id| engine.wait(id).expect("session finishes"))
        .collect();
    let stats = engine.cache_stats();
    (reports, stats.hits, engine.detector_invocations())
}

#[test]
fn concurrent_sessions_reach_stop_share_cache_and_are_deterministic() {
    let (reports, hits, invocations) = run_fleet(4);

    // Every session reached its StopCond (the result limit, not
    // exhaustion or cancellation).
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.status, SessionStatus::Done, "session {i}");
        assert!(!r.trace.exhausted(), "session {i} exhausted the repository");
        assert!(
            r.trace.found() >= 40 + 2 * i as u64,
            "session {i} under target"
        );
        // The ledger is consistent: every frame was a hit or an invocation.
        assert_eq!(
            r.charges.cache_hits + r.charges.detector_invocations,
            r.charges.frames,
            "session {i} ledger"
        );
        assert_eq!(r.trace.samples(), r.charges.frames, "session {i} samples");
    }

    // Overlap was shared: hits happened, and the engine paid for strictly
    // fewer invocations than the frames it served.
    let total_frames: u64 = reports.iter().map(|r| r.charges.frames).sum();
    assert!(hits > 0, "no cache hits across six overlapping sessions");
    assert_eq!(hits + invocations, total_frames);
    assert!(invocations < total_frames);

    // Determinism: a second engine with the same seeds reproduces every
    // session's sampled-frame count, result count, and discovery curve —
    // and (with no evictions) the same total detector spend — regardless
    // of worker interleaving. Use a different worker count to stress that
    // independence.
    let (again, hits2, invocations2) = run_fleet(2);
    assert_eq!(reports.len(), again.len());
    for (a, b) in reports.iter().zip(&again) {
        assert_eq!(a.trace.samples(), b.trace.samples());
        assert_eq!(a.trace.found(), b.trace.found());
        let curve_a: Vec<(u64, u64)> = a
            .trace
            .points()
            .iter()
            .map(|p| (p.samples, p.found))
            .collect();
        let curve_b: Vec<(u64, u64)> = b
            .trace
            .points()
            .iter()
            .map(|p| (p.samples, p.found))
            .collect();
        assert_eq!(curve_a, curve_b);
    }
    assert_eq!(
        invocations, invocations2,
        "detector spend is not reproducible"
    );
    assert_eq!(hits, hits2);
}
