//! The instrumentation contract: the flight recorder accounts for every
//! detector invocation via dispatch spans (at batch sizes 1 and 8), the
//! event counts are deterministic across worker counts, and switching
//! observability off changes nothing about the search results.

use exsample_core::driver::StopCond;
use exsample_detect::NoiseModel;
use exsample_engine::{Diagnostics, Engine, EngineConfig, QuerySpec, SearchService};
use exsample_obs::{validate_spans, SpanId, Stage, TraceId};
use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, GroundTruth, SkewSpec};
use std::sync::Arc;

fn truth() -> Arc<GroundTruth> {
    Arc::new(
        DatasetSpec::single_class(
            20_000,
            ClassSpec::new("car", 60, 200.0, SkewSpec::CentralNormal { frac95: 0.2 }),
        )
        .generate(17),
    )
}

/// Run one fixed session to completion and return the diagnostics plus
/// the engine's detector-invocation count.
fn run_session(workers: usize, batch: u32) -> (Diagnostics, u64, Vec<(u64, u64)>) {
    let engine = Engine::new(EngineConfig {
        workers,
        quantum: 8,
        flight_capacity: 16_384,
        ..EngineConfig::default()
    });
    let repo = engine.register_repo("cam", truth(), NoiseModel::none(), 5);
    let spec = QuerySpec::new(repo, ClassId(0), StopCond::samples(400))
        .seed(9)
        .batch(batch);
    let id = engine.submit(spec).unwrap();
    let report = engine.wait(id).unwrap();
    let curve = report
        .trace
        .points()
        .iter()
        .map(|p| (p.samples, p.found))
        .collect();
    (engine.diagnostics(), engine.detector_invocations(), curve)
}

/// Every detector invocation is covered by a dispatch span: the sum of
/// dispatch-event keys (misses per dispatch) equals the engine's
/// invocation count, at single-frame and batched dispatch alike.
#[test]
fn dispatch_events_account_for_every_invocation() {
    for batch in [1u32, 8] {
        let (diag, invocations, _) = run_session(2, batch);
        assert!(invocations > 0, "workload must run the detector");
        let dispatch_events: Vec<_> = diag
            .events
            .iter()
            .filter(|e| e.stage == Stage::Dispatch)
            .collect();
        let covered: u64 = dispatch_events.iter().map(|e| e.key).sum();
        assert_eq!(
            covered, invocations,
            "batch={batch}: dispatch events must cover every detector invocation"
        );
        // The dispatch histogram agrees with the event log.
        let hist = diag.histogram("dispatch_ns").expect("dispatch histogram");
        assert_eq!(hist.total(), dispatch_events.len() as u64);
        // At B=1 every dispatch resolves exactly one miss.
        if batch == 1 {
            assert!(dispatch_events.iter().all(|e| e.key == 1));
        }
    }
}

/// A single session's event *counts* are a pure function of the spec —
/// identical across worker-pool sizes, like the trace itself.
#[test]
fn event_counts_deterministic_across_worker_counts() {
    for batch in [1u32, 8] {
        let (d1, inv1, curve1) = run_session(1, batch);
        let (d4, inv4, curve4) = run_session(4, batch);
        assert_eq!(curve1, curve4, "trace determinism (batch={batch})");
        assert_eq!(inv1, inv4, "invocation determinism (batch={batch})");
        let count =
            |d: &Diagnostics, stage: Stage| d.events.iter().filter(|e| e.stage == stage).count();
        for stage in [Stage::Dispatch, Stage::CacheWait] {
            assert_eq!(
                count(&d1, stage),
                count(&d4, stage),
                "event count for {stage} (batch={batch})"
            );
        }
        // Histogram totals for per-frame work agree too.
        for name in ["dispatch_ns", "batch_assembly_ns"] {
            assert_eq!(
                d1.histogram(name).unwrap().total(),
                d4.histogram(name).unwrap().total(),
                "{name} total (batch={batch})"
            );
        }
        assert_eq!(d1.counter("frames_total"), d4.counter("frames_total"));
    }
}

/// Observability off: identical results, all-zero diagnostics with the
/// same metric shape.
#[test]
fn observe_off_is_inert_but_shape_stable() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        quantum: 8,
        observe: false,
        ..EngineConfig::default()
    });
    let repo = engine.register_repo("cam", truth(), NoiseModel::none(), 5);
    let id = engine
        .submit(
            QuerySpec::new(repo, ClassId(0), StopCond::samples(200))
                .seed(9)
                .batch(4),
        )
        .unwrap();
    engine.wait(id).unwrap();
    let diag = engine.diagnostics();
    assert!(diag.events.is_empty());
    assert!(diag.histograms.iter().all(|(_, s)| s.is_empty()));
    assert!(diag.counters.iter().all(|(_, v)| *v == 0));
    assert!(diag.histogram("dispatch_ns").is_some());
}

/// Tracing is observational-only: the search trace is bit-identical
/// with tracing on or off (and with observability off entirely).
#[test]
fn tracing_on_or_off_is_bit_identical() {
    let run = |observe: bool, trace: bool| {
        let engine = Engine::new(EngineConfig {
            workers: 2,
            quantum: 8,
            observe,
            trace,
            ..EngineConfig::default()
        });
        let repo = engine.register_repo("cam", truth(), NoiseModel::none(), 5);
        let id = engine
            .submit(
                QuerySpec::new(repo, ClassId(0), StopCond::samples(300))
                    .seed(11)
                    .batch(4),
            )
            .unwrap();
        let report = engine.wait(id).unwrap();
        (
            report.trace.points().to_vec(),
            report.charges.frames,
            engine.detector_invocations(),
        )
    };
    let traced = run(true, true);
    assert_eq!(traced, run(true, false), "tracing off must change nothing");
    assert_eq!(traced, run(false, false), "observe off must change nothing");
    assert_eq!(traced, run(false, true), "trace without observe is inert");
}

/// A completed session's collected spans form a valid causal tree
/// rooted at the session span, covering the layers the engine touched.
#[test]
fn collected_trace_is_a_valid_session_tree() {
    let engine = Engine::new(EngineConfig {
        workers: 2,
        quantum: 8,
        ..EngineConfig::default()
    });
    let repo = engine.register_repo("cam", truth(), NoiseModel::none(), 5);
    let id = engine
        .submit(QuerySpec::new(repo, ClassId(0), StopCond::samples(200)).seed(7))
        .unwrap();
    engine.wait(id).unwrap();
    let spans = engine.collect_trace(TraceId::from_session(id.0));
    assert!(!spans.is_empty(), "a finished session must have a trace");
    validate_spans(&spans).expect("causal tree invariants");
    let root = &spans[0];
    assert_eq!(root.id, SpanId::ROOT);
    assert_eq!(root.stage, Stage::Session);
    assert_eq!(root.session, id.0);
    assert!(root.duration_ns > 0, "root closed at session finish");
    assert!(
        spans.iter().any(|s| s.stage == Stage::Submit),
        "submit span recorded"
    );
    assert!(
        spans.iter().any(|s| s.stage == Stage::Dispatch),
        "dispatch spans recorded"
    );
    // Every span belongs to this session's trace and session id.
    assert!(spans.iter().all(|s| s.session == id.0));
    // With trace=false the same engine shape collects nothing.
    let dark = Engine::new(EngineConfig {
        workers: 2,
        quantum: 8,
        trace: false,
        ..EngineConfig::default()
    });
    let repo = dark.register_repo("cam", truth(), NoiseModel::none(), 5);
    let id = dark
        .submit(QuerySpec::new(repo, ClassId(0), StopCond::samples(100)).seed(7))
        .unwrap();
    dark.wait(id).unwrap();
    assert!(dark.collect_trace(TraceId::from_session(id.0)).is_empty());
}

/// The trait object surfaces diagnostics like the concrete engine.
#[test]
fn diagnostics_via_trait_object() {
    let engine = Engine::new(EngineConfig {
        workers: 1,
        ..EngineConfig::default()
    });
    let repo = engine.register_repo("cam", truth(), NoiseModel::none(), 5);
    let svc: &dyn SearchService = &engine;
    let id = svc
        .submit(QuerySpec::new(repo, ClassId(0), StopCond::samples(100)).seed(3))
        .unwrap();
    svc.wait(id).unwrap();
    let diag = svc.diagnostics().unwrap();
    assert!(diag.histogram("dispatch_ns").unwrap().total() > 0);
    assert!(diag.counter("sessions_finished_total").unwrap() >= 1);
}
