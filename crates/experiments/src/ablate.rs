//! Ablations called out in DESIGN.md.
//!
//! * **Prior** — sensitivity to `(α0, β0)` (paper §III-C: "we did not
//!   observe a strong dependence on this value choice").
//! * **Selector** — Thompson vs Bayes-UCB vs greedy point estimate
//!   (paper: Bayes-UCB "did not observe different results"; greedy is the
//!   §III-B strawman).
//! * **Within-chunk order** — random+ vs plain random inside chunks
//!   (paper §III-F).
//! * **Batch size** — batched Thompson sampling `B ∈ {1, 8, 64}`
//!   (paper §III-F: feedback is delayed by a batch, throughput rises).
//! * **Fusion** — the §VII future-work sketch: adaptive chunk selection
//!   with score-descending order inside chunks, vs plain ExSample and
//!   pure proxy ordering.

use crate::report::Table;
use crate::runner::{median_samples_to, replicate_runs, PolicySpec, RunConfig};
use crate::Scale;
use exsample_core::belief::{BeliefPrior, Selector};
use exsample_core::driver::StopCond;
use exsample_core::exsample::{ExSample, ExSampleConfig};
use exsample_core::policy::SamplingPolicy;
use exsample_core::within::WithinKind;
use exsample_core::Chunking;
use exsample_stats::{quantile, Rng64};
use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, GroundTruth, SkewSpec};
use std::sync::Arc;

/// The shared ablation workload: a skewed single-class dataset.
#[derive(Debug, Clone)]
pub struct AblationWorkload {
    /// Ground truth.
    pub gt: Arc<GroundTruth>,
    /// Chunking for ExSample variants.
    pub chunking: Chunking,
    /// Result target for "samples to target" measurements.
    pub target: u64,
    /// Replicates.
    pub runs: usize,
    /// Sample cap.
    pub max_samples: u64,
    /// Root seed.
    pub seed: u64,
}

impl AblationWorkload {
    /// Standard workload at a scale.
    pub fn at_scale(scale: Scale) -> Self {
        let (frames, instances, dur, chunks, runs, max_samples, target) = match scale {
            Scale::Full => (
                2_000_000u64,
                1000usize,
                90.0,
                64usize,
                15usize,
                150_000u64,
                500u64,
            ),
            Scale::Quick => (400_000, 400, 40.0, 32, 5, 30_000, 200),
        };
        let spec = DatasetSpec::single_class(
            frames,
            ClassSpec::new(
                "object",
                instances,
                dur,
                SkewSpec::CentralNormal { frac95: 1.0 / 32.0 },
            ),
        );
        AblationWorkload {
            gt: Arc::new(spec.generate(71)),
            chunking: Chunking::even(frames, chunks),
            target,
            runs,
            max_samples,
            seed: 72,
        }
    }

    fn run_cfg(&self) -> RunConfig {
        RunConfig {
            runs: self.runs,
            stop: StopCond::results(self.target).or_samples(self.max_samples),
            detect_fps: 20.0,
            base_seed: self.seed,
            threads: crate::parallel::default_threads(),
        }
    }

    /// Median samples-to-target for an ExSample configuration.
    pub fn measure(&self, config: ExSampleConfig) -> Option<f64> {
        let spec = PolicySpec::ExSample {
            chunking: self.chunking.clone(),
            config,
        };
        let traces = replicate_runs(&self.gt, ClassId(0), &spec, &self.run_cfg());
        median_samples_to(&traces, self.target)
    }

    /// Median samples-to-target for a baseline policy.
    pub fn measure_policy(&self, spec: PolicySpec) -> Option<f64> {
        let traces = replicate_runs(&self.gt, ClassId(0), &spec, &self.run_cfg());
        median_samples_to(&traces, self.target)
    }
}

/// Prior-sensitivity ablation: grid over `(α0, β0)`.
pub fn prior_table(w: &AblationWorkload) -> Table {
    let mut t = Table::new(&["alpha0", "beta0", "median samples to target"]);
    for &a0 in &[0.01, 0.1, 1.0] {
        for &b0 in &[0.1, 1.0, 10.0] {
            let cfg = ExSampleConfig {
                prior: BeliefPrior::new(a0, b0),
                ..ExSampleConfig::default()
            };
            let med = w.measure(cfg);
            t.row(vec![
                format!("{a0}"),
                format!("{b0}"),
                med.map(|m| format!("{m:.0}")).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    t
}

/// Selector ablation: Thompson vs Bayes-UCB vs greedy, plus random.
pub fn selector_table(w: &AblationWorkload) -> Table {
    let mut t = Table::new(&["selector", "median samples to target"]);
    for sel in [Selector::Thompson, Selector::BayesUcb, Selector::Greedy] {
        let cfg = ExSampleConfig {
            selector: sel,
            ..ExSampleConfig::default()
        };
        let med = w.measure(cfg);
        t.row(vec![
            sel.name().to_string(),
            med.map(|m| format!("{m:.0}")).unwrap_or_else(|| "-".into()),
        ]);
    }
    let rnd = w.measure_policy(PolicySpec::Random);
    t.row(vec![
        "(random baseline)".into(),
        rnd.map(|m| format!("{m:.0}")).unwrap_or_else(|| "-".into()),
    ]);
    t
}

/// Within-chunk order ablation: stratified random+ vs plain random, both
/// inside ExSample and as whole-dataset baselines.
pub fn within_table(w: &AblationWorkload) -> Table {
    let mut t = Table::new(&["sampler", "median samples to target"]);
    for (label, within) in [
        ("exsample + random+", WithinKind::Stratified),
        ("exsample + random", WithinKind::Random),
    ] {
        let cfg = ExSampleConfig {
            within,
            ..ExSampleConfig::default()
        };
        let med = w.measure(cfg);
        t.row(vec![
            label.into(),
            med.map(|m| format!("{m:.0}")).unwrap_or_else(|| "-".into()),
        ]);
    }
    for (label, spec) in [
        ("random+ (no chunks)", PolicySpec::RandomPlus),
        ("random (no chunks)", PolicySpec::Random),
    ] {
        let med = w.measure_policy(spec);
        t.row(vec![
            label.into(),
            med.map(|m| format!("{m:.0}")).unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

/// Median samples-to-target under batched Thompson sampling with batch
/// size `b` (feedback only lands after a whole batch is processed).
pub fn batched_samples_to_target(w: &AblationWorkload, b: usize) -> Option<f64> {
    let root = Rng64::new(w.seed ^ 0xBA7C);
    let per_run: Vec<Option<u64>> =
        crate::parallel::parallel_map(w.runs, crate::parallel::default_threads(), |r| {
            let mut rng = root.fork(r as u64);
            let mut policy = ExSample::new(w.chunking.clone(), ExSampleConfig::default());
            let mut oracle = exsample_detect::QueryOracle::new(
                exsample_detect::SimulatedDetector::perfect(w.gt.clone(), ClassId(0)),
                exsample_detect::OracleDiscriminator::new(),
            );
            let mut batch = Vec::new();
            let mut samples = 0u64;
            let mut found = 0u64;
            while samples < w.max_samples {
                policy.next_batch(b, &mut rng, &mut batch);
                if batch.is_empty() {
                    break;
                }
                // Process the whole batch, then deliver feedback (the GPU
                // batching model of §III-F: updates are commutative).
                let outcomes: Vec<_> = batch.iter().map(|&f| (f, oracle.process(f))).collect();
                for (f, fb) in outcomes {
                    policy.feedback(f, fb);
                    found += fb.new_results as u64;
                    samples += 1;
                    if found >= w.target {
                        return Some(samples);
                    }
                }
            }
            None
        });
    let reached: Vec<f64> = per_run.iter().flatten().map(|&s| s as f64).collect();
    if reached.len() * 2 < w.runs {
        None
    } else {
        Some(quantile(&reached, 0.5))
    }
}

/// §VII fusion study: ExSample chunk selection with score-descending
/// within-chunk order, vs plain ExSample and pure proxy ordering.
/// Measured in *samples* to target — the scan needed to produce scores is
/// reported separately (it is exactly what the fusion's future-work
/// "predictive scoring" would remove).
pub fn fusion_table(w: &AblationWorkload, fidelity: f64) -> Table {
    use exsample_baselines::ProxyOrderPolicy;
    use exsample_detect::ProxyModel;
    let proxy = ProxyModel::build(&w.gt, ClassId(0), fidelity, w.seed ^ 0xF0);
    let scores: Arc<Vec<f32>> = Arc::new((0..w.gt.frames).map(|f| proxy.score(f)).collect());
    let order = proxy.descending_order();

    let root = Rng64::new(w.seed ^ 0xF1);
    let measure = |mk: &dyn Fn() -> Box<dyn SamplingPolicy>| -> Option<f64> {
        let per_run: Vec<Option<u64>> = (0..w.runs)
            .map(|r| {
                let mut rng = root.fork(r as u64);
                let mut policy = mk();
                let mut oracle = exsample_detect::QueryOracle::new(
                    exsample_detect::SimulatedDetector::perfect(w.gt.clone(), ClassId(0)),
                    exsample_detect::OracleDiscriminator::new(),
                );
                let mut found = 0u64;
                for samples in 1..=w.max_samples {
                    let f = policy.next_frame(&mut rng)?;
                    let fb = oracle.process(f);
                    policy.feedback(f, fb);
                    found += fb.new_results as u64;
                    if found >= w.target {
                        return Some(samples);
                    }
                }
                None
            })
            .collect();
        let reached: Vec<f64> = per_run.iter().flatten().map(|&s| s as f64).collect();
        if reached.len() * 2 < w.runs {
            None
        } else {
            Some(quantile(&reached, 0.5))
        }
    };

    let mut t = Table::new(&[
        "policy",
        "median samples to target",
        "requires scoring scan",
    ]);
    let fmt = |m: Option<f64>| m.map(|v| format!("{v:.0}")).unwrap_or_else(|| "-".into());
    let chunking = w.chunking.clone();
    let m_plain = measure(&|| Box::new(ExSample::new(chunking.clone(), ExSampleConfig::default())));
    t.row(vec![
        "exsample (random+ within)".into(),
        fmt(m_plain),
        "no".into(),
    ]);
    let chunking2 = w.chunking.clone();
    let scores2 = scores.clone();
    let m_fused = measure(&|| {
        Box::new(ExSample::fused(
            chunking2.clone(),
            ExSampleConfig::default(),
            &scores2,
        ))
    });
    t.row(vec![
        format!("exsample fused (scores; fid {fidelity})"),
        fmt(m_fused),
        "yes".into(),
    ]);
    let m_proxy = measure(&|| Box::new(ProxyOrderPolicy::new(order.clone(), 0)));
    t.row(vec![
        format!("proxy-order (fid {fidelity})"),
        fmt(m_proxy),
        "yes".into(),
    ]);
    t
}

/// Batch-size ablation table.
pub fn batch_table(w: &AblationWorkload) -> Table {
    let mut t = Table::new(&["batch size B", "median samples to target"]);
    for b in [1usize, 8, 64] {
        let med = batched_samples_to_target(w, b);
        t.row(vec![
            b.to_string(),
            med.map(|m| format!("{m:.0}")).unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationWorkload {
        let spec = DatasetSpec::single_class(
            100_000,
            ClassSpec::new(
                "object",
                200,
                40.0,
                SkewSpec::CentralNormal { frac95: 1.0 / 16.0 },
            ),
        );
        AblationWorkload {
            gt: Arc::new(spec.generate(3)),
            chunking: Chunking::even(100_000, 16),
            target: 100,
            runs: 5,
            max_samples: 20_000,
            seed: 4,
        }
    }

    #[test]
    fn priors_are_not_load_bearing() {
        // Paper: no strong dependence on (α0, β0). Compare two priors an
        // order of magnitude apart; medians should be within 3x.
        let w = tiny();
        let a = w
            .measure(ExSampleConfig {
                prior: BeliefPrior::new(0.01, 1.0),
                ..ExSampleConfig::default()
            })
            .unwrap();
        let b = w
            .measure(ExSampleConfig {
                prior: BeliefPrior::new(1.0, 1.0),
                ..ExSampleConfig::default()
            })
            .unwrap();
        let ratio = a.max(b) / a.min(b);
        assert!(ratio < 3.0, "a={a} b={b}");
    }

    #[test]
    fn thompson_and_bayes_ucb_comparable() {
        let w = tiny();
        let t = w
            .measure(ExSampleConfig {
                selector: Selector::Thompson,
                ..Default::default()
            })
            .unwrap();
        let u = w
            .measure(ExSampleConfig {
                selector: Selector::BayesUcb,
                ..Default::default()
            })
            .unwrap();
        let ratio = t.max(u) / t.min(u);
        assert!(ratio < 3.0, "thompson={t} bayes-ucb={u}");
    }

    #[test]
    fn batching_costs_little() {
        let w = tiny();
        let b1 = batched_samples_to_target(&w, 1).unwrap();
        let b64 = batched_samples_to_target(&w, 64).unwrap();
        // Delayed feedback wastes some samples but not an order of
        // magnitude at this scale.
        assert!(b64 < b1 * 4.0, "b1={b1} b64={b64}");
    }

    #[test]
    fn tables_render() {
        let w = tiny();
        assert_eq!(selector_table(&w).len(), 4);
        assert_eq!(within_table(&w).len(), 4);
        assert_eq!(batch_table(&w).len(), 3);
    }

    #[test]
    fn fusion_with_good_scores_beats_plain_exsample_on_samples() {
        let w = tiny();
        let t = fusion_table(&w, 0.95);
        let md = t.to_csv();
        let rows: Vec<Vec<&str>> = md.lines().skip(1).map(|l| l.split(',').collect()).collect();
        assert_eq!(rows.len(), 3);
        let plain: f64 = rows[0][1].parse().expect("plain measured");
        let fused: f64 = rows[1][1].parse().expect("fused measured");
        // A near-perfect proxy inside chunks should need no more samples
        // than random+ inside chunks (usually far fewer).
        assert!(fused <= plain * 1.2, "fused={fused} plain={plain}");
    }
}
