//! §III-D variance-bound coverage check.
//!
//! The paper tests Eq. III.3 on BDD-MOT ground truth: "the 95% confidence
//! bound derived from Eq. III.3 includes the actual expected reward about
//! 80% of the time (with some variation across classes) … our variance
//! estimate is a slight underestimate".
//!
//! We replicate the protocol: run random sampling over the BDD-MOT preset;
//! at log-spaced checkpoints form the interval
//! `N1/n ± 1.96·sqrt((N1+α0)/n²)` and check whether it contains the true
//! expected reward `R(n+1) = Σ_unseen p_i`.

use crate::presets::dataset;
use crate::report::Table;
use crate::Scale;
use exsample_stats::{FxHashMap, Rng64, UniformNoReplacement};
use exsample_videosim::{ClassId, GroundTruth, InstanceId};

/// Coverage measurement for one class.
#[derive(Debug, Clone)]
pub struct ClassCoverage {
    /// Class name.
    pub class: String,
    /// Number of (run, checkpoint) interval evaluations.
    pub evaluations: usize,
    /// Fraction of intervals containing the true expected reward.
    pub coverage: f64,
    /// Fraction of misses where the true value exceeded the upper bound
    /// (evidence of variance underestimation, as the paper observed).
    pub miss_above: f64,
}

/// Study configuration.
#[derive(Debug, Clone, Copy)]
pub struct CoverageConfig {
    /// Replicate runs per class.
    pub runs: usize,
    /// Samples per run.
    pub samples: u64,
    /// Checkpoints per run (log-spaced).
    pub checkpoints: usize,
    /// Root seed.
    pub seed: u64,
}

impl CoverageConfig {
    /// Paper-scale / smoke-scale settings.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => CoverageConfig {
                runs: 20,
                samples: 40_000,
                checkpoints: 12,
                seed: 61,
            },
            Scale::Quick => CoverageConfig {
                runs: 5,
                samples: 10_000,
                checkpoints: 8,
                seed: 61,
            },
        }
    }
}

/// Run the coverage study on one class of a ground truth.
pub fn class_coverage(gt: &GroundTruth, class: ClassId, cfg: &CoverageConfig) -> ClassCoverage {
    const ALPHA0: f64 = 0.1;
    let p: FxHashMap<InstanceId, f64> = gt
        .instances_of_class(class)
        .map(|i| (i.id, i.hit_probability(gt.frames)))
        .collect();
    let total_p: f64 = p.values().sum();
    let checkpoints: Vec<u64> = crate::runner::log_checkpoints(cfg.samples, 4)
        .into_iter()
        .rev()
        .take(cfg.checkpoints)
        .rev()
        .collect();

    let root = Rng64::new(cfg.seed ^ (class.0 as u64) << 32);
    let mut evaluations = 0usize;
    let mut hits = 0usize;
    let mut above = 0usize;
    let mut vis = Vec::new();
    for run in 0..cfg.runs {
        let mut rng = root.fork(run as u64);
        let mut sampler = UniformNoReplacement::new(gt.frames);
        let mut seen: FxHashMap<InstanceId, u32> = FxHashMap::default();
        let mut seen_p = 0.0f64;
        let mut n1 = 0i64;
        let mut cp_iter = checkpoints.iter().copied().peekable();
        for n in 1..=cfg.samples {
            let Some(frame) = sampler.next(&mut rng) else {
                break;
            };
            gt.visible_at(class, frame, &mut vis);
            for &id in &vis {
                let c = seen.entry(id).or_insert(0);
                *c += 1;
                match *c {
                    1 => {
                        n1 += 1;
                        seen_p += p[&id];
                    }
                    2 => n1 -= 1,
                    _ => {}
                }
            }
            if cp_iter.peek() == Some(&n) {
                cp_iter.next();
                let est = n1 as f64 / n as f64;
                let sd = ((n1 as f64 + ALPHA0).max(0.0)).sqrt() / n as f64;
                let (lo, hi) = (est - 1.96 * sd, est + 1.96 * sd);
                let truth = total_p - seen_p; // Σ p_i over unseen instances
                evaluations += 1;
                if truth >= lo && truth <= hi {
                    hits += 1;
                } else if truth > hi {
                    above += 1;
                }
            }
        }
    }
    let misses = evaluations - hits;
    ClassCoverage {
        class: gt.class_name(class).to_string(),
        evaluations,
        coverage: if evaluations == 0 {
            0.0
        } else {
            hits as f64 / evaluations as f64
        },
        miss_above: if misses == 0 {
            0.0
        } else {
            above as f64 / misses as f64
        },
    }
}

/// Run the study over every BDD-MOT class.
pub fn run(scale: Scale) -> Vec<ClassCoverage> {
    let cfg = CoverageConfig::at_scale(scale);
    let ds = dataset("BDD MOT").expect("preset exists");
    let gt = ds.dataset_spec().generate(1001); // matches table1's BDD MOT seed
    (0..ds.classes.len())
        .map(|ci| class_coverage(&gt, ClassId(ci as u16), &cfg))
        .collect()
}

/// Render as a table.
pub fn to_table(rows: &[ClassCoverage]) -> Table {
    let mut t = Table::new(&["class", "evaluations", "coverage", "misses above bound"]);
    for r in rows {
        t.row(vec![
            r.class.clone(),
            r.evaluations.to_string(),
            format!("{:.0}%", r.coverage * 100.0),
            format!("{:.0}%", r.miss_above * 100.0),
        ]);
    }
    t
}

/// Mean coverage across classes (paper: ≈80%).
pub fn mean_coverage(rows: &[ClassCoverage]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.coverage).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_videosim::{ClassSpec, DatasetSpec, SkewSpec};

    #[test]
    fn coverage_in_plausible_band() {
        // Small synthetic check: coverage should be substantial but the
        // bound is known to be slightly anti-conservative (paper: ~80%).
        let gt = DatasetSpec::single_class(
            100_000,
            ClassSpec::new("car", 300, 120.0, SkewSpec::Uniform),
        )
        .generate(8);
        let cfg = CoverageConfig {
            runs: 10,
            samples: 8_000,
            checkpoints: 8,
            seed: 2,
        };
        let c = class_coverage(&gt, ClassId(0), &cfg);
        assert!(c.evaluations >= 60, "evaluations={}", c.evaluations);
        assert!(
            c.coverage > 0.5 && c.coverage <= 1.0,
            "coverage={}",
            c.coverage
        );
    }

    #[test]
    fn table_and_mean() {
        let rows = vec![
            ClassCoverage {
                class: "a".into(),
                evaluations: 10,
                coverage: 0.8,
                miss_above: 1.0,
            },
            ClassCoverage {
                class: "b".into(),
                evaluations: 10,
                coverage: 0.6,
                miss_above: 0.5,
            },
        ];
        assert!((mean_coverage(&rows) - 0.7).abs() < 1e-12);
        assert_eq!(to_table(&rows).len(), 2);
    }
}
