//! Engine-shared vs. independent execution of overlapping queries.
//!
//! The multi-query engine's pitch is simple: when concurrent queries
//! overlap on the same videos, a shared detection cache means the fleet
//! pays for each frame once. This experiment quantifies that claim. A
//! batch of overlapping queries is executed twice over the same synthetic
//! repository:
//!
//! 1. **independent** — each query runs the classic blocking `run_search`
//!    with its own detector, exactly as a one-query-per-process deployment
//!    would (total detector invocations = total frames sampled);
//! 2. **engine-shared** — the same queries run concurrently through
//!    `exsample_engine::Engine` with a shared [`exsample_engine::FrameCache`].
//!
//! Per-query results are identical by construction (same seeds, same
//! deterministic detector), so the comparison isolates the *cost* effect:
//! invocations saved, cache hit rate, and modelled GPU seconds.
//!
//! The engine-shared strategy is driven through the
//! [`SearchService`] trait, so the *same* harness code can target the
//! in-process engine, a `SearchServer` behind the wire protocol (via
//! [`run_remote`]), or a whole fleet behind an
//! [`exsample_cluster::ShardRouter`] (via [`run_on_cluster`]) — all of
//! which must (and are tested to) produce identical results.
//!
//! A second comparison, [`run_batched_cmp`], quantifies §III-F batched
//! dispatch: the same exhaustive workload with one detector dispatch per
//! cache miss versus one dispatch per batch of misses. Both find the
//! complete, identical result set; batching pays strictly fewer modelled
//! dispatch-seconds.

use crate::parallel::default_threads;
use exsample_cluster::{ShardRouter, ShardService};
use exsample_core::driver::{run_search, SearchCost, StopCond};
use exsample_core::exsample::{ExSample, ExSampleConfig};
use exsample_core::Chunking;
use exsample_detect::{NoiseModel, OracleDiscriminator, QueryOracle, SimulatedDetector};
use exsample_engine::{
    dataset_fingerprint, Engine, EngineConfig, QuerySpec, RepoId, SearchService, SessionStatus,
};
use exsample_proto::{duplex, RemoteClient, SearchServer};
use exsample_stats::Rng64;
use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, GroundTruth, SkewSpec};
use std::sync::Arc;

/// Repository name the engine-shared strategies register the footage
/// under; remote runs resolve it through the service catalog.
pub const REPO_NAME: &str = "engine-cmp";

/// Workload description: `queries` overlapping searches over one skewed
/// repository.
#[derive(Debug, Clone)]
pub struct EngineCmpConfig {
    /// Repository size in frames.
    pub frames: u64,
    /// Distinct instances of the queried class.
    pub instances: usize,
    /// Mean instance duration in frames.
    pub mean_duration: f64,
    /// Placement skew of the instances.
    pub skew: SkewSpec,
    /// Number of concurrent queries.
    pub queries: usize,
    /// Distinct-result target per query.
    pub target: u64,
    /// Chunk count per query.
    pub chunks: usize,
    /// Root seed (query `q` samples with seed `seed + q`).
    pub seed: u64,
    /// Engine worker threads.
    pub workers: usize,
}

impl EngineCmpConfig {
    /// A workload sized so queries overlap heavily: rare objects, high
    /// recall target, hot-region skew.
    pub fn default_workload() -> Self {
        EngineCmpConfig {
            frames: 100_000,
            instances: 120,
            mean_duration: 60.0,
            skew: SkewSpec::CentralNormal { frac95: 0.15 },
            queries: 6,
            target: 90,
            chunks: 16,
            seed: 33,
            workers: default_threads(),
        }
    }

    /// The synthetic repository this workload searches.
    pub fn ground_truth(&self) -> Arc<GroundTruth> {
        Arc::new(
            DatasetSpec::single_class(
                self.frames,
                ClassSpec::new(
                    "object",
                    self.instances,
                    self.mean_duration,
                    self.skew.clone(),
                ),
            )
            .generate(self.seed ^ 0xD5),
        )
    }

    /// `n` *distinct* repositories of this workload's shape (repository
    /// `i` is generated from a different seed, so each has its own
    /// footage and dataset fingerprint) — the multi-repo corpus the
    /// cluster comparison shards across engines.
    pub fn ground_truths(&self, n: usize) -> Vec<Arc<GroundTruth>> {
        (0..n)
            .map(|i| {
                Arc::new(
                    DatasetSpec::single_class(
                        self.frames,
                        ClassSpec::new(
                            "object",
                            self.instances,
                            self.mean_duration,
                            self.skew.clone(),
                        ),
                    )
                    .generate(self.seed ^ 0xD5 ^ ((i as u64) << 16)),
                )
            })
            .collect()
    }
}

/// Outcome of one execution strategy over the whole batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrategyCost {
    /// Total frames sampled across queries.
    pub frames: u64,
    /// Total detector invocations paid for.
    pub detector_invocations: u64,
    /// Total modelled detector seconds.
    pub detect_s: f64,
}

/// Comparison report.
#[derive(Debug, Clone)]
pub struct EngineCmpReport {
    /// Per-query distinct results found (identical between strategies).
    pub found: Vec<u64>,
    /// Cost of running each query on its own.
    pub independent: StrategyCost,
    /// Cost of running all queries through the shared engine.
    pub engine: StrategyCost,
    /// Cache hit rate observed by the engine run.
    pub cache_hit_rate: f64,
}

impl EngineCmpReport {
    /// Detector invocations avoided by sharing, as a fraction.
    pub fn savings(&self) -> f64 {
        if self.independent.detector_invocations == 0 {
            0.0
        } else {
            1.0 - self.engine.detector_invocations as f64
                / self.independent.detector_invocations as f64
        }
    }
}

fn specs(cfg: &EngineCmpConfig) -> Vec<(StopCond, u64)> {
    (0..cfg.queries)
        .map(|q| (StopCond::results(cfg.target), cfg.seed + q as u64))
        .collect()
}

/// Run the batch independently: one blocking `run_search` per query, each
/// with a private detector (the status quo this crate's other experiments
/// model).
pub fn run_independent(
    gt: &Arc<GroundTruth>,
    cfg: &EngineCmpConfig,
    detector_fps: f64,
) -> (Vec<u64>, StrategyCost) {
    let mut found = Vec::with_capacity(cfg.queries);
    let mut frames = 0;
    for (stop, seed) in specs(cfg) {
        let mut policy = ExSample::new(
            Chunking::even(gt.frames, cfg.chunks),
            ExSampleConfig::default(),
        );
        let mut oracle = QueryOracle::new(
            SimulatedDetector::new(gt.clone(), ClassId(0), NoiseModel::none(), cfg.seed),
            OracleDiscriminator::new(),
        );
        let mut rng = Rng64::new(seed);
        let trace = {
            let mut f = |frame| oracle.process(frame);
            run_search(
                &mut policy,
                &mut f,
                &SearchCost::per_sample(1.0 / detector_fps),
                &stop,
                &mut rng,
            )
        };
        found.push(trace.found());
        frames += trace.samples();
    }
    let cost = StrategyCost {
        frames,
        detector_invocations: frames,
        detect_s: frames as f64 / detector_fps,
    };
    (found, cost)
}

/// Run the batch through any [`SearchService`] — the in-process engine
/// or a remote client, indistinguishably — and collect per-query found
/// counts plus total frames and detector seconds from the reports.
pub fn run_on_service(
    svc: &dyn SearchService,
    repo: RepoId,
    cfg: &EngineCmpConfig,
) -> (Vec<u64>, u64, f64) {
    run_on_service_multi(svc, &[repo], cfg)
}

/// [`run_on_service`] over several repositories: query `q` searches
/// `repos[q % repos.len()]` with seed `cfg.seed + q`. With one repo this
/// is exactly `run_on_service`.
pub fn run_on_service_multi(
    svc: &dyn SearchService,
    repos: &[RepoId],
    cfg: &EngineCmpConfig,
) -> (Vec<u64>, u64, f64) {
    let ids: Vec<_> = specs(cfg)
        .into_iter()
        .enumerate()
        .map(|(q, (stop, seed))| {
            svc.submit(
                QuerySpec::new(repos[q % repos.len()], ClassId(0), stop)
                    .chunks(cfg.chunks)
                    .seed(seed),
            )
            .expect("valid spec")
        })
        .collect();
    let mut found = Vec::with_capacity(ids.len());
    let mut frames = 0;
    let mut detect_s = 0.0;
    for id in ids {
        let report = svc.wait(id).expect("session completes");
        assert_eq!(report.status, SessionStatus::Done);
        found.push(report.trace.found());
        frames += report.charges.frames;
        detect_s += report.charges.detect_s;
    }
    (found, frames, detect_s)
}

/// Name repository `i` of the multi-repo corpus is registered under.
fn multi_repo_name(i: usize) -> String {
    format!("{REPO_NAME}-{i}")
}

/// Resolve the multi-repo corpus ids through a service's catalog, in
/// corpus order — works identically against one engine (local ids) and a
/// router (namespaced ids).
fn resolve_repos(svc: &dyn SearchService, n: usize) -> Vec<RepoId> {
    let catalog = svc.repos().expect("catalog");
    (0..n)
        .map(|i| {
            let name = multi_repo_name(i);
            catalog
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("repository {name:?} registered"))
                .id
        })
        .collect()
}

/// Reference for the cluster comparison: one engine owning the whole
/// multi-repo corpus, the same batch of queries spread round-robin over
/// the repositories.
pub fn run_multi_repo_engine(
    gts: &[Arc<GroundTruth>],
    cfg: &EngineCmpConfig,
    detector_fps: f64,
) -> (Vec<u64>, StrategyCost, f64) {
    let engine = Engine::new(engine_config(cfg, detector_fps));
    for (i, gt) in gts.iter().enumerate() {
        engine.register_repo(
            &multi_repo_name(i),
            gt.clone(),
            NoiseModel::none(),
            cfg.seed,
        );
    }
    let repos = resolve_repos(&engine, gts.len());
    let (found, frames, detect_s) = run_on_service_multi(&engine, &repos, cfg);
    let stats = engine.cache_stats();
    let cost = StrategyCost {
        frames,
        detector_invocations: engine.detector_invocations(),
        detect_s,
    };
    (found, cost, stats.hit_rate())
}

/// Run the batch against a *fleet*: `shards` in-process engines behind
/// an [`ShardRouter`], each repository registered on its
/// rendezvous-placed shard, queries routed by namespaced repository id,
/// and detector spend read from the router's fleet-wide statistics.
/// Must produce traces bit-identical to [`run_multi_repo_engine`] for
/// the same per-repo seeds — sharding moves queries, not results.
pub fn run_on_cluster(
    gts: &[Arc<GroundTruth>],
    cfg: &EngineCmpConfig,
    detector_fps: f64,
    shards: usize,
) -> (Vec<u64>, StrategyCost, f64) {
    let named: Vec<(String, Arc<Engine>)> = (0..shards)
        .map(|s| {
            (
                format!("shard-{s}"),
                Arc::new(Engine::new(engine_config(cfg, detector_fps))),
            )
        })
        .collect();
    let router = ShardRouter::new(
        named
            .iter()
            .map(|(n, e)| (n.clone(), e.clone() as ShardService))
            .collect(),
    );
    for (i, gt) in gts.iter().enumerate() {
        let name = multi_repo_name(i);
        let owner = router.place(&name, dataset_fingerprint(gt)).to_string();
        let engine = &named
            .iter()
            .find(|(n, _)| *n == owner)
            .expect("owner exists")
            .1;
        engine.register_repo(&name, gt.clone(), NoiseModel::none(), cfg.seed);
    }
    let repos = resolve_repos(&router, gts.len());
    let (found, frames, detect_s) = run_on_service_multi(&router, &repos, cfg);
    let stats = router.stats().expect("all shards reachable");
    let cost = StrategyCost {
        frames,
        detector_invocations: stats.cache.misses,
        detect_s,
    };
    (found, cost, stats.cache.hit_rate())
}

fn engine_config(cfg: &EngineCmpConfig, detector_fps: f64) -> EngineConfig {
    EngineConfig {
        workers: cfg.workers,
        detector_fps,
        ..EngineConfig::default()
    }
}

/// Cost of one execution strategy in the batched-dispatch comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchCost {
    /// Total frames sampled across queries.
    pub frames: u64,
    /// Total detector invocations paid for (cache misses).
    pub detector_invocations: u64,
    /// Total detector dispatches paid for.
    pub dispatches: u64,
    /// Modelled dispatch-overhead seconds (`dispatches · dispatch_s`).
    pub dispatch_s: f64,
    /// Modelled per-frame detector seconds.
    pub detect_s: f64,
}

/// Report of the §III-F batched-vs-per-frame dispatch comparison (see
/// [`run_batched_cmp`]).
#[derive(Debug, Clone)]
pub struct BatchCmpReport {
    /// Per-query distinct results under per-frame dispatch.
    pub found_per_frame: Vec<u64>,
    /// Per-query distinct results under batched dispatch — identical to
    /// `found_per_frame` by construction (both strategies sweep the whole
    /// repository).
    pub found_batched: Vec<u64>,
    /// Cost with one dispatch per cache miss (`batch = 1`).
    pub per_frame: DispatchCost,
    /// Cost with one dispatch per batch of misses.
    pub batched: DispatchCost,
    /// The batch size the batched strategy ran with.
    pub batch: u32,
}

impl BatchCmpReport {
    /// Dispatch-overhead seconds avoided by batching, as a fraction.
    pub fn dispatch_savings(&self) -> f64 {
        if self.per_frame.dispatch_s == 0.0 {
            0.0
        } else {
            1.0 - self.batched.dispatch_s / self.per_frame.dispatch_s
        }
    }
}

/// Run the workload through one engine with the given batch size and
/// dispatch overhead, every query sweeping the entire repository
/// (`StopCond::samples(frames)`), and collect the dispatch-aware costs.
fn run_exhaustive_with_batch(
    gt: &Arc<GroundTruth>,
    cfg: &EngineCmpConfig,
    detector_fps: f64,
    dispatch_overhead_s: f64,
    batch: u32,
) -> (Vec<u64>, DispatchCost) {
    let mut config = engine_config(cfg, detector_fps);
    config.batch = batch;
    config.cost_model.dispatch_s = dispatch_overhead_s;
    let engine = Engine::new(config);
    let repo = engine.register_repo(REPO_NAME, gt.clone(), NoiseModel::none(), cfg.seed);
    let ids: Vec<_> = (0..cfg.queries)
        .map(|q| {
            engine
                .submit(
                    QuerySpec::new(repo, ClassId(0), StopCond::samples(cfg.frames))
                        .chunks(cfg.chunks)
                        .seed(cfg.seed + q as u64),
                )
                .expect("valid spec")
        })
        .collect();
    let mut found = Vec::with_capacity(ids.len());
    let mut cost = DispatchCost {
        frames: 0,
        detector_invocations: 0,
        dispatches: 0,
        dispatch_s: 0.0,
        detect_s: 0.0,
    };
    for id in ids {
        let report = engine.wait(id).expect("session completes");
        assert_eq!(report.status, SessionStatus::Done);
        found.push(report.trace.found());
        cost.frames += report.charges.frames;
        cost.dispatches += report.charges.dispatches;
        cost.dispatch_s += report.charges.dispatch_s;
        cost.detect_s += report.charges.detect_s;
    }
    cost.detector_invocations = engine.detector_invocations();
    (found, cost)
}

/// The §III-F comparison: the same exhaustive workload (every query
/// samples every frame, so both strategies find the **complete, identical
/// result set**) run twice through the engine — once dispatching the
/// detector per cache miss (`batch = 1`, the per-frame status quo) and
/// once in detector batches of `batch` frames, where each batch's misses
/// cost a *single* dispatch. With a per-dispatch overhead
/// (`CostModel::dispatch_s = dispatch_overhead_s`), batching must pay
/// strictly fewer modelled dispatch-seconds for the same results; the
/// per-frame detector seconds are identical by construction.
///
/// # Panics
/// Panics if the two strategies disagree on any query's result count —
/// batching changes cost accounting, never completeness.
pub fn run_batched_cmp(
    cfg: &EngineCmpConfig,
    detector_fps: f64,
    dispatch_overhead_s: f64,
    batch: u32,
) -> BatchCmpReport {
    assert!(batch > 1, "the batched strategy needs a batch size > 1");
    let gt = cfg.ground_truth();
    let (found_per_frame, per_frame) =
        run_exhaustive_with_batch(&gt, cfg, detector_fps, dispatch_overhead_s, 1);
    let (found_batched, batched) =
        run_exhaustive_with_batch(&gt, cfg, detector_fps, dispatch_overhead_s, batch);
    assert_eq!(
        found_per_frame, found_batched,
        "batched dispatch changed query results — §III-F violated"
    );
    BatchCmpReport {
        found_per_frame,
        found_batched,
        per_frame,
        batched,
        batch,
    }
}

/// Render a batched-dispatch report as a markdown table.
pub fn to_batch_table(report: &BatchCmpReport) -> crate::report::Table {
    let mut t = crate::report::Table::new(&[
        "strategy",
        "frames",
        "detector invocations",
        "dispatches",
        "dispatch seconds",
        "detector seconds",
    ]);
    t.row(vec![
        "per-frame dispatch".into(),
        report.per_frame.frames.to_string(),
        report.per_frame.detector_invocations.to_string(),
        report.per_frame.dispatches.to_string(),
        format!("{:.2}", report.per_frame.dispatch_s),
        format!("{:.1}", report.per_frame.detect_s),
    ]);
    t.row(vec![
        format!("batched dispatch (B={})", report.batch),
        report.batched.frames.to_string(),
        report.batched.detector_invocations.to_string(),
        report.batched.dispatches.to_string(),
        format!("{:.2}", report.batched.dispatch_s),
        format!("{:.1}", report.batched.detect_s),
    ]);
    t
}

/// Run the batch concurrently through the shared engine (in-process).
pub fn run_engine(
    gt: &Arc<GroundTruth>,
    cfg: &EngineCmpConfig,
    detector_fps: f64,
) -> (Vec<u64>, StrategyCost, f64) {
    let engine = Engine::new(engine_config(cfg, detector_fps));
    let repo = engine.register_repo(REPO_NAME, gt.clone(), NoiseModel::none(), cfg.seed);
    let (found, frames, detect_s) = run_on_service(&engine, repo, cfg);
    let stats = engine.cache_stats();
    let cost = StrategyCost {
        frames,
        detector_invocations: engine.detector_invocations(),
        detect_s,
    };
    (found, cost, stats.hit_rate())
}

/// Run the batch through the wire protocol: the same engine behind a
/// `SearchServer`, queried by a `RemoteClient` over an in-memory duplex
/// connection that resolves the repository by *name* from the service
/// catalog. Must produce results identical to [`run_engine`].
pub fn run_remote(
    gt: &Arc<GroundTruth>,
    cfg: &EngineCmpConfig,
    detector_fps: f64,
) -> (Vec<u64>, StrategyCost, f64) {
    let engine = Arc::new(Engine::new(engine_config(cfg, detector_fps)));
    engine.register_repo(REPO_NAME, gt.clone(), NoiseModel::none(), cfg.seed);
    let server = Arc::new(SearchServer::new(engine.clone()));
    let (client_io, server_io) = duplex();
    let srv = server.clone();
    let conn = std::thread::spawn(move || {
        let _ = srv.serve_connection(server_io);
    });
    let client = RemoteClient::connect(client_io).expect("handshake");
    let repo = client
        .repos()
        .expect("catalog")
        .into_iter()
        .find(|r| r.name == REPO_NAME)
        .expect("repository registered")
        .id;
    let (found, frames, detect_s) = run_on_service(&client, repo, cfg);
    let stats = engine.cache_stats();
    let cost = StrategyCost {
        frames,
        detector_invocations: engine.detector_invocations(),
        detect_s,
    };
    drop(client);
    let _ = conn.join();
    (found, cost, stats.hit_rate())
}

/// Run both strategies and compare.
pub fn run(cfg: &EngineCmpConfig, detector_fps: f64) -> EngineCmpReport {
    let gt = cfg.ground_truth();
    let (found_ind, independent) = run_independent(&gt, cfg, detector_fps);
    let (found_eng, engine, cache_hit_rate) = run_engine(&gt, cfg, detector_fps);
    assert_eq!(
        found_ind, found_eng,
        "engine execution changed query results — determinism violated"
    );
    EngineCmpReport {
        found: found_ind,
        independent,
        engine,
        cache_hit_rate,
    }
}

/// Render a report as a markdown table.
pub fn to_table(report: &EngineCmpReport) -> crate::report::Table {
    let mut t = crate::report::Table::new(&[
        "strategy",
        "frames",
        "detector invocations",
        "detector seconds",
        "cache hit rate",
    ]);
    t.row(vec![
        "independent".into(),
        report.independent.frames.to_string(),
        report.independent.detector_invocations.to_string(),
        format!("{:.1}", report.independent.detect_s),
        "-".into(),
    ]);
    t.row(vec![
        "engine-shared".into(),
        report.engine.frames.to_string(),
        report.engine.detector_invocations.to_string(),
        format!("{:.1}", report.engine.detect_s),
        format!("{:.1}%", report.cache_hit_rate * 100.0),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> EngineCmpConfig {
        EngineCmpConfig {
            frames: 20_000,
            instances: 40,
            mean_duration: 40.0,
            skew: SkewSpec::CentralNormal { frac95: 0.15 },
            queries: 4,
            target: 30,
            chunks: 8,
            seed: 7,
            workers: 3,
        }
    }

    #[test]
    fn sharing_strictly_reduces_invocations() {
        let report = run(&quick_cfg(), 20.0);
        assert_eq!(report.found.len(), 4);
        for f in &report.found {
            assert!(*f >= 30);
        }
        assert!(
            report.engine.detector_invocations < report.independent.detector_invocations,
            "engine {} !< independent {}",
            report.engine.detector_invocations,
            report.independent.detector_invocations
        );
        assert!(report.cache_hit_rate > 0.0);
        assert!(report.savings() > 0.0);
        // Both strategies sampled the same frames per query.
        assert_eq!(report.engine.frames, report.independent.frames);
    }

    #[test]
    fn remote_execution_is_indistinguishable_from_in_process() {
        // The same workload through the wire protocol: identical found
        // counts, identical frames, identical detector invocations — a
        // client cannot tell which side of the socket the engine is on.
        let cfg = quick_cfg();
        let gt = cfg.ground_truth();
        let (found_eng, engine, _) = run_engine(&gt, &cfg, 20.0);
        let (found_rem, remote, remote_hit_rate) = run_remote(&gt, &cfg, 20.0);
        assert_eq!(found_eng, found_rem);
        assert_eq!(engine.frames, remote.frames);
        assert_eq!(engine.detector_invocations, remote.detector_invocations);
        assert!(remote_hit_rate > 0.0);
    }

    #[test]
    fn cluster_execution_is_bit_identical_to_single_engine() {
        // The same multi-repo batch twice: one engine owning all three
        // repositories vs. three shards behind a router. Results, frames,
        // and — because the shards partition the corpus — even the total
        // detector bill must agree exactly.
        let cfg = quick_cfg();
        let gts = cfg.ground_truths(3);
        let (found_single, single, _) = run_multi_repo_engine(&gts, &cfg, 20.0);
        let (found_cluster, cluster, cluster_hit_rate) = run_on_cluster(&gts, &cfg, 20.0, 3);
        assert_eq!(found_single, found_cluster);
        assert_eq!(single.frames, cluster.frames);
        assert_eq!(
            single.detector_invocations, cluster.detector_invocations,
            "sharding a partitioned corpus must not change the detector bill"
        );
        assert!(
            cluster_hit_rate > 0.0,
            "overlapping queries share within shards"
        );
    }

    #[test]
    fn batched_dispatch_amortizes_overhead_without_changing_results() {
        let mut cfg = quick_cfg();
        cfg.frames = 5_000;
        cfg.instances = 20;
        cfg.queries = 3;
        let report = run_batched_cmp(&cfg, 20.0, 0.02, 8);
        // Identical, complete result sets: every query swept the whole
        // repository under both strategies.
        assert_eq!(report.found_per_frame, report.found_batched);
        for &f in &report.found_per_frame {
            assert_eq!(f, cfg.instances as u64, "incomplete sweep");
        }
        assert_eq!(report.per_frame.frames, report.batched.frames);
        assert_eq!(
            report.per_frame.detector_invocations, report.batched.detector_invocations,
            "batching must not change what the detector runs on"
        );
        // Per-frame dispatch: one dispatch per miss, by definition.
        assert_eq!(
            report.per_frame.dispatches,
            report.per_frame.detector_invocations
        );
        // Batched dispatch: strictly fewer dispatches and strictly fewer
        // modelled dispatch-seconds for the same result set.
        assert!(
            report.batched.dispatches < report.per_frame.dispatches,
            "batched {} !< per-frame {}",
            report.batched.dispatches,
            report.per_frame.dispatches
        );
        assert!(report.batched.dispatch_s < report.per_frame.dispatch_s);
        assert!(report.dispatch_savings() > 0.5, "B=8 should save > 50%");
        // The per-frame detector bill itself is untouched by batching.
        assert!((report.per_frame.detect_s - report.batched.detect_s).abs() < 1e-6);
    }

    #[test]
    fn batch_table_renders() {
        let cost = |dispatches: u64| DispatchCost {
            frames: 100,
            detector_invocations: 80,
            dispatches,
            dispatch_s: dispatches as f64 * 0.02,
            detect_s: 4.0,
        };
        let report = BatchCmpReport {
            found_per_frame: vec![10, 10],
            found_batched: vec![10, 10],
            per_frame: cost(80),
            batched: cost(10),
            batch: 8,
        };
        let md = to_batch_table(&report).to_markdown();
        assert!(md.contains("per-frame dispatch"));
        assert!(md.contains("batched dispatch (B=8)"));
        assert!((report.dispatch_savings() - 0.875).abs() < 1e-12);
    }

    #[test]
    fn table_renders() {
        let report = EngineCmpReport {
            found: vec![10, 10],
            independent: StrategyCost {
                frames: 100,
                detector_invocations: 100,
                detect_s: 5.0,
            },
            engine: StrategyCost {
                frames: 100,
                detector_invocations: 70,
                detect_s: 3.5,
            },
            cache_hit_rate: 0.3,
        };
        let md = to_table(&report).to_markdown();
        assert!(md.contains("engine-shared"));
        assert!(md.contains("70"));
        assert!((report.savings() - 0.3).abs() < 1e-12);
    }
}
