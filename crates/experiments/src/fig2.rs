//! Figure 2: empirical validation of the Gamma belief (paper §III-D).
//!
//! The paper draws 1000 per-frame probabilities `p_i` from a heavily
//! skewed lognormal (`µ_p ≈ 3e-3`, `σ_p ≈ 8e-3`, `max p_i = 0.15`),
//! simulates random frame sampling, and asks: *given an observed pair
//! `(n, N1)`, how does the true distribution of `R(n+1)` compare to the
//! belief `Gamma(N1 + 0.1, n + 1)`?*
//!
//! Instead of tossing 1000 coins for each of 180k samples × 10k runs
//! (≈2×10¹² Bernoulli draws), we exploit that only each instance's first
//! and second appearance matter: both are sums of `Geometric(p_i)`
//! variables, so a run costs `2N` geometric draws and the quantities at a
//! checkpoint `n` are
//!
//! ```text
//!   N1(n)   = #{i : T1_i ≤ n < T2_i}
//!   R(n+1)  = Σ_i p_i · [T1_i > n]
//! ```
//!
//! which is distributionally *exact*, not an approximation.

use crate::report::Table;
use crate::Scale;
use exsample_stats::dist::{Continuous, Gamma, Geometric, LogNormal};
use exsample_stats::{quantile, Rng64};

/// Configuration of the Figure 2 study.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Number of result instances (paper: 1000).
    pub instances: usize,
    /// Number of independent runs (paper: 10 000).
    pub runs: usize,
    /// Checkpoints `n` at which `(N1, R)` is recorded — the paper's six
    /// subplot positions.
    pub checkpoints: Vec<u64>,
    /// Tolerance around the conditioning `N1` value (runs whose `N1(n)`
    /// is within ± this of the cell's target are pooled).
    pub n1_tolerance: u64,
    /// Root seed.
    pub seed: u64,
}

impl Fig2Config {
    /// Paper-scale or reduced configuration.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => Fig2Config {
                instances: 1000,
                runs: 10_000,
                checkpoints: vec![82, 100, 14_093, 120_911, 172_085, 179_601],
                n1_tolerance: 2,
                seed: 20_220_812,
            },
            Scale::Quick => Fig2Config {
                instances: 1000,
                runs: 1_000,
                checkpoints: vec![82, 100, 14_093, 120_911],
                n1_tolerance: 3,
                seed: 20_220_812,
            },
        }
    }
}

/// Statistics of one `(n, N1)` cell.
#[derive(Debug, Clone)]
pub struct Fig2Cell {
    /// Checkpoint `n`.
    pub n: u64,
    /// Conditioning value `N1` (the empirical median at this `n`).
    pub n1: u64,
    /// Number of pooled runs.
    pub pooled: usize,
    /// Mean of the true `R(n+1)` over pooled runs.
    pub actual_mean: f64,
    /// 5th / 95th percentiles of the true `R(n+1)`.
    pub actual_q05: f64,
    /// 95th percentile of true `R(n+1)`.
    pub actual_q95: f64,
    /// The point estimate `N1 / n` (Eq. III.1).
    pub point_estimate: f64,
    /// Mean of the belief `Gamma(N1+0.1, n+1)`.
    pub gamma_mean: f64,
    /// 5th / 95th percentile of the belief.
    pub gamma_q05: f64,
    /// 95th percentile of the belief.
    pub gamma_q95: f64,
    /// Fraction of true `R(n+1)` values inside the belief's [q05, q95].
    pub coverage: f64,
}

/// Generate the paper's skewed `p_i` population: lognormal with arithmetic
/// mean 3e-3 and sd 8e-3, clamped at 0.15.
pub fn generate_probabilities(instances: usize, rng: &mut Rng64) -> Vec<f64> {
    // cv = sd/mean = 8/3; sigma² = ln(1+cv²).
    let cv2 = (8.0f64 / 3.0).powi(2);
    let sigma = (1.0 + cv2).ln().sqrt();
    let dist = LogNormal::from_mean(3e-3, sigma);
    (0..instances)
        .map(|_| dist.sample(rng).clamp(1e-7, 0.15))
        .collect()
}

/// Run the Figure 2 study.
pub fn run(config: &Fig2Config) -> Vec<Fig2Cell> {
    let mut rng = Rng64::new(config.seed);
    let p = generate_probabilities(config.instances, &mut rng);
    let geoms: Vec<Geometric> = p.iter().map(|&pi| Geometric::new(pi)).collect();

    // tuples[c] collects (N1, R) at checkpoint c over runs.
    let mut tuples: Vec<Vec<(u64, f64)>> =
        vec![Vec::with_capacity(config.runs); config.checkpoints.len()];
    let root = Rng64::new(config.seed ^ 0x5eed);
    for run in 0..config.runs {
        let mut r = root.fork(run as u64);
        // First/second appearance times of each instance.
        let mut t1 = Vec::with_capacity(p.len());
        let mut t2 = Vec::with_capacity(p.len());
        for g in &geoms {
            let a = g.sample(&mut r);
            t1.push(a);
            t2.push(a + g.sample(&mut r));
        }
        for (c, &n) in config.checkpoints.iter().enumerate() {
            let mut n1 = 0u64;
            let mut rnext = 0.0f64;
            for i in 0..p.len() {
                if t1[i] <= n && n < t2[i] {
                    n1 += 1;
                }
                if t1[i] > n {
                    rnext += p[i];
                }
            }
            tuples[c].push((n1, rnext));
        }
    }

    config
        .checkpoints
        .iter()
        .enumerate()
        .map(|(c, &n)| {
            let cell = &tuples[c];
            // Condition on the median N1 at this n (the paper picks
            // specific observed pairs; the median is the densest cell).
            let mut n1s: Vec<f64> = cell.iter().map(|&(n1, _)| n1 as f64).collect();
            n1s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let n1 = exsample_stats::quantile_of_sorted(&n1s, 0.5).round() as u64;
            let pooled: Vec<f64> = cell
                .iter()
                .filter(|&&(v, _)| v.abs_diff(n1) <= config.n1_tolerance)
                .map(|&(_, r)| r)
                .collect();
            let gamma = Gamma::new(n1 as f64 + 0.1, n as f64 + 1.0);
            let (gq05, gq95) = (gamma.inv_cdf(0.05), gamma.inv_cdf(0.95));
            let coverage = if pooled.is_empty() {
                0.0
            } else {
                pooled.iter().filter(|&&r| r >= gq05 && r <= gq95).count() as f64
                    / pooled.len() as f64
            };
            Fig2Cell {
                n,
                n1,
                pooled: pooled.len(),
                actual_mean: if pooled.is_empty() {
                    0.0
                } else {
                    pooled.iter().sum::<f64>() / pooled.len() as f64
                },
                actual_q05: if pooled.is_empty() {
                    0.0
                } else {
                    quantile(&pooled, 0.05)
                },
                actual_q95: if pooled.is_empty() {
                    0.0
                } else {
                    quantile(&pooled, 0.95)
                },
                point_estimate: n1 as f64 / n as f64,
                gamma_mean: gamma.mean(),
                gamma_q05: gq05,
                gamma_q95: gq95,
                coverage,
            }
        })
        .collect()
}

/// Render the cells as a markdown table.
pub fn to_table(cells: &[Fig2Cell]) -> Table {
    let mut t = Table::new(&[
        "n",
        "N1",
        "pooled",
        "actual mean R",
        "actual q05..q95",
        "N1/n (Eq III.1)",
        "Gamma mean",
        "Gamma q05..q95",
        "coverage",
    ]);
    for c in cells {
        t.row(vec![
            c.n.to_string(),
            c.n1.to_string(),
            c.pooled.to_string(),
            format!("{:.3e}", c.actual_mean),
            format!("{:.2e}..{:.2e}", c.actual_q05, c.actual_q95),
            format!("{:.3e}", c.point_estimate),
            format!("{:.3e}", c.gamma_mean),
            format!("{:.2e}..{:.2e}", c.gamma_q05, c.gamma_q95),
            format!("{:.0}%", c.coverage * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_have_paper_moments() {
        let mut rng = Rng64::new(1);
        let p = generate_probabilities(200_000, &mut rng);
        let mean = p.iter().sum::<f64>() / p.len() as f64;
        assert!((mean / 3e-3 - 1.0).abs() < 0.1, "mean={mean}");
        assert!(p.iter().all(|&x| x <= 0.15 && x > 0.0));
        let max = p.iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.05, "clamp region should be populated, max={max}");
    }

    #[test]
    fn mid_range_cells_fit_gamma_well() {
        // The paper's observation: for mid-range n the Gamma curve fits
        // the histogram very well. Quantitatively the belief *mean* tracks
        // the actual conditional mean closely; interval coverage sits a
        // little under nominal (the §III-D BDD-MOT check found the same:
        // the variance bound is a slight underestimate, ~80% coverage).
        let cfg = Fig2Config {
            instances: 500,
            runs: 800,
            checkpoints: vec![5_000, 20_000],
            n1_tolerance: 3,
            seed: 99,
        };
        let cells = run(&cfg);
        for c in &cells {
            assert!(c.pooled > 30, "cell n={} too thin ({})", c.n, c.pooled);
            assert!(
                c.coverage > 0.70,
                "n={} coverage={} gamma=[{},{}] actual mean={}",
                c.n,
                c.coverage,
                c.gamma_q05,
                c.gamma_q95,
                c.actual_mean
            );
            // The belief mean tracks the actual conditional mean tightly.
            let ratio = c.gamma_mean / c.actual_mean.max(1e-12);
            assert!(ratio > 0.85 && ratio < 1.2, "n={} ratio={ratio}", c.n);
        }
    }

    #[test]
    fn early_cells_overdisperse() {
        // "the Γ model has substantially more variance than the underlying
        // true distribution" for n <= 100: its 90% interval should be wider
        // than the empirical one.
        let cfg = Fig2Config {
            instances: 500,
            runs: 600,
            checkpoints: vec![82],
            n1_tolerance: 3,
            seed: 100,
        };
        let cells = run(&cfg);
        let c = &cells[0];
        let gamma_width = c.gamma_q95 - c.gamma_q05;
        let actual_width = c.actual_q95 - c.actual_q05;
        assert!(
            gamma_width > actual_width,
            "gamma {gamma_width} !> actual {actual_width}"
        );
        assert!(c.coverage > 0.9, "wide belief must cover: {}", c.coverage);
    }

    #[test]
    fn table_renders() {
        let cfg = Fig2Config {
            instances: 100,
            runs: 50,
            checkpoints: vec![100],
            n1_tolerance: 5,
            seed: 3,
        };
        let cells = run(&cfg);
        let t = to_table(&cells);
        assert_eq!(t.len(), 1);
        assert!(t.to_markdown().contains("Gamma"));
    }
}
