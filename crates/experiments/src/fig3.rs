//! Figure 3: the 4×4 skew × duration simulation grid (paper §IV-B).
//!
//! 2000 instances placed over 16M frames with four skew levels (none,
//! 95%-in-1/4, 1/32, 1/256) and four mean durations (14, 100, 700, 4900
//! frames). ExSample (128 chunks) vs random, 21 replicate runs, median and
//! 25–75% band, savings labels at 10/100/1000 results, and the
//! optimal-allocation reference (Eq. IV.1).

use crate::report::{fmt_ratio, Table};
use crate::runner::{
    found_band, log_checkpoints, median_samples_to, replicate_runs, BandPoint, PolicySpec,
    RunConfig,
};
use crate::Scale;
use exsample_core::driver::StopCond;
use exsample_core::exsample::ExSampleConfig;
use exsample_core::Chunking;
use exsample_optimal::{optimal_curve, ChunkProbs, SolveOpts};
use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, SkewSpec};
use std::sync::Arc;

/// Grid configuration.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Total frames (paper: 16 million).
    pub frames: u64,
    /// Instances per cell (paper: 2000).
    pub instances: usize,
    /// Number of chunks (paper: 128).
    pub chunks: usize,
    /// Replicate runs per policy (paper: 21).
    pub runs: usize,
    /// Sample cap per run.
    pub max_samples: u64,
    /// Result-count targets for the savings labels (paper: 10/100/1000).
    pub targets: Vec<u64>,
    /// Mean durations (rows).
    pub durations: Vec<f64>,
    /// Skew columns as `(label, spec)`.
    pub skews: Vec<(String, SkewSpec)>,
    /// Root seed.
    pub seed: u64,
}

impl Fig3Config {
    /// Paper-scale or smoke-scale configuration. Quick mode shrinks the
    /// frame count and scales durations with it, preserving every `p_i`.
    pub fn at_scale(scale: Scale) -> Self {
        let skews = |frames: f64| {
            vec![
                ("none".to_string(), SkewSpec::Uniform),
                ("1/4".to_string(), SkewSpec::CentralNormal { frac95: 0.25 }),
                (
                    "1/32".to_string(),
                    SkewSpec::CentralNormal { frac95: 1.0 / 32.0 },
                ),
                (
                    "1/256".to_string(),
                    SkewSpec::CentralNormal {
                        frac95: 1.0 / 256.0,
                    },
                ),
            ]
            .into_iter()
            .map(|(l, s)| {
                let _ = frames;
                (l, s)
            })
            .collect()
        };
        match scale {
            Scale::Full => Fig3Config {
                frames: 16_000_000,
                instances: 2000,
                chunks: 128,
                runs: 11,
                max_samples: 250_000,
                targets: vec![10, 100, 1000],
                durations: vec![14.0, 100.0, 700.0, 4900.0],
                skews: skews(16e6),
                seed: 31,
            },
            Scale::Quick => Fig3Config {
                frames: 1_000_000,
                instances: 500,
                chunks: 32,
                runs: 5,
                max_samples: 40_000,
                targets: vec![10, 100],
                // Scaled by 1/16 to keep p_i identical to the full grid.
                durations: vec![1.0, 7.0, 44.0, 306.0],
                skews: skews(1e6),
                seed: 31,
            },
        }
    }
}

/// Result of one grid cell.
#[derive(Debug, Clone)]
pub struct Fig3Cell {
    /// Skew column label.
    pub skew: String,
    /// Mean duration (frames).
    pub duration: f64,
    /// Median/quartile discovery bands per policy.
    pub exsample_band: Vec<BandPoint>,
    /// Random baseline band.
    pub random_band: Vec<BandPoint>,
    /// Optimal-allocation reference curve `(n, expected found)`.
    pub optimal: Vec<(u64, f64)>,
    /// Savings `n_random/n_exsample` at each target (None if either policy
    /// missed the target within the budget).
    pub savings: Vec<(u64, Option<f64>)>,
}

/// Run one cell of the grid.
pub fn run_cell(config: &Fig3Config, skew_idx: usize, dur_idx: usize) -> Fig3Cell {
    let (skew_label, skew) = &config.skews[skew_idx];
    let duration = config.durations[dur_idx];
    let spec = DatasetSpec::single_class(
        config.frames,
        ClassSpec::new("object", config.instances, duration, skew.clone()),
    );
    let cell_seed = config.seed ^ ((skew_idx as u64) << 16) ^ ((dur_idx as u64) << 24);
    let gt = Arc::new(spec.generate(cell_seed));
    let stop = StopCond::results(config.instances as u64).or_samples(config.max_samples);
    let run_cfg = RunConfig {
        runs: config.runs,
        stop,
        detect_fps: 20.0,
        base_seed: cell_seed ^ 0xABCD,
        threads: crate::parallel::default_threads(),
    };
    let chunking = Chunking::even(config.frames, config.chunks);
    let ex_spec = PolicySpec::ExSample {
        chunking: chunking.clone(),
        config: ExSampleConfig::default(),
    };
    let ex = replicate_runs(&gt, ClassId(0), &ex_spec, &run_cfg);
    let rnd = replicate_runs(&gt, ClassId(0), &PolicySpec::Random, &run_cfg);

    let checkpoints = log_checkpoints(config.max_samples, 8);
    let probs = ChunkProbs::build(&gt, ClassId(0), &chunking);
    let optimal = optimal_curve(&probs, &checkpoints, SolveOpts::default());

    let savings = config
        .targets
        .iter()
        .map(|&t| {
            let s = match (median_samples_to(&rnd, t), median_samples_to(&ex, t)) {
                (Some(r), Some(e)) if e > 0.0 => Some(r / e),
                _ => None,
            };
            (t, s)
        })
        .collect();

    Fig3Cell {
        skew: skew_label.clone(),
        duration,
        exsample_band: found_band(&ex, &checkpoints),
        random_band: found_band(&rnd, &checkpoints),
        optimal,
        savings,
    }
}

/// Run the whole grid (row-major: durations outer, skews inner).
pub fn run(config: &Fig3Config) -> Vec<Fig3Cell> {
    let mut out = Vec::new();
    for dur_idx in 0..config.durations.len() {
        for skew_idx in 0..config.skews.len() {
            out.push(run_cell(config, skew_idx, dur_idx));
        }
    }
    out
}

/// Savings-label summary table (the text annotations of Figure 3).
pub fn savings_table(cells: &[Fig3Cell]) -> Table {
    let mut t = Table::new(&[
        "mean duration",
        "skew",
        "target",
        "savings (random/exsample)",
    ]);
    for c in cells {
        for &(target, s) in &c.savings {
            t.row(vec![
                format!("{}", c.duration),
                c.skew.clone(),
                target.to_string(),
                s.map(fmt_ratio).unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    t
}

/// Full band/curve CSV (one row per checkpoint per cell).
pub fn curves_table(cells: &[Fig3Cell]) -> Table {
    let mut t = Table::new(&[
        "duration",
        "skew",
        "samples",
        "exsample_q25",
        "exsample_med",
        "exsample_q75",
        "random_q25",
        "random_med",
        "random_q75",
        "optimal",
    ]);
    for c in cells {
        for (i, p) in c.exsample_band.iter().enumerate() {
            let r = &c.random_band[i];
            let o = c.optimal[i].1;
            t.row(vec![
                format!("{}", c.duration),
                c.skew.clone(),
                p.samples.to_string(),
                format!("{:.1}", p.q25),
                format!("{:.1}", p.median),
                format!("{:.1}", p.q75),
                format!("{:.1}", r.q25),
                format!("{:.1}", r.median),
                format!("{:.1}", r.q75),
                format!("{o:.1}"),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Fig3Config {
        Fig3Config {
            frames: 200_000,
            instances: 300,
            chunks: 16,
            runs: 5,
            max_samples: 15_000,
            targets: vec![10, 100],
            durations: vec![50.0],
            skews: vec![
                ("none".into(), SkewSpec::Uniform),
                (
                    "1/32".into(),
                    SkewSpec::CentralNormal { frac95: 1.0 / 32.0 },
                ),
            ],
            seed: 5,
        }
    }

    #[test]
    fn skewed_cell_shows_savings_unskewed_does_not() {
        let cfg = tiny_config();
        let uniform = run_cell(&cfg, 0, 0);
        let skewed = run_cell(&cfg, 1, 0);
        // Savings at 100 results: skewed should be clearly better than
        // uniform's (which hovers around 1x).
        let s_uniform = uniform.savings[1].1.expect("uniform reached 100");
        let s_skewed = skewed.savings[1].1.expect("skewed reached 100");
        assert!(
            s_skewed > s_uniform.max(1.2),
            "skewed={s_skewed} uniform={s_uniform}"
        );
        assert!(s_uniform < 1.5, "uniform should be near 1x: {s_uniform}");
    }

    #[test]
    fn optimal_curve_upper_bounds_exsample_median() {
        let cfg = tiny_config();
        let cell = run_cell(&cfg, 1, 0);
        // The offline-optimal expectation should (weakly) dominate the
        // achieved ExSample median at matching checkpoints — allow small
        // noise slack.
        for (p, &(n, opt)) in cell.exsample_band.iter().zip(&cell.optimal) {
            assert_eq!(p.samples, n);
            assert!(
                p.median <= opt + 0.15 * cfg.instances as f64,
                "n={n}: median {} > optimal {opt}",
                p.median
            );
        }
    }

    #[test]
    fn tables_render() {
        let cfg = tiny_config();
        let cell = run_cell(&cfg, 0, 0);
        let st = savings_table(std::slice::from_ref(&cell));
        assert_eq!(st.len(), 2);
        let ct = curves_table(std::slice::from_ref(&cell));
        assert!(ct.len() > 10);
    }
}
