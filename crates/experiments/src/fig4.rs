//! Figure 4: sensitivity to the number of chunks (paper §IV-C).
//!
//! Fixed workload (skew 1/32, mean duration 700 frames, 2000 instances in
//! 16M frames); chunk count `M` swept over {2, 16, 128, 1024} plus the
//! random baseline. For small `M` ExSample matches the static optimum;
//! for large `M` a gap opens because the sampler must first *learn* which
//! chunks pay (the benefit is non-monotonic in `M`).

use crate::report::Table;
use crate::runner::{
    found_band, log_checkpoints, replicate_runs, BandPoint, PolicySpec, RunConfig,
};
use crate::Scale;
use exsample_core::driver::StopCond;
use exsample_core::exsample::ExSampleConfig;
use exsample_core::Chunking;
use exsample_optimal::{optimal_curve, ChunkProbs, SolveOpts};
use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, SkewSpec};
use std::sync::Arc;

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Total frames (paper: 16M).
    pub frames: u64,
    /// Instances (paper: 2000).
    pub instances: usize,
    /// Mean duration (paper: 700).
    pub mean_duration: f64,
    /// Skew (paper: central 1/32).
    pub skew: SkewSpec,
    /// Chunk counts to sweep (paper: 2, 16, 128, 1024).
    pub chunk_counts: Vec<usize>,
    /// Replicates.
    pub runs: usize,
    /// Sample budget (paper plots to 30k).
    pub max_samples: u64,
    /// Root seed.
    pub seed: u64,
}

impl Fig4Config {
    /// Paper-scale or smoke-scale settings.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => Fig4Config {
                frames: 16_000_000,
                instances: 2000,
                mean_duration: 700.0,
                skew: SkewSpec::CentralNormal { frac95: 1.0 / 32.0 },
                chunk_counts: vec![2, 16, 128, 1024],
                runs: 21,
                max_samples: 30_000,
                seed: 41,
            },
            Scale::Quick => Fig4Config {
                frames: 1_000_000,
                instances: 500,
                mean_duration: 44.0,
                skew: SkewSpec::CentralNormal { frac95: 1.0 / 32.0 },
                chunk_counts: vec![2, 16, 128],
                runs: 5,
                max_samples: 20_000,
                seed: 41,
            },
        }
    }
}

/// One series of the figure.
#[derive(Debug, Clone)]
pub struct Fig4Series {
    /// "random" or `M=<count>`.
    pub label: String,
    /// Median/quartiles of instances found at each checkpoint.
    pub band: Vec<BandPoint>,
    /// Optimal static-weights expectation at each checkpoint (empty for
    /// the random series — uniform IS its optimum).
    pub optimal: Vec<(u64, f64)>,
    /// Median instances found at the full budget.
    pub found_at_budget: f64,
}

/// Run the sweep.
pub fn run(config: &Fig4Config) -> Vec<Fig4Series> {
    let spec = DatasetSpec::single_class(
        config.frames,
        ClassSpec::new(
            "object",
            config.instances,
            config.mean_duration,
            config.skew.clone(),
        ),
    );
    let gt = Arc::new(spec.generate(config.seed));
    let stop = StopCond::results(config.instances as u64).or_samples(config.max_samples);
    let run_cfg = RunConfig {
        runs: config.runs,
        stop,
        detect_fps: 20.0,
        base_seed: config.seed ^ 0xF1640,
        threads: crate::parallel::default_threads(),
    };
    let checkpoints = log_checkpoints(config.max_samples, 8);

    let mut out = Vec::new();
    let rnd = replicate_runs(&gt, ClassId(0), &PolicySpec::Random, &run_cfg);
    let band = found_band(&rnd, &checkpoints);
    out.push(Fig4Series {
        label: "random".into(),
        found_at_budget: band.last().map(|p| p.median).unwrap_or(0.0),
        band,
        optimal: Vec::new(),
    });
    for &m in &config.chunk_counts {
        let chunking = Chunking::even(config.frames, m);
        let ex_spec = PolicySpec::ExSample {
            chunking: chunking.clone(),
            config: ExSampleConfig::default(),
        };
        let traces = replicate_runs(&gt, ClassId(0), &ex_spec, &run_cfg);
        let probs = ChunkProbs::build(&gt, ClassId(0), &chunking);
        let optimal = optimal_curve(&probs, &checkpoints, SolveOpts::default());
        let band = found_band(&traces, &checkpoints);
        out.push(Fig4Series {
            label: format!("M={m}"),
            found_at_budget: band.last().map(|p| p.median).unwrap_or(0.0),
            band,
            optimal,
        });
    }
    out
}

/// Summary table: instances found at the sample budget per series, with
/// the optimal reference where defined.
pub fn summary_table(series: &[Fig4Series]) -> Table {
    let mut t = Table::new(&["series", "median found @ budget", "optimal @ budget"]);
    for s in series {
        t.row(vec![
            s.label.clone(),
            format!("{:.0}", s.found_at_budget),
            s.optimal
                .last()
                .map(|&(_, v)| format!("{v:.0}"))
                .unwrap_or_else(|| "-".into()),
        ]);
    }
    t
}

/// Full curves as CSV rows.
pub fn curves_table(series: &[Fig4Series]) -> Table {
    let mut t = Table::new(&["series", "samples", "q25", "median", "q75", "optimal"]);
    for s in series {
        for (i, p) in s.band.iter().enumerate() {
            t.row(vec![
                s.label.clone(),
                p.samples.to_string(),
                format!("{:.1}", p.q25),
                format!("{:.1}", p.median),
                format!("{:.1}", p.q75),
                s.optimal
                    .get(i)
                    .map(|&(_, v)| format!("{v:.1}"))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Fig4Config {
        Fig4Config {
            frames: 200_000,
            instances: 300,
            mean_duration: 50.0,
            skew: SkewSpec::CentralNormal { frac95: 1.0 / 32.0 },
            chunk_counts: vec![2, 16, 64],
            runs: 5,
            max_samples: 8_000,
            seed: 6,
        }
    }

    #[test]
    fn chunked_beats_random_under_skew() {
        let series = run(&tiny());
        let random = &series[0];
        // Paper: "we varied the number of chunks by three orders of
        // magnitude and still see a benefit of chunking versus random
        // across all settings".
        for s in &series[1..] {
            assert!(
                s.found_at_budget > random.found_at_budget,
                "{} ({}) !> random ({})",
                s.label,
                s.found_at_budget,
                random.found_at_budget
            );
        }
    }

    #[test]
    fn optimal_steeper_with_more_chunks() {
        let series = run(&tiny());
        // More chunks = finer knowledge = (weakly) higher optimal curve at
        // the budget.
        let opt_at_budget: Vec<f64> = series[1..]
            .iter()
            .map(|s| s.optimal.last().unwrap().1)
            .collect();
        for w in opt_at_budget.windows(2) {
            assert!(
                w[1] >= w[0] - 1.0,
                "optimal not increasing: {opt_at_budget:?}"
            );
        }
    }

    #[test]
    fn tables_render() {
        let series = run(&Fig4Config {
            runs: 3,
            chunk_counts: vec![4],
            ..tiny()
        });
        assert_eq!(summary_table(&series).len(), 2);
        assert!(curves_table(&series).len() > 5);
    }
}
