//! Figure 5: per-query time-savings ratios (ExSample vs random) at recall
//! .1 / .5 / .9, plus the abstract's headline geometric mean.

use crate::report::{fmt_ratio, Table};
use crate::table1::QueryEval;
use exsample_stats::moments::geometric_mean;

/// One panel (recall level) of Figure 5: queries sorted by descending
/// savings.
#[derive(Debug, Clone)]
pub struct Fig5Panel {
    /// Recall level (.1, .5, .9).
    pub recall: f64,
    /// `(dataset, class, savings)` sorted descending; queries missing a
    /// measurement are omitted.
    pub bars: Vec<(String, String, f64)>,
}

/// Build the three panels from the Table I evaluation results.
pub fn panels(evals: &[QueryEval]) -> Vec<Fig5Panel> {
    crate::table1::RECALLS
        .iter()
        .enumerate()
        .map(|(i, &recall)| {
            let mut bars: Vec<(String, String, f64)> = evals
                .iter()
                .filter_map(|e| {
                    e.savings(i)
                        .map(|s| (e.dataset.clone(), e.class.clone(), s))
                })
                .collect();
            bars.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite savings"));
            Fig5Panel { recall, bars }
        })
        .collect()
}

/// Summary statistics across all bars of all panels (the numbers quoted in
/// §V-C: geometric mean ≈1.9×, max ≈6×, min ≈0.75×).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig5Summary {
    /// Geometric mean of all savings ratios.
    pub geo_mean: f64,
    /// Largest savings ratio.
    pub max: f64,
    /// Smallest savings ratio.
    pub min: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 10th percentile.
    pub p10: f64,
    /// Number of measured bars.
    pub bars: usize,
}

/// Compute the cross-panel summary.
pub fn summary(panels: &[Fig5Panel]) -> Option<Fig5Summary> {
    let all: Vec<f64> = panels
        .iter()
        .flat_map(|p| p.bars.iter().map(|b| b.2))
        .collect();
    if all.is_empty() {
        return None;
    }
    Some(Fig5Summary {
        geo_mean: geometric_mean(&all),
        max: all.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        min: all.iter().cloned().fold(f64::INFINITY, f64::min),
        p90: exsample_stats::quantile(&all, 0.9),
        p10: exsample_stats::quantile(&all, 0.1),
        bars: all.len(),
    })
}

/// Render one panel as a table (the figure's bars, as rows).
pub fn panel_table(panel: &Fig5Panel) -> Table {
    let mut t = Table::new(&["dataset", "class", "savings"]);
    for (ds, cls, s) in &panel.bars {
        t.row(vec![ds.clone(), cls.clone(), fmt_ratio(*s)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(ds: &str, cls: &str, ex: [Option<f64>; 3], rnd: [Option<f64>; 3]) -> QueryEval {
        QueryEval {
            dataset: ds.into(),
            class: cls.into(),
            count: 100,
            proxy_scan_s: 1000.0,
            targets: [10, 50, 90],
            exsample_s: ex,
            random_s: rnd,
        }
    }

    #[test]
    fn panels_sorted_descending() {
        let evals = vec![
            eval("a", "x", [Some(10.0); 3], [Some(20.0); 3]), // 2x
            eval("a", "y", [Some(10.0); 3], [Some(60.0); 3]), // 6x
            eval("b", "z", [Some(10.0); 3], [Some(7.5); 3]),  // 0.75x
        ];
        let p = panels(&evals);
        assert_eq!(p.len(), 3);
        let bars = &p[0].bars;
        assert_eq!(bars.len(), 3);
        assert!((bars[0].2 - 6.0).abs() < 1e-12);
        assert!((bars[2].2 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn summary_statistics() {
        let evals = vec![
            eval("a", "x", [Some(10.0); 3], [Some(20.0); 3]),
            eval("a", "y", [Some(10.0); 3], [Some(45.0); 3]),
        ];
        let s = summary(&panels(&evals)).unwrap();
        assert_eq!(s.bars, 6);
        assert!((s.max - 4.5).abs() < 1e-12);
        assert!((s.min - 2.0).abs() < 1e-12);
        assert!((s.geo_mean - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unmeasured_queries_are_omitted() {
        let evals = vec![eval("a", "x", [None; 3], [Some(5.0); 3])];
        let p = panels(&evals);
        assert!(p.iter().all(|panel| panel.bars.is_empty()));
        assert!(summary(&p).is_none());
    }

    #[test]
    fn panel_table_renders() {
        let evals = vec![eval("a", "x", [Some(2.0); 3], [Some(5.0); 3])];
        let t = panel_table(&panels(&evals)[0]);
        assert_eq!(t.len(), 1);
        assert!(t.to_markdown().contains("2.50x"));
    }
}
