//! Figure 6: per-chunk instance histograms and the skew metric `S` for
//! representative queries.
//!
//! The paper inspects five queries spanning the savings spectrum:
//! dashcam/bicycle (S=14, savings 7), bdd1k/motor (S=19, savings 2),
//! night-street/person (S=4.5, savings 3), archie/car (S=1.1, savings 1),
//! amsterdam/boat (S=1.6, savings 0.9).

use crate::presets::dataset;
use crate::report::Table;
use exsample_optimal::{chunk_instance_counts, skew_metric};
use exsample_videosim::ClassId;

/// The representative queries of Figure 6, in paper order, with the
/// paper's reported `(S, savings)` for reference.
pub const REPRESENTATIVE: [(&str, &str, f64, f64); 5] = [
    ("dashcam", "bicycle", 14.0, 7.0),
    ("BDD 1k", "motor", 19.0, 2.0),
    ("night street", "person", 4.5, 3.0),
    ("archie", "car", 1.1, 1.0),
    ("amsterdam", "boat", 1.6, 0.9),
];

/// Result for one representative query.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Dataset name.
    pub dataset: String,
    /// Class name.
    pub class: String,
    /// Instances per chunk (the bars).
    pub chunk_counts: Vec<usize>,
    /// Our measured skew metric `S`.
    pub s: f64,
    /// Instance count `N`.
    pub n: usize,
    /// Paper's reported S.
    pub paper_s: f64,
    /// Paper's reported savings.
    pub paper_savings: f64,
}

/// Compute chunk histograms and S for the representative queries.
pub fn run(seed: u64) -> Vec<Fig6Row> {
    REPRESENTATIVE
        .iter()
        .map(|&(ds_name, cls_name, paper_s, paper_savings)| {
            let ds = dataset(ds_name).expect("known dataset");
            // Match the per-dataset generation seed used by table1.
            let di = crate::presets::all_datasets()
                .iter()
                .position(|d| d.name == ds_name)
                .expect("dataset index");
            let gt = ds.dataset_spec().generate(seed + di as u64);
            let ci = ds.class_index(cls_name).expect("known class");
            let chunking = ds.chunking();
            let counts = chunk_instance_counts(&gt, ClassId(ci as u16), &chunking);
            let s = skew_metric(&counts);
            Fig6Row {
                dataset: ds_name.to_string(),
                class: cls_name.to_string(),
                n: counts.iter().sum(),
                chunk_counts: counts,
                s,
                paper_s,
                paper_savings,
            }
        })
        .collect()
}

/// Render the summary as a table (histograms go to CSV via
/// [`histogram_table`]).
pub fn to_table(rows: &[Fig6Row]) -> Table {
    let mut t = Table::new(&[
        "query",
        "N",
        "chunks",
        "S (ours)",
        "S (paper)",
        "savings (paper)",
    ]);
    for r in rows {
        t.row(vec![
            format!("{}/{}", r.dataset, r.class),
            r.n.to_string(),
            r.chunk_counts.len().to_string(),
            format!("{:.1}", r.s),
            format!("{:.1}", r.paper_s),
            format!("{:.1}", r.paper_savings),
        ]);
    }
    t
}

/// Per-chunk counts as CSV rows.
pub fn histogram_table(rows: &[Fig6Row]) -> Table {
    let mut t = Table::new(&["query", "chunk", "instances"]);
    for r in rows {
        for (j, &c) in r.chunk_counts.iter().enumerate() {
            t.row(vec![
                format!("{}/{}", r.dataset, r.class),
                j.to_string(),
                c.to_string(),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_ordering_matches_paper() {
        let rows = run(1000);
        assert_eq!(rows.len(), 5);
        let s_of = |name: &str| rows.iter().find(|r| r.dataset == name).unwrap().s;
        // Qualitative ordering: dashcam/bicycle most skewed; archie/car and
        // amsterdam/boat near 1.
        assert!(s_of("dashcam") > 5.0, "dashcam S={}", s_of("dashcam"));
        assert!(s_of("archie") < 2.0, "archie S={}", s_of("archie"));
        assert!(s_of("amsterdam") < 2.5, "amsterdam S={}", s_of("amsterdam"));
        assert!(
            s_of("dashcam") > s_of("night street"),
            "dashcam {} !> night street {}",
            s_of("dashcam"),
            s_of("night street")
        );
        assert!(s_of("night street") > s_of("archie"));
    }

    #[test]
    fn counts_sum_to_n() {
        let rows = run(1000);
        for r in &rows {
            assert_eq!(r.chunk_counts.iter().sum::<usize>(), r.n);
        }
        // Figure 6 N values are exact for these queries.
        let n_of = |ds: &str| rows.iter().find(|r| r.dataset == ds).unwrap().n;
        assert_eq!(n_of("dashcam"), 249);
        assert_eq!(n_of("archie"), 33_546);
        assert_eq!(n_of("amsterdam"), 588);
    }

    #[test]
    fn tables_render() {
        let rows = run(1000);
        assert_eq!(to_table(&rows).len(), 5);
        assert!(histogram_table(&rows).len() > 100);
    }
}
