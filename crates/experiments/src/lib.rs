//! Evaluation harness: everything needed to regenerate the paper's tables
//! and figures.
//!
//! Each experiment module owns one artifact of the paper's evaluation:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`fig2`] | Fig. 2 — sampling distribution of `N1(n)` vs the Gamma belief |
//! | [`fig3`] | Fig. 3 — 4×4 skew × duration simulation grid |
//! | [`fig4`] | Fig. 4 — chunk-count sweep |
//! | [`table1`] | Table I — proxy scan time vs ExSample time-to-recall |
//! | [`fig5`] | Fig. 5 — per-query savings ratios at recall .1/.5/.9 |
//! | [`fig6`] | Fig. 6 — chunk histograms and the skew metric `S` |
//! | [`coverage`] | §III-D — variance-bound coverage check (≈80%) |
//! | [`ablate`] | DESIGN.md ablations: prior, selector, within-chunk order, batch |
//! | [`engine_cmp`] | engine-shared vs. independent execution of overlapping queries |
//! | [`persist_cmp`] | cold vs. warm engine start over a persisted detection store |
//! | [`obs_cmp`] | instrumented vs. uninstrumented engine: observability overhead |
//!
//! Supporting modules: [`presets`] (the six evaluation datasets,
//! calibrated to the paper's reported frame counts, instance counts and
//! skew), [`runner`] (replicated discovery-curve runs), [`report`]
//! (markdown/CSV emission), [`parallel`] (a scoped thread-pool map).

#![warn(missing_docs)]

pub mod ablate;
pub mod coverage;
pub mod engine_cmp;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod obs_cmp;
pub mod parallel;
pub mod persist_cmp;
pub mod presets;
pub mod report;
pub mod runner;
pub mod store_cmp;
pub mod table1;

/// Controls experiment size: `Quick` for CI-sized smoke runs, `Full` for
/// paper-scale regeneration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale parameters (minutes of compute).
    Full,
    /// Reduced replicate counts and budgets (seconds of compute).
    Quick,
}

impl Scale {
    /// Parse from a CLI argument list: `--quick` selects [`Scale::Quick`].
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}
