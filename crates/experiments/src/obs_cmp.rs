//! Observability overhead: instrumented vs. uninstrumented engine.
//!
//! The obs layer's contract is that it is *observational only* — a
//! relaxed atomic add on the hot path, a clock read per span — so an
//! instrumented engine must run the same workload at effectively the
//! same speed. This experiment measures that two independent ways:
//!
//! **Attributed overhead** (the gated number): the cost of one
//! per-batch instrumentation unit — batch-assembly span, dispatch
//! span-with-flight-event, lease record, frame counter — is measured
//! directly, with a cache-thrashing loop between iterations so every
//! clock read and metric write pays the cache misses it pays inside
//! the real engine (a warm-loop microbenchmark flatters it ~2×).
//! That per-unit cost times the number of units the instrumented run
//! actually recorded, over the uninstrumented wall time, is the
//! overhead attributable to instrumentation. It is deterministic to
//! well under half a percent across runs.
//!
//! **Wall-clock A/B** (reported, not gated): the workload runs with
//! [`EngineConfig::observe`](exsample_engine::EngineConfig::observe) on
//! and off in ABBA blocks (alternating which arm takes the outer
//! positions, geometric-mean ratio per block, median across blocks) —
//! the strongest paired design available, cancelling linear drift and
//! period-two oscillation. It is still reported with its per-block
//! spread because on shared single-core runners the block noise floor
//! is ±3–4% — an A/A calibration (both arms identical) reproduces
//! swings that size — which is *larger than the effect being gated*.
//! Gating on it would make CI flip coins; gating on the attributed
//! number holds the instrumentation to the same <3% bar without the
//! noise.
//!
//! The acceptance gate is attributed overhead below 3%.
//!
//! The instrumented arm also dogfoods the obs crate end to end: the
//! harness times its own `submit`/`poll` calls through
//! [`LatencyHistogram`]s and reads the engine's `dispatch_ns`
//! distribution and flight-recorder event count out of
//! [`Engine::diagnostics`].

use exsample_core::driver::StopCond;
use exsample_detect::NoiseModel;
use exsample_engine::{Engine, EngineConfig, QuerySpec};
use exsample_obs::{HistSnapshot, LatencyHistogram, Stage, TraceId};
use exsample_videosim::{ClassId, ClassSpec, DatasetSpec, GroundTruth, SkewSpec};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// Workload shape for the overhead comparison.
#[derive(Debug, Clone, Copy)]
pub struct ObsCmpConfig {
    /// Frames in the synthetic repository.
    pub frames: u64,
    /// Object instances in its ground truth.
    pub instances: usize,
    /// Concurrent queries per run.
    pub queries: u64,
    /// Samples each query draws before stopping.
    pub samples_per_query: u64,
    /// Detector batch size (batched dispatch amortizes span cost).
    pub batch: u32,
    /// Worker threads.
    pub workers: usize,
    /// ABBA blocks (each block = two runs per arm).
    pub replicates: usize,
    /// Polls of each finished session (exercises the poll path).
    pub polls_per_query: u32,
    /// Base seed.
    pub seed: u64,
}

impl ObsCmpConfig {
    /// The default scale: 8 queries × 30k samples over 600k frames,
    /// roughly 600 ms per run — long enough that millisecond-scale
    /// steal/scheduler spikes on shared runners stay small relative to
    /// the wall time being compared. One worker: the comparison wants
    /// the span cost on the critical path, not multi-thread scheduling
    /// jitter (CI boxes are often single-core, where extra workers only
    /// add preemption noise to both arms).
    pub fn default_workload() -> Self {
        ObsCmpConfig {
            frames: 600_000,
            instances: 1_200,
            queries: 8,
            samples_per_query: 30_000,
            batch: 8,
            workers: 1,
            replicates: 7,
            polls_per_query: 64,
            seed: 42,
        }
    }
}

/// Outcome of the instrumented/uninstrumented comparison.
#[derive(Debug, Clone)]
pub struct ObsCmpReport {
    /// Minimum wall time of the uninstrumented arm, seconds.
    pub base_wall_s: f64,
    /// Minimum wall time of the instrumented arm, seconds.
    pub obs_wall_s: f64,
    /// Per-block obs/base wall-time ratios (geometric mean of the two
    /// pairings inside each ABBA block), one per replicate.
    pub pair_ratios: Vec<f64>,
    /// Cold-cache cost of one per-batch instrumentation unit, ns.
    pub unit_cost_ns: f64,
    /// Instrumentation units one instrumented run records (the largest
    /// of its batch-assembly / lease / dispatch record counts).
    pub units_per_run: u64,
    /// Detector invocations per run (identical across arms and
    /// replicates — the workload is deterministic).
    pub invocations: u64,
    /// `dispatch_ns` distribution of the instrumented arm (merged over
    /// replicates).
    pub dispatch: HistSnapshot,
    /// Harness-side `submit` latency (instrumented arm, merged).
    pub submit: HistSnapshot,
    /// Harness-side `poll` latency (instrumented arm, merged).
    pub poll: HistSnapshot,
    /// Flight-recorder events left by one instrumented run.
    pub flight_events: u64,
    /// Trace spans one instrumented run collected across its sessions
    /// — evidence the gated arm ran with distributed tracing enabled.
    pub trace_spans: u64,
}

impl ObsCmpReport {
    /// Attributed fractional overhead: measured cold-cache cost per
    /// instrumentation unit times the units one run records, over the
    /// uninstrumented wall time. Deterministic; this is the gated
    /// number (see the module docs for why wall-clock A/B is not).
    pub fn overhead_frac(&self) -> f64 {
        self.unit_cost_ns * self.units_per_run as f64 / (self.base_wall_s * 1e9)
    }

    /// Wall-clock A/B overhead: the median ABBA-block obs/base
    /// wall-time ratio, minus one. Reported alongside the per-block
    /// spread; noise-floor-limited on shared runners.
    pub fn wall_overhead_frac(&self) -> f64 {
        let mut ratios = self.pair_ratios.clone();
        assert!(!ratios.is_empty(), "report holds at least one pair");
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let mid = ratios.len() / 2;
        let median = if ratios.len() % 2 == 1 {
            ratios[mid]
        } else {
            (ratios[mid - 1] + ratios[mid]) / 2.0
        };
        median - 1.0
    }

    /// The acceptance gate: attributed instrumentation cost below 3%.
    pub fn overhead_ok(&self) -> bool {
        self.overhead_frac() < 0.03
    }
}

struct RunOutcome {
    wall_s: f64,
    invocations: u64,
    dispatch: HistSnapshot,
    batches: u64,
    leases: u64,
    flight_events: u64,
    trace_spans: u64,
}

/// Measure the cold-cache cost of one per-batch instrumentation unit:
/// the exact sequence the engine pays per batch — a batch-assembly
/// span, a dispatch span with flight event, a lease record (with its
/// own clock reads, as in the engine), and a counter add. A 512 KiB
/// thrash between iterations evicts the obs state, so clock reads and
/// metric writes pay the cache misses they pay on the real hot path; a
/// warm loop would understate the cost roughly 2×. The two timestamp
/// reads bracketing each unit are *included* in the reported cost,
/// overstating it slightly — the attribution stays an upper bound.
fn measure_unit_cost_ns(iterations: u64) -> f64 {
    let engine = Engine::new(EngineConfig {
        observe: true,
        trace: true,
        ..EngineConfig::default()
    });
    let obs = engine.obs();
    let mut buf = vec![0u8; 512 << 10];
    let mut acc = 0u64;
    let mut unit_ns = 0u64;
    for i in 0..iterations {
        // Open the session's trace outside the timed section: in a real
        // run the trace already exists when batch spans record, so the
        // timed unit pays the per-span storage path (the worst case —
        // every span is kept), not the per-session setup.
        obs.tracer().open_root(TraceId::from_session(i), i);
        let mut j = 0;
        while j < buf.len() {
            buf[j] = buf[j].wrapping_add(1);
            acc = acc.wrapping_add(u64::from(buf[j]));
            j += 64;
        }
        let t0 = Instant::now();
        {
            let mut s = obs.span(Stage::BatchAssembly, i);
            s.set_key(8);
            let mut d = obs.span_flight(Stage::Dispatch, i);
            d.set_key(8);
        }
        let t = Instant::now();
        obs.record(Stage::Lease, i, t.elapsed().as_nanos() as u64, 8);
        obs.frames_total.add(8);
        unit_ns += t0.elapsed().as_nanos() as u64;
    }
    black_box(acc);
    unit_ns as f64 / iterations as f64
}

/// One full workload on a fresh engine; `observe` selects the arm. The
/// submit/poll histograms belong to the harness and are recorded only
/// when given (instrumented arm) — the baseline arm must not even pay
/// for the harness's own clock reads differently.
fn run_once(
    cfg: &ObsCmpConfig,
    truth: &Arc<GroundTruth>,
    observe: bool,
    submit_h: Option<&LatencyHistogram>,
    poll_h: Option<&LatencyHistogram>,
) -> RunOutcome {
    // The instrumented arm runs with distributed tracing on as well, so
    // the gated attribution covers the full observability surface — a
    // span guard's tracer write included, not just counters and
    // histograms.
    let engine = Engine::new(EngineConfig {
        workers: cfg.workers,
        quantum: 8,
        observe,
        trace: observe,
        ..EngineConfig::default()
    });
    let repo = engine.register_repo("obs-cmp", truth.clone(), NoiseModel::none(), cfg.seed);
    let t0 = Instant::now();
    let ids: Vec<_> = (0..cfg.queries)
        .map(|q| {
            let spec = QuerySpec::new(repo, ClassId(0), StopCond::samples(cfg.samples_per_query))
                .seed(cfg.seed + q)
                .batch(cfg.batch);
            let t = Instant::now();
            let id = engine.submit(spec).expect("valid spec");
            if let Some(h) = submit_h {
                h.record(t.elapsed().as_nanos() as u64);
            }
            id
        })
        .collect();
    for &id in &ids {
        engine.wait(id).expect("session completes");
    }
    // Fixed, identical poll load per arm: cursor walks from 0 so every
    // poll decodes real events.
    for &id in &ids {
        let mut cursor = 0;
        for _ in 0..cfg.polls_per_query {
            let t = Instant::now();
            let snap = engine.poll_window(id, cursor, Some(16)).expect("poll");
            if let Some(h) = poll_h {
                h.record(t.elapsed().as_nanos() as u64);
            }
            cursor = snap.next_cursor;
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    let diag = engine.diagnostics();
    let hist_total = |name: &str| diag.histogram(name).map_or(0, |h| h.total());
    let trace_spans = ids
        .iter()
        .map(|id| engine.collect_trace(TraceId::from_session(id.0)).len() as u64)
        .sum();
    RunOutcome {
        wall_s,
        invocations: engine.detector_invocations(),
        dispatch: diag.histogram("dispatch_ns").copied().unwrap_or_default(),
        batches: hist_total("batch_assembly_ns"),
        leases: hist_total("lease_ns"),
        flight_events: diag.events.len() as u64,
        trace_spans,
    }
}

/// Run the comparison: `replicates` ABBA blocks, median block ratio.
pub fn run(cfg: &ObsCmpConfig) -> ObsCmpReport {
    let truth = Arc::new(
        DatasetSpec::single_class(
            cfg.frames,
            ClassSpec::new(
                "car",
                cfg.instances,
                200.0,
                SkewSpec::CentralNormal { frac95: 0.2 },
            ),
        )
        .generate(cfg.seed),
    );
    let submit_h = LatencyHistogram::new();
    let poll_h = LatencyHistogram::new();
    let mut base_wall_s = f64::INFINITY;
    let mut obs_wall_s = f64::INFINITY;
    let mut pair_ratios = Vec::with_capacity(cfg.replicates);
    let mut invocations = 0;
    let mut dispatch = HistSnapshot::default();
    let mut units_per_run = 0;
    let mut flight_events = 0;
    let mut trace_spans = 0;
    for r in 0..cfg.replicates {
        // One ABBA block: outer and inner positions each hold one run
        // of each arm, so position-dependent slowdowns (linear drift,
        // period-two oscillation) cancel inside the block. Which arm
        // takes the outer positions alternates per block.
        let obs_outer = r % 2 == 0;
        let mut obs_walls = [0.0f64; 2];
        let mut base_walls = [0.0f64; 2];
        for pos in 0..4 {
            // Positions 0 and 3 are the outer arm, 1 and 2 the inner.
            let outer = pos == 0 || pos == 3;
            let slot = usize::from(pos >= 2);
            if outer == obs_outer {
                let o = run_once(cfg, &truth, true, Some(&submit_h), Some(&poll_h));
                obs_wall_s = obs_wall_s.min(o.wall_s);
                obs_walls[slot] = o.wall_s;
                units_per_run = o.batches.max(o.leases).max(o.dispatch.total());
                dispatch.merge(&o.dispatch);
                flight_events = o.flight_events;
                trace_spans = o.trace_spans;
                invocations = o.invocations;
            } else {
                let b = run_once(cfg, &truth, false, None, None);
                base_wall_s = base_wall_s.min(b.wall_s);
                base_walls[slot] = b.wall_s;
                assert!(
                    b.dispatch.is_empty() && b.flight_events == 0 && b.trace_spans == 0,
                    "uninstrumented arm must record nothing"
                );
                if invocations != 0 {
                    assert_eq!(
                        b.invocations, invocations,
                        "both arms must run the identical workload"
                    );
                }
                invocations = b.invocations;
            }
        }
        // Geometric mean of the block's two obs/base pairings.
        let ratio = ((obs_walls[0] / base_walls[0]) * (obs_walls[1] / base_walls[1])).sqrt();
        pair_ratios.push(ratio);
    }
    // Calibrate the per-unit instrumentation cost after the A/B runs so
    // the calibration loop cannot warm or pollute caches for them.
    let unit_cost_ns = measure_unit_cost_ns(20_000.min(units_per_run.max(1_000)));
    ObsCmpReport {
        base_wall_s,
        obs_wall_s,
        pair_ratios,
        unit_cost_ns,
        units_per_run,
        invocations,
        dispatch,
        submit: submit_h.snapshot(),
        poll: poll_h.snapshot(),
        flight_events,
        trace_spans,
    }
}

/// Render a report as the hand-rolled JSON the bench artifact records.
pub fn to_json(report: &ObsCmpReport) -> String {
    let q = |h: &HistSnapshot, p: f64| h.quantile(p);
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"obs_cmp\",\n",
            "  \"base_wall_s\": {:.6},\n",
            "  \"obs_wall_s\": {:.6},\n",
            "  \"pairs\": {},\n",
            "  \"wall_overhead_frac\": {:.6},\n",
            "  \"unit_cost_ns\": {:.1},\n",
            "  \"units_per_run\": {},\n",
            "  \"overhead_frac\": {:.6},\n",
            "  \"overhead_ok\": {},\n",
            "  \"invocations\": {},\n",
            "  \"dispatch\": {{ \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {} }},\n",
            "  \"submit\": {{ \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {} }},\n",
            "  \"poll\": {{ \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {} }},\n",
            "  \"flight_events\": {},\n",
            "  \"trace_spans\": {}\n",
            "}}\n",
        ),
        report.base_wall_s,
        report.obs_wall_s,
        report.pair_ratios.len(),
        report.wall_overhead_frac(),
        report.unit_cost_ns,
        report.units_per_run,
        report.overhead_frac(),
        report.overhead_ok(),
        report.invocations,
        report.dispatch.total(),
        q(&report.dispatch, 0.5),
        q(&report.dispatch, 0.99),
        report.submit.total(),
        q(&report.submit, 0.5),
        q(&report.submit, 0.99),
        report.poll.total(),
        q(&report.poll, 0.5),
        q(&report.poll, 0.99),
        report.flight_events,
        report.trace_spans,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instrumented_arm_measures_and_baseline_stays_silent() {
        let cfg = ObsCmpConfig {
            frames: 10_000,
            instances: 40,
            queries: 2,
            samples_per_query: 300,
            batch: 4,
            workers: 2,
            replicates: 1,
            polls_per_query: 8,
            seed: 7,
        };
        let report = run(&cfg);
        assert!(report.invocations > 0);
        assert!(report.dispatch.total() > 0, "dispatches were timed");
        assert_eq!(
            report.submit.total(),
            4,
            "one submit per query, two instrumented runs per block"
        );
        assert_eq!(report.poll.total(), 32, "fixed poll load");
        assert!(report.flight_events > 0);
        assert!(
            report.trace_spans > 0,
            "the instrumented arm must have collected trace spans"
        );
        assert_eq!(report.pair_ratios.len(), 1);
        assert!(report.unit_cost_ns > 0.0, "calibration measured something");
        assert!(report.units_per_run > 0, "instrumented run recorded units");
        assert!(report.overhead_frac().is_finite());
        let json = to_json(&report);
        assert!(json.contains("\"bench\": \"obs_cmp\""));
        assert!(json.contains("\"overhead_frac\""));
        // No timing assertion here: CI machines are too noisy for a
        // quick run; the bench binary gates the full-scale number.
    }
}
