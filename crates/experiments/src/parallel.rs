//! A minimal scoped-thread parallel map for replicate experiment runs.
//!
//! Experiments replicate each configuration over many seeds; the runs are
//! embarrassingly parallel and CPU-bound, so a simple atomic work index
//! over scoped threads is all that is needed (no long-lived pool, no
//! unsafe, results land in order).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Map `f` over `0..n` job indices on up to `threads` OS threads,
/// returning results in index order. `f` must be `Sync` (it is shared by
/// reference across threads) — capture per-job state via the index.
pub fn parallel_map<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    assert!(threads > 0, "need at least one thread");
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    if threads == 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(i);
                *results[i].lock().expect("poisoned result slot") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned").expect("job completed"))
        .collect()
}

/// The workspace-wide worker-thread convention (`EXSAMPLE_THREADS`),
/// shared with the engine's worker pool.
pub use exsample_engine::default_threads;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_order() {
        let out = parallel_map(100, 8, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_path() {
        let out = parallel_map(10, 1, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_jobs() {
        let out: Vec<u32> = parallel_map(0, 4, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let counters: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        parallel_map(50, 7, |i| counters[i].fetch_add(1, Ordering::Relaxed));
        for c in &counters {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() > 0);
    }
}
