//! Cold vs. warm engine start over a persisted detection store.
//!
//! Quantifies what `exsample-persist` buys a restarted deployment. The
//! same overlapping query fleet runs through three engine *incarnations*
//! sharing one persist directory:
//!
//! 1. **cold** — empty directory; every sampled frame is a detector
//!    invocation (write-behind fills the log as a side effect);
//! 2. **warm replay** — a fresh engine on the same directory re-runs the
//!    identical fleet (same seeds, cold beliefs). Determinism means it
//!    samples exactly the same frames, all preloaded: detector
//!    invocations must be **zero**;
//! 3. **probe** — a *new* query (unseen seed) runs twice: once on a
//!    persistence-free engine (beliefs start from the prior, and nothing
//!    it learns can leak back into the store) and once on a further
//!    incarnation warm-started from the *fleet's* persisted belief
//!    snapshots — measuring how much cross-session belief sharing
//!    shortens exploration.

use crate::engine_cmp::EngineCmpConfig;
use exsample_core::driver::StopCond;
use exsample_detect::NoiseModel;
use exsample_engine::{
    dataset_fingerprint, detector_fingerprint, CacheStats, Engine, EngineConfig, PersistConfig,
    QuerySpec, SessionStatus,
};
use exsample_videosim::{ClassId, GroundTruth};
use std::path::PathBuf;
use std::sync::Arc;

/// Outcome of the cold/warm comparison.
#[derive(Debug, Clone)]
pub struct PersistCmpReport {
    /// Frames sampled by the cold fleet (= its detector invocations).
    pub cold_invocations: u64,
    /// Detector invocations of the warm replay (must be 0).
    pub replay_invocations: u64,
    /// Records preloaded into the warm engine's cache.
    pub preloaded_frames: u64,
    /// Samples the probe query needed starting from the prior.
    pub probe_cold_samples: u64,
    /// Samples the probe query needed with warm-started beliefs.
    pub probe_warm_samples: u64,
    /// Cache counters of the warm-replay engine.
    pub warm_cache: CacheStats,
}

impl PersistCmpReport {
    /// Fraction of the cold run's detector bill the restart avoided.
    pub fn restart_savings(&self) -> f64 {
        if self.cold_invocations == 0 {
            0.0
        } else {
            1.0 - self.replay_invocations as f64 / self.cold_invocations as f64
        }
    }
}

fn engine_on(dir: &PathBuf, cfg: &EngineCmpConfig, fps: f64, fingerprint: u64) -> Engine {
    Engine::new(EngineConfig {
        workers: cfg.workers,
        detector_fps: fps,
        persist: Some(PersistConfig::new(dir).fingerprint(fingerprint)),
        ..EngineConfig::default()
    })
}

fn run_fleet(engine: &Engine, gt: &Arc<GroundTruth>, cfg: &EngineCmpConfig) -> u64 {
    let repo = engine.register_repo("persist-cmp", gt.clone(), NoiseModel::none(), cfg.seed);
    let ids: Vec<_> = (0..cfg.queries)
        .map(|q| {
            engine
                .submit(
                    QuerySpec::new(repo, ClassId(0), StopCond::results(cfg.target))
                        .chunks(cfg.chunks)
                        .seed(cfg.seed + q as u64)
                        .warm_start(false),
                )
                .expect("valid spec")
        })
        .collect();
    let mut frames = 0;
    for id in ids {
        let report = engine.wait(id).expect("session completes");
        assert_eq!(report.status, SessionStatus::Done);
        frames += report.charges.frames;
    }
    frames
}

/// Run the probe query (fresh seed) on `engine` and return its sample
/// count. `warm` controls belief warm-starting (a no-op on engines
/// without persistence).
fn run_probe(engine: &Engine, gt: &Arc<GroundTruth>, cfg: &EngineCmpConfig, warm: bool) -> u64 {
    let repo = engine.register_repo("persist-cmp", gt.clone(), NoiseModel::none(), cfg.seed);
    let id = engine
        .submit(
            QuerySpec::new(repo, ClassId(0), StopCond::results(cfg.target))
                .chunks(cfg.chunks)
                .seed(cfg.seed + 1000)
                .warm_start(warm),
        )
        .expect("valid spec");
    engine.wait(id).expect("probe completes").trace.samples()
}

/// Run the full comparison in a scratch directory (removed afterwards).
pub fn run(cfg: &EngineCmpConfig, detector_fps: f64) -> PersistCmpReport {
    let dir = std::env::temp_dir().join(format!(
        "exsample-persist-cmp-{}-{}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let gt = cfg.ground_truth();
    // Detector config AND footage identity (see `dataset_fingerprint`).
    let fingerprint =
        detector_fingerprint(&NoiseModel::none(), cfg.seed) ^ dataset_fingerprint(&gt);

    // Incarnation 1: cold.
    let cold = engine_on(&dir, cfg, detector_fps, fingerprint);
    let cold_frames = run_fleet(&cold, &gt, cfg);
    let cold_invocations = cold.detector_invocations();
    assert!(cold_frames >= cold_invocations);
    drop(cold); // flush the detection log

    // Incarnation 2: warm replay of the identical fleet.
    let warm = engine_on(&dir, cfg, detector_fps, fingerprint);
    let preloaded = warm
        .persist_stats()
        .expect("persistence on")
        .preloaded_frames;
    let warm_frames = run_fleet(&warm, &gt, cfg);
    assert_eq!(warm_frames, cold_frames, "replay must sample identically");
    let replay_invocations = warm.detector_invocations();
    let warm_cache = warm.cache_stats();
    drop(warm);

    // The unseen probe, cold vs. warm beliefs. The cold side runs on a
    // persistence-free engine so its own learning cannot overwrite the
    // fleet's snapshot (latest-wins) and hand the "warm" side a snapshot
    // of the identical query — which would measure self-replay, not
    // cross-session sharing.
    let probe_cold_samples = {
        let engine = Engine::new(EngineConfig {
            workers: cfg.workers,
            detector_fps,
            ..EngineConfig::default()
        });
        run_probe(&engine, &gt, cfg, false)
    };
    let probe_warm_samples = {
        let engine = engine_on(&dir, cfg, detector_fps, fingerprint);
        run_probe(&engine, &gt, cfg, true)
    };

    let _ = std::fs::remove_dir_all(&dir);
    PersistCmpReport {
        cold_invocations,
        replay_invocations,
        preloaded_frames: preloaded,
        probe_cold_samples,
        probe_warm_samples,
        warm_cache,
    }
}

/// Render a report as a markdown table.
pub fn to_table(report: &PersistCmpReport) -> crate::report::Table {
    let mut t = crate::report::Table::new(&["run", "detector invocations", "probe samples"]);
    t.row(vec![
        "cold start".into(),
        report.cold_invocations.to_string(),
        report.probe_cold_samples.to_string(),
    ]);
    t.row(vec![
        "warm restart".into(),
        report.replay_invocations.to_string(),
        report.probe_warm_samples.to_string(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_restart_pays_zero_for_replayed_fleet() {
        let cfg = EngineCmpConfig {
            frames: 20_000,
            instances: 40,
            mean_duration: 40.0,
            skew: exsample_videosim::SkewSpec::CentralNormal { frac95: 0.15 },
            queries: 3,
            target: 25,
            chunks: 8,
            seed: 71,
            workers: 3,
        };
        let report = run(&cfg, 20.0);
        assert!(report.cold_invocations > 0);
        assert_eq!(report.replay_invocations, 0);
        assert_eq!(report.preloaded_frames, report.cold_invocations);
        assert!((report.restart_savings() - 1.0).abs() < 1e-12);
        // The replay was answered entirely by warm-loaded entries.
        assert_eq!(report.warm_cache.misses, 0);
        assert!(report.warm_cache.warm_loads > 0);
        // Both probes found their targets; sample counts are positive.
        assert!(report.probe_cold_samples > 0 && report.probe_warm_samples > 0);
        let md = to_table(&report).to_markdown();
        assert!(md.contains("warm restart"));
    }
}
