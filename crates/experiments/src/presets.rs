//! The six evaluation datasets, calibrated to the paper.
//!
//! We cannot ship BDD / dashcam / amsterdam / archie / night-street video,
//! so each dataset is synthesized with the statistical structure the paper
//! reports (see DESIGN.md §2). Calibration sources:
//!
//! * **Frame counts** — Table I's proxy-scan column is "bound by
//!   io+decode" at ≈100 fps, so `frames = scan_seconds × 100`
//!   (e.g. dashcam 2h54m → 1.044M frames, consistent with the stated
//!   "over 1.1 million video frames").
//! * **Chunk layout** — 20-minute chunks for dashcam (≈29 chunks), ≈60
//!   chunks for the three static-camera datasets, one chunk per clip for
//!   BDD-1k (1000) and BDD-MOT (1600 clips × 200 frames).
//! * **Instance counts** — Figure 6 gives exact counts for five queries
//!   (dashcam/bicycle 249, bdd1k/motor 509, night-street/person 2078,
//!   archie/car 33546, amsterdam/boat 588); the remaining counts are
//!   plausible values for the content.
//! * **Mean durations** — from Table I's 90%-recall times via the random
//!   sampling model `0.9 = 1 − E[exp(−n90·D/F)]` with `D` lognormal
//!   (σ = 1). For a fixed duration this gives `dur = F·ln(10)/(20 fps ·
//!   t90)`; the lognormal tail (short-lived instances dominate the 90%
//!   mark) requires scaling the mean by ×2.82, found by solving
//!   `E[exp(-ln(10)·k·Y)] = 0.1` for `Y ~ LN(mean 1, σ 1)`.
//! * **Skew** — qualitative levels matched to Figure 6's `S` metric
//!   (archie/car and amsterdam/boat nearly uniform, dashcam/bicycle
//!   extreme, etc.).

use exsample_core::Chunking;
use exsample_videosim::{ClassSpec, DatasetSpec, DurationSpec, SkewSpec};

/// Detector throughput the paper measures for query execution
/// ("ExSample processes frames at a rate of 20 frames per second, bound by
/// the object detector throughput").
pub const DETECT_FPS: f64 = 20.0;

/// Proxy scoring throughput ("100 frames per second, bound by io+decode").
pub const SCORE_FPS: f64 = 100.0;

/// Qualitative placement-skew levels mapped onto generator parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkewLevel {
    /// Uniform spread (archie/car, amsterdam/boat).
    None,
    /// Mild clustering.
    Low,
    /// Moderate clustering.
    Medium,
    /// Strong clustering (most savings winners in Fig. 5).
    High,
    /// Nearly everything in one region (dashcam/bicycle, S ≈ M/2).
    Extreme,
}

impl SkewLevel {
    /// Concrete generator spec for this level.
    pub fn spec(&self) -> SkewSpec {
        match self {
            SkewLevel::None => SkewSpec::Uniform,
            SkewLevel::Low => SkewSpec::HotSpots {
                spots: 8,
                mass: 0.3,
                width_frac: 0.03,
            },
            SkewLevel::Medium => SkewSpec::HotSpots {
                spots: 6,
                mass: 0.6,
                width_frac: 0.02,
            },
            SkewLevel::High => SkewSpec::HotSpots {
                spots: 4,
                mass: 0.7,
                width_frac: 0.015,
            },
            SkewLevel::Extreme => SkewSpec::HotSpots {
                spots: 1,
                mass: 0.9,
                width_frac: 0.008,
            },
        }
    }
}

/// One query class of an evaluation dataset.
#[derive(Debug, Clone)]
pub struct QueryClass {
    /// Class name as in Table I.
    pub name: &'static str,
    /// Number of distinct instances `N`.
    pub count: usize,
    /// Mean visible duration in frames.
    pub mean_duration: f64,
    /// Placement skew level.
    pub skew: SkewLevel,
}

/// How a dataset is chunked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChunkScheme {
    /// Split into this many equal chunks (static cameras, dashcam).
    Count(usize),
    /// One chunk per clip (BDD).
    PerClip,
}

/// One of the six evaluation datasets.
#[derive(Debug, Clone)]
pub struct EvalDataset {
    /// Dataset name as in Table I.
    pub name: &'static str,
    /// Total frames (from the proxy-scan calibration).
    pub frames: u64,
    /// Frame rate.
    pub fps: f64,
    /// Clip length for per-clip datasets.
    pub clip_frames: Option<u64>,
    /// Chunking scheme.
    pub chunks: ChunkScheme,
    /// Query classes.
    pub classes: Vec<QueryClass>,
}

/// Typical box size per class name (pixels), for detector realism.
fn mean_box(name: &str) -> (f32, f32) {
    match name {
        "person" | "pedestrian" | "rider" => (45.0, 110.0),
        "traffic light" => (28.0, 60.0),
        "traffic sign" | "stop sign" => (40.0, 40.0),
        "fire hydrant" => (35.0, 55.0),
        "bicycle" | "bike" | "motorcycle" | "motor" => (70.0, 60.0),
        "dog" => (60.0, 45.0),
        "boat" => (160.0, 70.0),
        "bus" | "truck" | "trailer" | "train" => (140.0, 100.0),
        _ => (110.0, 80.0), // car and friends
    }
}

impl EvalDataset {
    /// The generator spec for this dataset.
    pub fn dataset_spec(&self) -> DatasetSpec {
        DatasetSpec {
            frames: self.frames,
            fps: self.fps,
            img_w: 1920.0,
            img_h: 1080.0,
            clip_frames: self.clip_frames,
            classes: self
                .classes
                .iter()
                .map(|q| ClassSpec {
                    name: q.name.to_string(),
                    count: q.count,
                    duration: DurationSpec::LogNormalMean {
                        mean: q.mean_duration,
                        sigma: 1.0,
                    },
                    skew: q.skew.spec(),
                    mean_box: mean_box(q.name),
                })
                .collect(),
        }
    }

    /// The chunking used for ExSample on this dataset.
    pub fn chunking(&self) -> Chunking {
        match self.chunks {
            ChunkScheme::Count(m) => Chunking::even(self.frames, m),
            ChunkScheme::PerClip => self.dataset_spec().repo().chunking_per_clip(),
        }
    }

    /// Seconds a proxy model needs to score every frame.
    pub fn proxy_scan_seconds(&self) -> f64 {
        self.frames as f64 / SCORE_FPS
    }

    /// Look up a class index by name.
    pub fn class_index(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.name == name)
    }
}

/// All six evaluation datasets of §V-A.
pub fn all_datasets() -> Vec<EvalDataset> {
    use SkewLevel::*;
    vec![
        EvalDataset {
            // 1000 random BDD clips, <1 min each; forced per-clip chunks.
            name: "BDD 1k",
            frames: 324_000,
            fps: 30.0,
            clip_frames: Some(324),
            chunks: ChunkScheme::PerClip,
            classes: vec![
                QueryClass {
                    name: "bike",
                    count: 400,
                    mean_duration: 42.9,
                    skew: High,
                },
                QueryClass {
                    name: "bus",
                    count: 600,
                    mean_duration: 35.8,
                    skew: Medium,
                },
                QueryClass {
                    name: "motor",
                    count: 509,
                    mean_duration: 38.1,
                    skew: High,
                },
                QueryClass {
                    name: "person",
                    count: 5000,
                    mean_duration: 48.8,
                    skew: Medium,
                },
                QueryClass {
                    name: "rider",
                    count: 350,
                    mean_duration: 38.9,
                    skew: High,
                },
                QueryClass {
                    name: "traffic light",
                    count: 4000,
                    mean_duration: 35.0,
                    skew: Low,
                },
                QueryClass {
                    name: "traffic sign",
                    count: 6000,
                    mean_duration: 30.2,
                    skew: Low,
                },
                QueryClass {
                    name: "truck",
                    count: 2000,
                    mean_duration: 35.0,
                    skew: Medium,
                },
            ],
        },
        EvalDataset {
            // 1600 clips of ~200 frames.
            name: "BDD MOT",
            frames: 320_000,
            fps: 30.0,
            clip_frames: Some(200),
            chunks: ChunkScheme::PerClip,
            classes: vec![
                QueryClass {
                    name: "bicycle",
                    count: 200,
                    mean_duration: 49.1,
                    skew: High,
                },
                QueryClass {
                    name: "bus",
                    count: 400,
                    mean_duration: 82.1,
                    skew: Medium,
                },
                QueryClass {
                    name: "car",
                    count: 15_000,
                    mean_duration: 57.2,
                    skew: Low,
                },
                QueryClass {
                    name: "motorcycle",
                    count: 150,
                    mean_duration: 44.0,
                    skew: High,
                },
                QueryClass {
                    name: "pedestrian",
                    count: 6000,
                    mean_duration: 71.6,
                    skew: Medium,
                },
                QueryClass {
                    name: "rider",
                    count: 280,
                    mean_duration: 52.5,
                    skew: High,
                },
                QueryClass {
                    name: "trailer",
                    count: 80,
                    mean_duration: 45.4,
                    skew: High,
                },
                QueryClass {
                    name: "train",
                    count: 30,
                    mean_duration: 53.9,
                    skew: Extreme,
                },
                QueryClass {
                    name: "truck",
                    count: 1800,
                    mean_duration: 83.5,
                    skew: Medium,
                },
            ],
        },
        EvalDataset {
            // 20 hours of fixed camera over a canal.
            name: "amsterdam",
            frames: 3_540_000,
            fps: 49.2,
            clip_frames: Option::None,
            chunks: ChunkScheme::Count(60),
            classes: vec![
                QueryClass {
                    name: "bicycle",
                    count: 3000,
                    mean_duration: 490.7,
                    skew: Medium,
                },
                QueryClass {
                    name: "boat",
                    count: 588,
                    mean_duration: 4794.0,
                    skew: None,
                },
                QueryClass {
                    name: "car",
                    count: 6000,
                    mean_duration: 812.2,
                    skew: Low,
                },
                QueryClass {
                    name: "dog",
                    count: 180,
                    mean_duration: 174.8,
                    skew: Medium,
                },
                QueryClass {
                    name: "motorcycle",
                    count: 130,
                    mean_duration: 138.2,
                    skew: High,
                },
                QueryClass {
                    name: "person",
                    count: 8000,
                    mean_duration: 885.5,
                    skew: Low,
                },
                QueryClass {
                    name: "truck",
                    count: 700,
                    mean_duration: 490.7,
                    skew: Medium,
                },
            ],
        },
        EvalDataset {
            name: "archie",
            frames: 3_534_000,
            fps: 49.1,
            clip_frames: Option::None,
            chunks: ChunkScheme::Count(60),
            classes: vec![
                QueryClass {
                    name: "bicycle",
                    count: 1200,
                    mean_duration: 445.6,
                    skew: Medium,
                },
                QueryClass {
                    name: "bus",
                    count: 450,
                    mean_duration: 329.9,
                    skew: Medium,
                },
                QueryClass {
                    name: "car",
                    count: 33_546,
                    mean_duration: 1807.6,
                    skew: None,
                },
                QueryClass {
                    name: "motorcycle",
                    count: 160,
                    mean_duration: 163.6,
                    skew: High,
                },
                QueryClass {
                    name: "person",
                    count: 9000,
                    mean_duration: 383.5,
                    skew: Low,
                },
                QueryClass {
                    name: "truck",
                    count: 600,
                    mean_duration: 236.9,
                    skew: Medium,
                },
            ],
        },
        EvalDataset {
            // ~10 hours of drives split into 20-minute chunks.
            name: "dashcam",
            frames: 1_044_000,
            fps: 30.0,
            clip_frames: Option::None,
            chunks: ChunkScheme::Count(29),
            classes: vec![
                QueryClass {
                    name: "bicycle",
                    count: 249,
                    mean_duration: 94.2,
                    skew: Extreme,
                },
                QueryClass {
                    name: "bus",
                    count: 400,
                    mean_duration: 31.9,
                    skew: Medium,
                },
                QueryClass {
                    name: "fire hydrant",
                    count: 350,
                    mean_duration: 75.3,
                    skew: Medium,
                },
                QueryClass {
                    name: "person",
                    count: 2500,
                    mean_duration: 83.2,
                    skew: Medium,
                },
                QueryClass {
                    name: "stop sign",
                    count: 800,
                    mean_duration: 38.4,
                    skew: High,
                },
                QueryClass {
                    name: "traffic light",
                    count: 1500,
                    mean_duration: 69.7,
                    skew: High,
                },
                QueryClass {
                    name: "truck",
                    count: 900,
                    mean_duration: 31.9,
                    skew: Low,
                },
            ],
        },
        EvalDataset {
            name: "night street",
            frames: 2_880_000,
            fps: 40.0,
            clip_frames: Option::None,
            chunks: ChunkScheme::Count(60),
            classes: vec![
                QueryClass {
                    name: "bus",
                    count: 300,
                    mean_duration: 298.9,
                    skew: Medium,
                },
                QueryClass {
                    name: "car",
                    count: 12_000,
                    mean_duration: 1415.6,
                    skew: Low,
                },
                QueryClass {
                    name: "dog",
                    count: 60,
                    mean_duration: 71.1,
                    skew: High,
                },
                QueryClass {
                    name: "motorcycle",
                    count: 25,
                    mean_duration: 34.7,
                    skew: Extreme,
                },
                QueryClass {
                    name: "person",
                    count: 2078,
                    mean_duration: 1037.8,
                    skew: Medium,
                },
                QueryClass {
                    name: "truck",
                    count: 500,
                    mean_duration: 242.5,
                    skew: Medium,
                },
            ],
        },
    ]
}

/// Look up one dataset by name.
pub fn dataset(name: &str) -> Option<EvalDataset> {
    all_datasets().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_datasets_43_queries() {
        let ds = all_datasets();
        assert_eq!(ds.len(), 6);
        let total: usize = ds.iter().map(|d| d.classes.len()).sum();
        assert_eq!(total, 43, "Table I has 43 dataset/class rows");
    }

    #[test]
    fn proxy_scan_times_match_table_1() {
        // Table I scan column: BDD 1k 54m, BDD MOT 53m, amsterdam 9h50m,
        // archie 9h49m, dashcam 2h54m, night street 8h.
        let expect = [
            ("BDD 1k", 54.0 * 60.0),
            ("BDD MOT", 53.0 * 60.0),
            ("amsterdam", 9.0 * 3600.0 + 50.0 * 60.0),
            ("archie", 9.0 * 3600.0 + 49.0 * 60.0),
            ("dashcam", 2.0 * 3600.0 + 54.0 * 60.0),
            ("night street", 8.0 * 3600.0),
        ];
        for (name, secs) in expect {
            let d = dataset(name).unwrap();
            let got = d.proxy_scan_seconds();
            assert!(
                (got / secs - 1.0).abs() < 0.02,
                "{name}: got {got}, expected {secs}"
            );
        }
    }

    #[test]
    fn figure6_instance_counts_respected() {
        assert_eq!(
            dataset("dashcam").unwrap().classes
                [dataset("dashcam").unwrap().class_index("bicycle").unwrap()]
            .count,
            249
        );
        let bdd = dataset("BDD 1k").unwrap();
        assert_eq!(bdd.classes[bdd.class_index("motor").unwrap()].count, 509);
        let ns = dataset("night street").unwrap();
        assert_eq!(ns.classes[ns.class_index("person").unwrap()].count, 2078);
        let ar = dataset("archie").unwrap();
        assert_eq!(ar.classes[ar.class_index("car").unwrap()].count, 33_546);
        let am = dataset("amsterdam").unwrap();
        assert_eq!(am.classes[am.class_index("boat").unwrap()].count, 588);
    }

    #[test]
    fn chunk_layouts() {
        assert_eq!(dataset("dashcam").unwrap().chunking().num_chunks(), 29);
        assert_eq!(dataset("BDD 1k").unwrap().chunking().num_chunks(), 1000);
        assert_eq!(dataset("BDD MOT").unwrap().chunking().num_chunks(), 1600);
        assert_eq!(dataset("amsterdam").unwrap().chunking().num_chunks(), 60);
    }

    #[test]
    fn generation_small_smoke() {
        // Generate one of the small datasets end to end and sanity-check
        // instance counts per class.
        let d = dataset("BDD MOT").unwrap();
        let gt = d.dataset_spec().generate(1);
        assert_eq!(gt.frames, d.frames);
        for (i, c) in d.classes.iter().enumerate() {
            assert_eq!(
                gt.class_count(exsample_videosim::ClassId(i as u16)),
                c.count,
                "{}",
                c.name
            );
        }
    }

    #[test]
    fn unknown_dataset_is_none() {
        assert!(dataset("kitti").is_none());
    }
}
