//! Report emission: markdown tables, CSV files, duration formatting.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Format seconds the way the paper's Table I does: `2s`, `1m37s`,
/// `2h58m`.
pub fn fmt_hms(seconds: f64) -> String {
    let s = seconds.round().max(0.0) as u64;
    if s < 60 {
        format!("{s}s")
    } else if s < 3600 {
        let m = s / 60;
        let r = s % 60;
        if r == 0 {
            format!("{m}m")
        } else {
            format!("{m}m{r}s")
        }
    } else {
        let h = s / 3600;
        let m = (s % 3600) / 60;
        if m == 0 {
            format!("{h}h")
        } else {
            format!("{h}h{m}m")
        }
    }
}

/// A simple aligned markdown table builder.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a GitHub-flavoured markdown table with padded columns.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(out, " {c:<w$} |");
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<1$}|", "", w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Render as CSV (header + rows, minimal quoting).
    pub fn to_csv(&self) -> String {
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') || c.contains('\n') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Write the CSV form to `path` (creating parent directories).
    pub fn write_csv(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(self.to_csv().as_bytes())?;
        f.flush()
    }
}

/// Format a ratio like the paper's labels: `0.79x`, `1.4x`, `12x`, `84x`.
pub fn fmt_ratio(r: f64) -> String {
    if !r.is_finite() {
        "-".into()
    } else if r >= 10.0 {
        format!("{r:.0}x")
    } else {
        format!("{r:.2}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hms_matches_paper_style() {
        assert_eq!(fmt_hms(2.0), "2s");
        assert_eq!(fmt_hms(97.0), "1m37s");
        assert_eq!(fmt_hms(60.0), "1m");
        assert_eq!(fmt_hms(3600.0), "1h");
        assert_eq!(fmt_hms(2.0 * 3600.0 + 58.0 * 60.0), "2h58m");
        assert_eq!(fmt_hms(0.4), "0s");
    }

    #[test]
    fn markdown_table_alignment() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["traffic light".into(), "1".into()]);
        t.row(vec!["x".into(), "12345".into()]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("name"));
        assert!(lines[2].contains("traffic light"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_bad_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["hello, world".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"hello, world\",plain"));
    }

    #[test]
    fn csv_round_trips_to_disk() {
        let mut t = Table::new(&["x"]);
        t.row(vec!["1".into()]);
        let dir = std::env::temp_dir().join("exsample_report_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let read = std::fs::read_to_string(&path).unwrap();
        assert_eq!(read, "x\n1\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(fmt_ratio(0.79), "0.79x");
        assert_eq!(fmt_ratio(1.41), "1.41x");
        assert_eq!(fmt_ratio(12.3), "12x");
        assert_eq!(fmt_ratio(f64::INFINITY), "-");
    }
}
