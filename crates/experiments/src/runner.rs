//! Replicated discovery-curve runs shared by all experiments.

use crate::parallel::parallel_map;
use exsample_baselines::{ProxyOrderPolicy, RandomPlusPolicy, RandomPolicy, SequentialPolicy};
use exsample_core::driver::{run_search, SearchCost, SearchTrace, StopCond};
use exsample_core::exsample::{ExSample, ExSampleConfig};
use exsample_core::policy::SamplingPolicy;
use exsample_core::Chunking;
use exsample_detect::{OracleDiscriminator, QueryOracle, SimulatedDetector};
use exsample_stats::{quantile, Rng64};
use exsample_videosim::{ClassId, GroundTruth};
use std::sync::Arc;

/// A policy recipe that can be instantiated fresh for every replicate run.
#[derive(Debug, Clone)]
pub enum PolicySpec {
    /// ExSample with the given chunking and configuration.
    ExSample {
        /// Chunk partition (bandit arms).
        chunking: Chunking,
        /// Prior / selector / within-chunk settings.
        config: ExSampleConfig,
    },
    /// Uniform random sampling without replacement.
    Random,
    /// Whole-dataset stratified random+.
    RandomPlus,
    /// Sequential scan with a stride.
    Sequential {
        /// Visit every `stride`-th frame per pass.
        stride: u64,
    },
    /// BlazeIt-style: frames in descending proxy-score order after a full
    /// scoring scan.
    ProxyOrder {
        /// Precomputed descending-score frame order (shared across runs).
        order: Arc<Vec<u64>>,
        /// Duplicate-avoidance window in frames (0 = none).
        avoid_window: u64,
        /// Upfront scan seconds charged before the first sample.
        upfront_s: f64,
    },
}

impl PolicySpec {
    /// Instantiate the policy for a repository of `frames` frames.
    pub fn build(&self, frames: u64) -> Box<dyn SamplingPolicy> {
        match self {
            PolicySpec::ExSample { chunking, config } => {
                Box::new(ExSample::new(chunking.clone(), *config))
            }
            PolicySpec::Random => Box::new(RandomPolicy::new(frames)),
            PolicySpec::RandomPlus => Box::new(RandomPlusPolicy::new(frames)),
            PolicySpec::Sequential { stride } => Box::new(SequentialPolicy::new(frames, *stride)),
            PolicySpec::ProxyOrder {
                order,
                avoid_window,
                ..
            } => Box::new(ProxyOrderPolicy::new(order.as_ref().clone(), *avoid_window)),
        }
    }

    /// Upfront cost charged before sampling starts.
    pub fn upfront_seconds(&self) -> f64 {
        match self {
            PolicySpec::ProxyOrder { upfront_s, .. } => *upfront_s,
            _ => 0.0,
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match self {
            PolicySpec::ExSample { chunking, config } => format!(
                "exsample(M={},{})",
                chunking.num_chunks(),
                config.selector.name()
            ),
            PolicySpec::Random => "random".into(),
            PolicySpec::RandomPlus => "random+".into(),
            PolicySpec::Sequential { stride } => format!("sequential({stride})"),
            PolicySpec::ProxyOrder { avoid_window, .. } => {
                format!("proxy-order(w={avoid_window})")
            }
        }
    }
}

/// Replication settings.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of independent replicate runs.
    pub runs: usize,
    /// Stop condition per run.
    pub stop: StopCond,
    /// Detector throughput (frames per second) for the time model.
    pub detect_fps: f64,
    /// Root seed; run `r` uses stream `fork(r)`.
    pub base_seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl RunConfig {
    /// Sensible defaults: paper's 20 fps detector, all cores.
    pub fn new(runs: usize, stop: StopCond, base_seed: u64) -> Self {
        RunConfig {
            runs,
            stop,
            detect_fps: 20.0,
            base_seed,
            threads: crate::parallel::default_threads(),
        }
    }
}

/// Run `cfg.runs` independent searches of `spec` against a perfect
/// detector + oracle discriminator (the configuration of the paper's
/// simulation studies) and return their traces.
pub fn replicate_runs(
    gt: &Arc<GroundTruth>,
    class: ClassId,
    spec: &PolicySpec,
    cfg: &RunConfig,
) -> Vec<SearchTrace> {
    let root = Rng64::new(cfg.base_seed);
    let cost = SearchCost {
        upfront_s: spec.upfront_seconds(),
        per_sample_s: 1.0 / cfg.detect_fps,
    };
    parallel_map(cfg.runs, cfg.threads, |r| {
        let mut rng = root.fork(r as u64);
        let mut policy = spec.build(gt.frames);
        let mut oracle = QueryOracle::new(
            SimulatedDetector::perfect(gt.clone(), class),
            OracleDiscriminator::new(),
        );
        let mut f = |frame: u64| oracle.process(frame);
        run_search(policy.as_mut(), &mut f, &cost, &cfg.stop, &mut rng)
    })
}

/// One row of a median/quartile discovery band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandPoint {
    /// Sample count of this checkpoint.
    pub samples: u64,
    /// 25th percentile of found across runs.
    pub q25: f64,
    /// Median found.
    pub median: f64,
    /// 75th percentile of found.
    pub q75: f64,
}

/// Median and quartiles of "results found" at each checkpoint — the solid
/// line and shaded band of Figures 3 and 4.
pub fn found_band(traces: &[SearchTrace], checkpoints: &[u64]) -> Vec<BandPoint> {
    checkpoints
        .iter()
        .map(|&n| {
            let found: Vec<f64> = traces
                .iter()
                .map(|t| t.found_at_samples(n) as f64)
                .collect();
            BandPoint {
                samples: n,
                q25: quantile(&found, 0.25),
                median: quantile(&found, 0.5),
                q75: quantile(&found, 0.75),
            }
        })
        .collect()
}

/// Median (across runs) of the samples needed to reach `target` results.
/// Returns `None` if fewer than half the runs reached the target.
pub fn median_samples_to(traces: &[SearchTrace], target: u64) -> Option<f64> {
    let mut reached: Vec<f64> = traces
        .iter()
        .filter_map(|t| t.samples_to_results(target).map(|s| s as f64))
        .collect();
    if reached.len() * 2 < traces.len() {
        return None;
    }
    reached.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Some(exsample_stats::quantile_of_sorted(&reached, 0.5))
}

/// Median (across runs) of seconds to reach `target` results, if at least
/// half the runs got there.
pub fn median_seconds_to(traces: &[SearchTrace], target: u64) -> Option<f64> {
    let mut reached: Vec<f64> = traces
        .iter()
        .filter_map(|t| t.seconds_to_results(target))
        .collect();
    if reached.len() * 2 < traces.len() {
        return None;
    }
    reached.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    Some(exsample_stats::quantile_of_sorted(&reached, 0.5))
}

/// Log-spaced sample checkpoints from 1 to `max` (inclusive), `per_decade`
/// points per decade — the x grid of the log-scale figures.
pub fn log_checkpoints(max: u64, per_decade: usize) -> Vec<u64> {
    assert!(max >= 1 && per_decade >= 1);
    let mut out = Vec::new();
    let mut x = 0.0f64;
    let step = 1.0 / per_decade as f64;
    loop {
        let v = 10f64.powf(x).round() as u64;
        if v > max {
            break;
        }
        if out.last() != Some(&v) {
            out.push(v);
        }
        x += step;
    }
    if out.last() != Some(&max) {
        out.push(max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use exsample_videosim::{ClassSpec, DatasetSpec, SkewSpec};

    fn truth() -> Arc<GroundTruth> {
        Arc::new(
            DatasetSpec::single_class(
                20_000,
                ClassSpec::new("car", 50, 100.0, SkewSpec::CentralNormal { frac95: 0.125 }),
            )
            .generate(5),
        )
    }

    #[test]
    fn replicate_runs_are_deterministic_per_seed() {
        let gt = truth();
        let spec = PolicySpec::Random;
        let cfg = RunConfig::new(4, StopCond::results(10), 42);
        let a = replicate_runs(&gt, ClassId(0), &spec, &cfg);
        let b = replicate_runs(&gt, ClassId(0), &spec, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        for t in &a {
            assert!(t.found() >= 10);
        }
    }

    #[test]
    fn exsample_beats_random_under_skew() {
        let gt = truth();
        let cfg = RunConfig::new(9, StopCond::results(40), 7);
        let ex = PolicySpec::ExSample {
            chunking: Chunking::even(20_000, 16),
            config: ExSampleConfig::default(),
        };
        let ex_traces = replicate_runs(&gt, ClassId(0), &ex, &cfg);
        let rnd_traces = replicate_runs(&gt, ClassId(0), &PolicySpec::Random, &cfg);
        let ex_med = median_samples_to(&ex_traces, 40).unwrap();
        let rnd_med = median_samples_to(&rnd_traces, 40).unwrap();
        assert!(
            ex_med < rnd_med,
            "exsample median {ex_med} !< random median {rnd_med}"
        );
    }

    #[test]
    fn band_is_ordered_and_monotone() {
        let gt = truth();
        let cfg = RunConfig::new(5, StopCond::samples(2_000), 11);
        let traces = replicate_runs(&gt, ClassId(0), &PolicySpec::RandomPlus, &cfg);
        let cps = log_checkpoints(2_000, 4);
        let band = found_band(&traces, &cps);
        for p in &band {
            assert!(p.q25 <= p.median && p.median <= p.q75);
        }
        for w in band.windows(2) {
            assert!(w[0].median <= w[1].median);
        }
    }

    #[test]
    fn log_checkpoints_shape() {
        let cps = log_checkpoints(1000, 2);
        assert_eq!(cps.first(), Some(&1));
        assert_eq!(cps.last(), Some(&1000));
        assert!(cps.windows(2).all(|w| w[0] < w[1]));
        let cps1 = log_checkpoints(1, 5);
        assert_eq!(cps1, vec![1]);
    }

    #[test]
    fn proxy_spec_charges_upfront() {
        let gt = truth();
        let order: Arc<Vec<u64>> = Arc::new((0..20_000).rev().collect());
        let spec = PolicySpec::ProxyOrder {
            order,
            avoid_window: 10,
            upfront_s: 123.0,
        };
        assert_eq!(spec.upfront_seconds(), 123.0);
        let cfg = RunConfig::new(1, StopCond::samples(5), 3);
        let traces = replicate_runs(&gt, ClassId(0), &spec, &cfg);
        assert!(traces[0].seconds() >= 123.0);
    }

    #[test]
    fn median_none_when_unreached() {
        let gt = truth();
        let cfg = RunConfig::new(3, StopCond::samples(10), 13);
        let traces = replicate_runs(&gt, ClassId(0), &PolicySpec::Random, &cfg);
        assert!(median_samples_to(&traces, 1_000).is_none());
    }

    #[test]
    fn labels() {
        assert_eq!(PolicySpec::Random.label(), "random");
        assert_eq!(PolicySpec::RandomPlus.label(), "random+");
        let ex = PolicySpec::ExSample {
            chunking: Chunking::even(100, 4),
            config: ExSampleConfig::default(),
        };
        assert_eq!(ex.label(), "exsample(M=4,thompson)");
    }
}
