//! Linear-log vs. columnar-container warm start.
//!
//! Quantifies what `exsample-colstore` buys a restarted deployment over
//! the plain segmented log. One synthetic detection log (≥100k
//! detections at the default scale) is read back two ways:
//!
//! 1. **linear replay** — `scan_detections` over every sealed segment,
//!    decoding every record, exactly what a pre-columnar engine pays
//!    before it can serve its first query;
//! 2. **columnar warm start** — compact once (a background, one-time
//!    cost, timed separately), then open the container (header + chunk
//!    index only) and serve a probe working set of a few chunks. The I/O
//!    actually paid is `ColumnarStore::bytes_touched`.
//!
//! Every probed frame and then the whole container are compared against
//! the linear replay **bit for bit** (raw `f32` bits, NaN-safe); the
//! report carries a mismatch count that must be zero. A small engine
//! phase restarts a real fleet on a columnar store and records that the
//! replay paid zero detector invocations, all served as container hits.

use exsample_colstore::{compact, container_path, ColumnarStore};
use exsample_core::driver::StopCond;
use exsample_detect::{Detection, NoiseModel};
use exsample_engine::{
    dataset_fingerprint, detector_fingerprint, ColumnarConfig, Engine, EngineConfig, PersistConfig,
    QuerySpec, SessionStatus,
};
use exsample_persist::{scan_detections, sealed_segments, DetectionLog};
use exsample_videosim::{BBox, ClassId, ClassSpec, DatasetSpec, InstanceId, SkewSpec};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Workload shape for the store comparison.
#[derive(Debug, Clone, Copy)]
pub struct StoreCmpConfig {
    /// Log records (distinct `(repo, frame)` entries) to synthesize.
    pub records: u64,
    /// Detections per record.
    pub dets_per_frame: usize,
    /// Repositories the records spread over.
    pub repos: u32,
    /// Container chunk width in frames.
    pub chunk_frames: u64,
    /// Chunks of repo 0 the simulated warm query touches.
    pub probe_chunks: u64,
    /// Base seed for the synthetic detections.
    pub seed: u64,
}

impl StoreCmpConfig {
    /// The default scale: 60k records × 2 detections = 120k detections.
    pub fn default_workload() -> Self {
        StoreCmpConfig {
            records: 60_000,
            dets_per_frame: 2,
            repos: 4,
            chunk_frames: 4096,
            probe_chunks: 4,
            seed: 42,
        }
    }
}

/// Outcome of the linear/columnar comparison.
#[derive(Debug, Clone, Copy)]
pub struct StoreCmpReport {
    /// Log records synthesized.
    pub records: u64,
    /// Total detections in those records.
    pub detections: u64,
    /// Bytes of sealed segments the linear replay reads.
    pub linear_bytes: u64,
    /// Wall time of the full linear replay.
    pub linear_wall_s: f64,
    /// One-time compaction cost (fold + fsync + verify + rename).
    pub compact_wall_s: f64,
    /// Size of the resulting container.
    pub container_bytes: u64,
    /// Wall time to open the container (header + chunk index).
    pub open_wall_s: f64,
    /// Wall time to serve the probe working set from the container.
    pub probe_wall_s: f64,
    /// Bytes actually read for open + probe (`bytes_touched`).
    pub columnar_bytes_touched: u64,
    /// Frames in the probe working set.
    pub probed_frames: u64,
    /// Wall time of the full-container bit-identity sweep.
    pub verify_wall_s: f64,
    /// Frames whose detections differed from the linear replay (must be 0).
    pub mismatching_frames: u64,
    /// Engine phase: detector invocations of the cold fleet.
    pub engine_cold_invocations: u64,
    /// Engine phase: detector invocations of the columnar replay (must be 0).
    pub engine_replay_invocations: u64,
    /// Engine phase: frames the replay served from the mapped container.
    pub engine_container_hits: u64,
}

impl StoreCmpReport {
    /// Columnar startup wall time: open + serve the probe set.
    pub fn columnar_startup_s(&self) -> f64 {
        self.open_wall_s + self.probe_wall_s
    }

    /// Whether the columnar warm start strictly beat linear replay on
    /// both wall time and bytes read, with bit-identical detections and
    /// a free engine replay.
    pub fn columnar_wins(&self) -> bool {
        self.columnar_startup_s() < self.linear_wall_s
            && self.columnar_bytes_touched < self.linear_bytes
            && self.mismatching_frames == 0
            && self.engine_replay_invocations == 0
            && self.engine_container_hits > 0
    }
}

/// Deterministic synthetic detection (finite coordinates, score in
/// `[0, 1)`), so bit-identity failures mean storage bugs, not NaN noise.
fn make_det(word: u64) -> Detection {
    let f = |shift: u64| ((word >> shift) & 0x3FF) as f32 * 0.5;
    Detection {
        bbox: BBox::new(f(0), f(10), f(0) + f(20) + 1.0, f(10) + f(30) + 1.0),
        class: ClassId((word % 11) as u16),
        score: (word % 10_000) as f32 / 10_000.0,
        truth: if word.is_multiple_of(5) {
            None
        } else {
            Some(InstanceId((word >> 32) as u32))
        },
    }
}

fn frame_of(i: u64, cfg: &StoreCmpConfig) -> (u32, u64) {
    let repo = (i % u64::from(cfg.repos)) as u32;
    // Sparse, shuffled-looking frame placement within each repo.
    let frame = (i / u64::from(cfg.repos)) * 7 + u64::from(repo);
    (repo, frame)
}

fn same_bits(a: &Detection, b: &Detection) -> bool {
    a.bbox.x1.to_bits() == b.bbox.x1.to_bits()
        && a.bbox.y1.to_bits() == b.bbox.y1.to_bits()
        && a.bbox.x2.to_bits() == b.bbox.x2.to_bits()
        && a.bbox.y2.to_bits() == b.bbox.y2.to_bits()
        && a.class == b.class
        && a.score.to_bits() == b.score.to_bits()
        && a.truth == b.truth
}

fn same_frame(a: &[Detection], b: &[Detection]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| same_bits(x, y))
}

/// Small real-engine phase: cold fleet, then a columnar restart that must
/// replay for free. Returns (cold invocations, replay invocations,
/// container hits).
fn engine_phase(dir: &PathBuf, seed: u64) -> (u64, u64, u64) {
    let gt = Arc::new(
        DatasetSpec::single_class(
            20_000,
            ClassSpec::new("car", 50, 45.0, SkewSpec::CentralNormal { frac95: 0.2 }),
        )
        .generate(seed),
    );
    let fingerprint = detector_fingerprint(&NoiseModel::none(), seed) ^ dataset_fingerprint(&gt);
    let engine_on = |dir: &PathBuf| {
        Engine::new(EngineConfig {
            workers: 2,
            persist: Some(
                PersistConfig::new(dir)
                    .fingerprint(fingerprint)
                    .columnar(ColumnarConfig::new().chunk_frames(1024)),
            ),
            ..EngineConfig::default()
        })
    };
    let run_fleet = |engine: &Engine| {
        let repo = engine.register_repo("store-cmp", gt.clone(), NoiseModel::none(), seed);
        let ids: Vec<_> = (0..3)
            .map(|q| {
                engine
                    .submit(
                        QuerySpec::new(repo, ClassId(0), StopCond::results(25))
                            .chunks(8)
                            .seed(seed + q)
                            .warm_start(false),
                    )
                    .expect("valid spec")
            })
            .collect();
        for id in ids {
            let report = engine.wait(id).expect("session completes");
            assert_eq!(report.status, SessionStatus::Done);
        }
    };

    let cold = engine_on(dir);
    run_fleet(&cold);
    let cold_invocations = cold.detector_invocations();
    drop(cold);

    let warm = engine_on(dir);
    run_fleet(&warm);
    let replay_invocations = warm.detector_invocations();
    let hits = warm.persist_stats().expect("persistence on").container_hits;
    (cold_invocations, replay_invocations, hits)
}

/// Run the full comparison in a scratch directory (removed afterwards).
pub fn run(cfg: &StoreCmpConfig) -> StoreCmpReport {
    let base = std::env::temp_dir().join(format!(
        "exsample-store-cmp-{}-{}",
        std::process::id(),
        cfg.seed
    ));
    let _ = std::fs::remove_dir_all(&base);
    let dir = base.join("log");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let fingerprint = cfg.seed ^ 0x5EED_C01D;

    // Synthesize the log.
    let pcfg = PersistConfig::new(&dir).fingerprint(fingerprint);
    let mut log = DetectionLog::open(&pcfg).expect("open log");
    let mut detections = 0u64;
    for i in 0..cfg.records {
        let (repo, frame) = frame_of(i, cfg);
        let dets: Vec<Detection> = (0..cfg.dets_per_frame)
            .map(|j| {
                make_det(
                    (i ^ cfg.seed)
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(j as u64),
                )
            })
            .collect();
        detections += dets.len() as u64;
        log.append(repo, frame, &dets);
    }
    assert_eq!(log.write_errors(), 0, "synthetic log must write cleanly");
    drop(log);

    // Linear replay: decode every record of every segment.
    let linear_bytes: u64 = sealed_segments(&dir)
        .expect("list segments")
        .iter()
        .map(|(_, p)| std::fs::metadata(p).map(|m| m.len()).unwrap_or(0))
        .sum();
    let mut reference: BTreeMap<(u32, u64), Vec<Detection>> = BTreeMap::new();
    let t = Instant::now();
    let stats = scan_detections(&dir, fingerprint, |rec| {
        reference.insert((rec.repo, rec.frame), rec.dets);
    })
    .expect("linear replay");
    let linear_wall_s = t.elapsed().as_secs_f64();
    assert_eq!(stats.records_loaded, cfg.records);

    // One-time compaction.
    let t = Instant::now();
    let creport = compact(&dir, fingerprint, cfg.chunk_frames).expect("compact");
    let compact_wall_s = t.elapsed().as_secs_f64();
    assert!(creport.completed && creport.rewritten);

    // Columnar warm start: open, then serve the probe working set.
    let t = Instant::now();
    let store = ColumnarStore::open(&container_path(&dir), fingerprint).expect("open container");
    let open_wall_s = t.elapsed().as_secs_f64();
    let container_bytes = store.file_len();

    let in_probe = |repo: u32, frame: u64| repo == 0 && frame / cfg.chunk_frames < cfg.probe_chunks;
    let mut mismatching_frames = 0u64;
    let mut probed_frames = 0u64;
    let t = Instant::now();
    for ((repo, frame), dets) in reference.iter().filter(|((r, f), _)| in_probe(*r, *f)) {
        probed_frames += 1;
        match store.get(*repo, *frame) {
            Some(got) if same_frame(&got, dets) => {}
            _ => mismatching_frames += 1,
        }
    }
    let probe_wall_s = t.elapsed().as_secs_f64();
    let columnar_bytes_touched = store.bytes_touched();
    assert!(probed_frames > 0, "probe working set must be non-empty");

    // Full bit-identity sweep: container content == linear replay.
    let t = Instant::now();
    let mut seen = 0u64;
    let skipped = store.for_each_frame(|repo, frame, got| {
        seen += 1;
        match reference.get(&(repo, frame)) {
            Some(dets) if same_frame(got, dets) => {}
            _ => mismatching_frames += 1,
        }
    });
    let verify_wall_s = t.elapsed().as_secs_f64();
    mismatching_frames += skipped + (reference.len() as u64).abs_diff(seen);

    let (engine_cold_invocations, engine_replay_invocations, engine_container_hits) =
        engine_phase(&base.join("engine"), cfg.seed);

    let _ = std::fs::remove_dir_all(&base);
    StoreCmpReport {
        records: cfg.records,
        detections,
        linear_bytes,
        linear_wall_s,
        compact_wall_s,
        container_bytes,
        open_wall_s,
        probe_wall_s,
        columnar_bytes_touched,
        probed_frames,
        verify_wall_s,
        mismatching_frames,
        engine_cold_invocations,
        engine_replay_invocations,
        engine_container_hits,
    }
}

/// Render a report as the hand-rolled JSON the bench artifact records.
pub fn to_json(report: &StoreCmpReport) -> String {
    let speedup = if report.columnar_startup_s() > 0.0 {
        report.linear_wall_s / report.columnar_startup_s()
    } else {
        f64::INFINITY
    };
    let io_ratio = if report.linear_bytes > 0 {
        report.columnar_bytes_touched as f64 / report.linear_bytes as f64
    } else {
        0.0
    };
    format!(
        concat!(
            "{{\n",
            "  \"bench\": \"store_cmp\",\n",
            "  \"records\": {},\n",
            "  \"detections\": {},\n",
            "  \"linear\": {{ \"bytes_read\": {}, \"wall_s\": {:.6} }},\n",
            "  \"compaction\": {{ \"wall_s\": {:.6}, \"container_bytes\": {} }},\n",
            "  \"columnar\": {{ \"open_wall_s\": {:.6}, \"probe_wall_s\": {:.6}, ",
            "\"startup_wall_s\": {:.6}, \"bytes_touched\": {}, \"probed_frames\": {} }},\n",
            "  \"verify\": {{ \"full_sweep_wall_s\": {:.6}, \"mismatching_frames\": {}, ",
            "\"bit_identical\": {} }},\n",
            "  \"engine_replay\": {{ \"cold_invocations\": {}, \"replay_invocations\": {}, ",
            "\"container_hits\": {} }},\n",
            "  \"startup_speedup\": {:.3},\n",
            "  \"io_ratio\": {:.6},\n",
            "  \"columnar_wins\": {}\n",
            "}}\n",
        ),
        report.records,
        report.detections,
        report.linear_bytes,
        report.linear_wall_s,
        report.compact_wall_s,
        report.container_bytes,
        report.open_wall_s,
        report.probe_wall_s,
        report.columnar_startup_s(),
        report.columnar_bytes_touched,
        report.probed_frames,
        report.verify_wall_s,
        report.mismatching_frames,
        report.mismatching_frames == 0,
        report.engine_cold_invocations,
        report.engine_replay_invocations,
        report.engine_container_hits,
        speedup,
        io_ratio,
        report.columnar_wins(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columnar_warm_start_beats_linear_replay() {
        let cfg = StoreCmpConfig {
            records: 8_000,
            dets_per_frame: 2,
            repos: 3,
            chunk_frames: 1024,
            probe_chunks: 2,
            seed: 7,
        };
        let report = run(&cfg);
        assert_eq!(report.detections, 16_000);
        assert_eq!(report.mismatching_frames, 0);
        assert!(report.columnar_bytes_touched < report.linear_bytes);
        assert_eq!(report.engine_replay_invocations, 0);
        assert!(report.engine_container_hits > 0);
        assert!(report.engine_cold_invocations > 0);
        let json = to_json(&report);
        assert!(json.contains("\"bit_identical\": true"));
    }
}
