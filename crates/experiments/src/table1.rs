//! Table I: proxy scan time vs ExSample time-to-recall, for all 43
//! queries (plus the random-baseline times Figure 5 builds on).

use crate::presets::{all_datasets, EvalDataset, DETECT_FPS};
use crate::report::{fmt_hms, Table};
use crate::runner::{median_seconds_to, replicate_runs, PolicySpec, RunConfig};
use crate::Scale;
use exsample_core::driver::StopCond;
use exsample_core::exsample::ExSampleConfig;
use exsample_videosim::{ClassId, GroundTruth};
use std::sync::Arc;

/// Recall levels reported by Table I / Figure 5.
pub const RECALLS: [f64; 3] = [0.1, 0.5, 0.9];

/// Evaluation result for one dataset/class query.
#[derive(Debug, Clone)]
pub struct QueryEval {
    /// Dataset name.
    pub dataset: String,
    /// Class name.
    pub class: String,
    /// Distinct instance count `N`.
    pub count: usize,
    /// Seconds for a proxy model to score every frame.
    pub proxy_scan_s: f64,
    /// Result targets at the three recall levels.
    pub targets: [u64; 3],
    /// Median ExSample seconds to each recall (None = not reached).
    pub exsample_s: [Option<f64>; 3],
    /// Median random-sampling seconds to each recall.
    pub random_s: [Option<f64>; 3],
}

impl QueryEval {
    /// Savings ratio `random / exsample` at recall index `i`.
    pub fn savings(&self, i: usize) -> Option<f64> {
        match (self.random_s[i], self.exsample_s[i]) {
            (Some(r), Some(e)) if e > 0.0 => Some(r / e),
            _ => None,
        }
    }
}

/// Evaluation settings.
#[derive(Debug, Clone, Copy)]
pub struct EvalConfig {
    /// Replicate runs per (query, policy).
    pub runs: usize,
    /// Hard cap on frames sampled per run (guards unreachable recalls).
    pub max_samples: u64,
    /// Root seed.
    pub seed: u64,
}

impl EvalConfig {
    /// Paper-scale or smoke-scale settings.
    pub fn at_scale(scale: Scale) -> Self {
        match scale {
            Scale::Full => EvalConfig {
                runs: 5,
                max_samples: 700_000,
                seed: 7,
            },
            Scale::Quick => EvalConfig {
                runs: 3,
                max_samples: 120_000,
                seed: 7,
            },
        }
    }
}

/// Evaluate one query (both policies) against a generated dataset.
pub fn evaluate_query(
    gt: &Arc<GroundTruth>,
    dataset: &EvalDataset,
    class_idx: usize,
    cfg: &EvalConfig,
) -> QueryEval {
    let class = ClassId(class_idx as u16);
    let count = gt.class_count(class);
    let targets: [u64; 3] =
        std::array::from_fn(|i| ((count as f64 * RECALLS[i]).ceil() as u64).max(1));
    let stop = StopCond::results(targets[2]).or_samples(cfg.max_samples);
    let run_cfg = RunConfig {
        runs: cfg.runs,
        stop,
        detect_fps: DETECT_FPS,
        base_seed: cfg.seed ^ (class_idx as u64) << 8,
        threads: crate::parallel::default_threads(),
    };
    let ex_spec = PolicySpec::ExSample {
        chunking: dataset.chunking(),
        config: ExSampleConfig::default(),
    };
    let ex_traces = replicate_runs(gt, class, &ex_spec, &run_cfg);
    let rnd_traces = replicate_runs(gt, class, &PolicySpec::Random, &run_cfg);
    QueryEval {
        dataset: dataset.name.to_string(),
        class: dataset.classes[class_idx].name.to_string(),
        count,
        proxy_scan_s: dataset.proxy_scan_seconds(),
        targets,
        exsample_s: std::array::from_fn(|i| median_seconds_to(&ex_traces, targets[i])),
        random_s: std::array::from_fn(|i| median_seconds_to(&rnd_traces, targets[i])),
    }
}

/// Evaluate every query of every dataset (the full Table I / Figure 5
/// workload).
pub fn evaluate_all(scale: Scale) -> Vec<QueryEval> {
    let cfg = EvalConfig::at_scale(scale);
    let mut out = Vec::new();
    for (di, dataset) in all_datasets().into_iter().enumerate() {
        let gt = Arc::new(dataset.dataset_spec().generate(1000 + di as u64));
        for class_idx in 0..dataset.classes.len() {
            out.push(evaluate_query(&gt, &dataset, class_idx, &cfg));
        }
    }
    out
}

/// Render Table I: per query, proxy scan time vs ExSample time to 10/50/90%.
pub fn to_table(evals: &[QueryEval]) -> Table {
    let mut t = Table::new(&["dataset", "proxy (scan)", "category", "10%", "50%", "90%"]);
    let fmt = |s: &Option<f64>| s.map(fmt_hms).unwrap_or_else(|| "-".into());
    for e in evals {
        t.row(vec![
            e.dataset.clone(),
            fmt_hms(e.proxy_scan_s),
            e.class.clone(),
            fmt(&e.exsample_s[0]),
            fmt(&e.exsample_s[1]),
            fmt(&e.exsample_s[2]),
        ]);
    }
    t
}

/// The paper's headline check for Table I: every query reaches 90% recall
/// before the proxy scan completes. Returns the queries that violate it.
pub fn violations(evals: &[QueryEval]) -> Vec<&QueryEval> {
    evals
        .iter()
        .filter(|e| match e.exsample_s[2] {
            Some(t90) => t90 >= e.proxy_scan_s,
            None => true, // never reached within budget: count as violation
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::dataset;

    #[test]
    fn single_query_shape() {
        // Smallest dataset; cheap class.
        let d = dataset("BDD MOT").unwrap();
        let gt = Arc::new(d.dataset_spec().generate(5));
        let ci = d.class_index("car").unwrap();
        let cfg = EvalConfig {
            runs: 3,
            max_samples: 60_000,
            seed: 1,
        };
        let e = evaluate_query(&gt, &d, ci, &cfg);
        assert_eq!(e.count, 15_000);
        assert_eq!(e.targets, [1500, 7500, 13500]);
        // 10% of cars must be reachable quickly.
        let t10 = e.exsample_s[0].expect("10% reachable");
        assert!(t10 > 0.0);
        assert!(e.proxy_scan_s > 0.0);
        // Monotone in recall when reached.
        if let (Some(a), Some(b)) = (e.exsample_s[0], e.exsample_s[1]) {
            assert!(a <= b);
        }
    }

    #[test]
    fn exsample_beats_proxy_scan_on_skewed_query() {
        let d = dataset("dashcam").unwrap();
        let gt = Arc::new(d.dataset_spec().generate(9));
        let ci = d.class_index("bicycle").unwrap();
        let cfg = EvalConfig {
            runs: 3,
            max_samples: 400_000,
            seed: 2,
        };
        let e = evaluate_query(&gt, &d, ci, &cfg);
        let t90 = e.exsample_s[2].expect("90% reachable");
        assert!(
            t90 < e.proxy_scan_s,
            "t90={} scan={}",
            fmt_hms(t90),
            fmt_hms(e.proxy_scan_s)
        );
        // Strong skew: ExSample should beat random at the 90% level.
        let s = e.savings(2).expect("both reached");
        assert!(s > 1.2, "savings={s}");
    }

    #[test]
    fn table_renders_rows() {
        let e = QueryEval {
            dataset: "d".into(),
            class: "c".into(),
            count: 10,
            proxy_scan_s: 3240.0,
            targets: [1, 5, 9],
            exsample_s: [Some(97.0), Some(537.0), Some(2460.0)],
            random_s: [Some(100.0), None, None],
        };
        let t = to_table(std::slice::from_ref(&e));
        let md = t.to_markdown();
        assert!(md.contains("1m37s"));
        assert!(md.contains("54m"));
        assert!((e.savings(0).unwrap() - 100.0 / 97.0).abs() < 1e-12);
        assert!(e.savings(1).is_none());
        assert!(violations(&[e]).is_empty());
    }
}
