//! Seeded violation for the `lock_blocking` rule: a blocking `flush`
//! while the `state` mutex guard is still live. Never compiled — lexed
//! and walked by the fixture self-tests.

use std::sync::Mutex;

pub struct Pipeline {
    state: Mutex<Vec<u8>>,
}

impl Pipeline {
    pub fn drain(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let mut state = self.state.lock().expect("poisoned");
        state.clear();
        out.flush()
    }
}
