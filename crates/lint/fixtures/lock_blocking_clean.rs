//! Clean counterpart of `lock_blocking_bad.rs`: the guard is scoped to
//! die before the blocking call, and one deliberate blocking site
//! carries an allow annotation (exercising the suppression counter).

use std::sync::Mutex;

pub struct Pipeline {
    state: Mutex<Vec<u8>>,
}

impl Pipeline {
    pub fn drain(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        {
            let mut state = self.state.lock().expect("poisoned");
            state.clear();
        }
        out.flush()
    }

    pub fn drain_annotated(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        let _state = self.state.lock().expect("poisoned");
        // lint: allow(lock_blocking, fixture: flush under the guard is deliberate here)
        out.flush()
    }
}
