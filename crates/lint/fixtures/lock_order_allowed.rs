//! Same cycle as `lock_order_bad.rs`, but one edge is annotated — the
//! rule treats a cycle with any allowed edge as suppressed (breaking
//! one edge breaks the cycle).

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let a = self.a.lock().expect("poisoned");
        let b = self.b.lock().expect("poisoned");
        *a + *b
    }

    pub fn ba(&self) -> u32 {
        let b = self.b.lock().expect("poisoned");
        // lint: allow(lock_order, fixture: reversed order is provably unreachable concurrently)
        let a = self.a.lock().expect("poisoned");
        *a + *b
    }
}
