//! Seeded violation for the `lock_order` rule: `a` then `b` in one
//! method, `b` then `a` in another — a classic deadlock cycle.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn ab(&self) -> u32 {
        let a = self.a.lock().expect("poisoned");
        let b = self.b.lock().expect("poisoned");
        *a + *b
    }

    pub fn ba(&self) -> u32 {
        let b = self.b.lock().expect("poisoned");
        let a = self.a.lock().expect("poisoned");
        *a + *b
    }
}
