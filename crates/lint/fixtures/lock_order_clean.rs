//! Clean counterpart of `lock_order_bad.rs`: both methods impose the
//! same `a` then `b` order, so the nested-acquisition graph is acyclic.

use std::sync::Mutex;

pub struct Pair {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pair {
    pub fn sum(&self) -> u32 {
        let a = self.a.lock().expect("poisoned");
        let b = self.b.lock().expect("poisoned");
        *a + *b
    }

    pub fn swap(&self) {
        let mut a = self.a.lock().expect("poisoned");
        let mut b = self.b.lock().expect("poisoned");
        std::mem::swap(&mut *a, &mut *b);
    }
}
