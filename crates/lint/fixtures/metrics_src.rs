//! Registration sites for the `metric_drift` self-tests: one
//! documented metric, one undocumented (a seeded violation), and one
//! annotated as intentionally uncataloged.

pub fn init(registry: &Registry) -> Handles {
    Handles {
        frames: registry.counter("frames_total"),
        mystery: registry.histogram("mystery_ns"),
        // lint: allow(metric_drift, fixture: internal-only series kept out of the catalog)
        secret: registry.gauge("secret_gauge"),
    }
}
