//! Seeded violations for the `panic_audit` rule: unguarded indexing,
//! `unwrap`, and `expect` in what the self-test presents as a hot-path
//! crate.

pub fn head(v: &[u64]) -> u64 {
    v[0]
}

pub fn parse(s: &str) -> u64 {
    s.parse().unwrap()
}

pub fn tail(v: &[u64]) -> u64 {
    *v.last().expect("non-empty")
}
