//! Clean counterpart of `panic_bad.rs`: every potential panic site is
//! either a built-in allowance (poison propagation, infallible
//! `try_into`), an annotated proven bound, or inside a test module.

use std::sync::Mutex;

pub fn counter(m: &Mutex<u64>) -> u64 {
    *m.lock().expect("poisoned")
}

pub fn word(bytes: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(
        bytes.get(..8)?.try_into().expect("8-byte slice"),
    ))
}

pub fn ring(slots: &[u64], seq: u64) -> u64 {
    // lint: allow(panic_audit, seq is taken modulo the ring length)
    slots[(seq % slots.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let v = [1u64];
        assert_eq!(v[0], 1);
        "7".parse::<u64>().unwrap();
    }
}
