//! Seeded violations for the `wire_protocol` rule: a duplicate tag
//! value, a tag with no decode arm, and tags with no encode use.

pub const TAG_SUBMIT: u8 = 0x01;
pub const TAG_POLL: u8 = 0x02;
pub const TAG_DUP: u8 = 0x02;
pub const TAG_ORPHAN: u8 = 0x03;

pub enum Msg {
    Submit,
    Poll,
}

pub fn encode(msg: &Msg, out: &mut Vec<u8>) {
    match msg {
        Msg::Submit => out.push(TAG_SUBMIT),
        Msg::Poll => out.push(TAG_POLL),
    }
}

pub fn decode(tag: u8) -> Option<Msg> {
    match tag {
        TAG_SUBMIT => Some(Msg::Submit),
        TAG_DUP => Some(Msg::Poll),
        TAG_ORPHAN => None,
        _ => None,
    }
}
