//! Clean counterpart of `wire_bad.rs`: unique tag values, and every
//! tag has both an encode use and a decode match arm.

pub const TAG_SUBMIT: u8 = 0x01;
pub const TAG_POLL: u8 = 0x02;

pub enum Msg {
    Submit,
    Poll,
}

pub fn encode(msg: &Msg, out: &mut Vec<u8>) {
    match msg {
        Msg::Submit => out.push(TAG_SUBMIT),
        Msg::Poll => out.push(TAG_POLL),
    }
}

pub fn decode(tag: u8) -> Option<Msg> {
    match tag {
        TAG_SUBMIT => Some(Msg::Submit),
        TAG_POLL => Some(Msg::Poll),
        _ => None,
    }
}
