//! A comment/string-aware Rust lexer — just enough tokenization for the
//! repo's invariant checks, with no external parser (this container is
//! offline).
//!
//! The hard part of lexical analysis over Rust is not the identifiers,
//! it is everything that can *hide* a brace or a `.lock()`: nested block
//! comments, string literals (plain, raw with any `#` count, byte, raw
//! byte), char literals with escapes, and the `'a` lifetime vs `'a'`
//! char ambiguity. This lexer resolves all of those and discards
//! comments from the token stream while harvesting
//! `lint: allow(rule, reason)` suppressions out of them (see
//! [`Allow`]), so rules can walk clean tokens and still honor inline
//! annotations.

/// What a token is. Rules mostly match on `Ident` spellings and single
/// `Punct` characters; multi-character operators arrive as consecutive
/// `Punct` tokens (`=>` is `=` then `>`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`let`, `lock`, `TAG_SUBMIT`, `r#match`).
    Ident,
    /// Lifetime such as `'a` (the tick is not part of `text`).
    Lifetime,
    /// Any string literal (`"…"`, `r#"…"#`, `b"…"`); `text` is the
    /// unescaped contents without quotes or hashes.
    Str,
    /// A character or byte literal; `text` is the raw interior.
    Char,
    /// A numeric literal (`42`, `0x4A`, `1_000`, `2.5`); `text` is the
    /// raw spelling.
    Num,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Is this an identifier spelled exactly `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// Numeric value of a `Num` token, accepting `0x`/`0o`/`0b`
    /// prefixes, `_` separators, and integer-suffix spellings
    /// (`0x4Au8`). `None` for floats or non-numeric tokens.
    pub fn num_value(&self) -> Option<u64> {
        if self.kind != TokenKind::Num {
            return None;
        }
        let t: String = self.text.chars().filter(|&c| c != '_').collect();
        let (radix, digits) = match t.as_bytes() {
            [b'0', b'x' | b'X', rest @ ..] => (16, rest),
            [b'0', b'o' | b'O', rest @ ..] => (8, rest),
            [b'0', b'b' | b'B', rest @ ..] => (2, rest),
            rest => (10, rest),
        };
        // Strip a trailing type suffix (u8, i64, usize …).
        let digits = std::str::from_utf8(digits).ok()?;
        let end = digits
            .find(|c: char| !c.is_digit(radix))
            .unwrap_or(digits.len());
        if end == 0 {
            return None;
        }
        u64::from_str_radix(&digits[..end], radix).ok()
    }
}

/// An inline suppression harvested from a comment:
/// `// lint: allow(rule_name, free-text reason)` or
/// `// lint: allow(rule_name)`.
///
/// A *trailing* allow (code earlier on the same line) suppresses that
/// line. A *standalone* allow (comment is the whole line) suppresses
/// the next line that carries any token. `allow-file(rule)` suppresses
/// the rule for the entire file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub rule: String,
    pub reason: String,
    /// Line the suppression applies to; `None` = whole file.
    pub line: Option<u32>,
}

/// A fully lexed source file: comment-free tokens plus the allow
/// annotations the comments carried.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

impl Lexed {
    /// Is `rule` suppressed at `line`?
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line.is_none() || a.line == Some(line)))
    }
}

/// Pending comment annotation: parsed allow waiting to learn which line
/// it governs (standalone comments bind to the next token-bearing line).
struct PendingAllow {
    rule: String,
    reason: String,
    comment_line: u32,
    file_wide: bool,
    had_code_before: bool,
}

/// Lex `src` into tokens and allow annotations. Never fails: bytes the
/// lexer does not understand become single-character `Punct` tokens, so
/// a malformed file degrades to noise instead of a crash.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut out = Lexed::default();
    let mut pending: Vec<PendingAllow> = Vec::new();
    // Lines that already produced at least one token (to classify
    // trailing vs standalone comments).
    let mut last_token_line: u32 = 0;

    macro_rules! flush_pending {
        ($tok_line:expr) => {
            for p in pending.drain(..) {
                out.allows.push(Allow {
                    rule: p.rule,
                    reason: p.reason,
                    line: if p.file_wide {
                        None
                    } else if p.had_code_before {
                        Some(p.comment_line)
                    } else {
                        Some($tok_line)
                    },
                });
            }
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                harvest_allows(
                    &src[start..i],
                    line,
                    last_token_line == line,
                    &mut pending,
                    &mut out,
                );
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment; newlines inside advance `line`.
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                harvest_allows(
                    &src[start..i],
                    start_line,
                    last_token_line == start_line,
                    &mut pending,
                    &mut out,
                );
            }
            b'"' => {
                let (text, nl) = lex_plain_string(b, &mut i);
                flush_pending!(line);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                });
                last_token_line = line;
                line += nl;
            }
            b'r' | b'b' if starts_string(b, i) => {
                let start_line = line;
                let (text, nl) = lex_prefixed_string(b, &mut i);
                flush_pending!(start_line);
                out.tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line: start_line,
                });
                last_token_line = start_line;
                line += nl;
            }
            b'\'' => {
                // Lifetime or char literal. `'` + ident-start is a
                // lifetime unless the ident is one char followed by a
                // closing `'` (then it is a char literal like 'a').
                if let Some(tok) = lex_tick(b, &mut i, line) {
                    flush_pending!(line);
                    out.tokens.push(tok);
                    last_token_line = line;
                } else {
                    i += 1; // stray tick: degrade to punct
                    flush_pending!(line);
                    out.tokens.push(Token {
                        kind: TokenKind::Punct,
                        text: "'".into(),
                        line,
                    });
                    last_token_line = line;
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                flush_pending!(line);
                out.tokens.push(Token {
                    kind: TokenKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
                last_token_line = line;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d == b'.' {
                        // `..` is a range, not part of the number.
                        if i + 1 < b.len() && b[i + 1] == b'.' {
                            break;
                        }
                        // `1.method()` — a dot followed by ident-start
                        // is a method call, not a float.
                        if i + 1 < b.len() && (b[i + 1] == b'_' || b[i + 1].is_ascii_alphabetic()) {
                            break;
                        }
                        i += 1;
                    } else if d == b'_' || d.is_ascii_alphanumeric() {
                        i += 1;
                    } else {
                        break;
                    }
                }
                flush_pending!(line);
                out.tokens.push(Token {
                    kind: TokenKind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
                last_token_line = line;
            }
            _ => {
                flush_pending!(line);
                out.tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                last_token_line = line;
                i += 1;
            }
        }
    }
    // Standalone allows at EOF with no following code: bind to their
    // own line so they are at least inert, not dangling.
    for p in pending.drain(..) {
        out.allows.push(Allow {
            rule: p.rule,
            reason: p.reason,
            line: if p.file_wide {
                None
            } else {
                Some(p.comment_line)
            },
        });
    }
    out
}

/// Does `b[i..]` start a raw/byte string (`r"`, `r#`, `b"`, `br`, `rb`)
/// rather than an identifier beginning with r/b?
fn starts_string(b: &[u8], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (b, r in either order — rust allows br"
    // and r", b"; rb" is not legal rust but accepting it is harmless).
    while j < b.len() && (b[j] == b'b' || b[j] == b'r') && j - i < 2 {
        j += 1;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"' && {
        // `r#ident` raw identifiers: a `#` run NOT followed by a quote
        // fails the b[j] check above, so reaching here means string.
        true
    }
}

/// Lex a `"…"` string with escapes. Returns (unescaped text, newlines
/// consumed). `i` is on the opening quote.
fn lex_plain_string(b: &[u8], i: &mut usize) -> (String, u32) {
    let mut text = String::new();
    let mut nl = 0;
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'"' => {
                *i += 1;
                break;
            }
            b'\\' if *i + 1 < b.len() => {
                let e = b[*i + 1];
                text.push(match e {
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    b'0' => '\0',
                    other => other as char,
                });
                if e == b'\n' {
                    nl += 1;
                }
                *i += 2;
            }
            b'\n' => {
                nl += 1;
                text.push('\n');
                *i += 1;
            }
            c => {
                text.push(c as char);
                *i += 1;
            }
        }
    }
    (text, nl)
}

/// Lex `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##` (any hash count). `i` is on
/// the first prefix letter. Raw strings have no escapes; the closing
/// delimiter is `"` followed by the same number of `#`.
fn lex_prefixed_string(b: &[u8], i: &mut usize) -> (String, u32) {
    let mut raw = false;
    while *i < b.len() && (b[*i] == b'b' || b[*i] == b'r') {
        if b[*i] == b'r' {
            raw = true;
        }
        *i += 1;
    }
    let mut hashes = 0usize;
    while *i < b.len() && b[*i] == b'#' {
        hashes += 1;
        *i += 1;
    }
    if !raw {
        return lex_plain_string(b, i); // b"…" behaves like "…"
    }
    // On the opening quote of a raw string.
    *i += 1;
    let mut text = String::new();
    let mut nl = 0;
    while *i < b.len() {
        if b[*i] == b'"' {
            // Check for `"` + hashes.
            let end = *i + 1;
            if b.len() >= end + hashes && b[end..end + hashes].iter().all(|&h| h == b'#') {
                *i = end + hashes;
                break;
            }
            text.push('"');
            *i += 1;
        } else {
            if b[*i] == b'\n' {
                nl += 1;
            }
            text.push(b[*i] as char);
            *i += 1;
        }
    }
    (text, nl)
}

/// Lex at a `'`: a char literal (`'a'`, `'\n'`, `'\u{1F600}'`) or a
/// lifetime (`'a`, `'static`). Returns `None` for a bare tick.
fn lex_tick(b: &[u8], i: &mut usize, line: u32) -> Option<Token> {
    let j = *i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        // Escaped char literal: scan to the closing tick.
        let mut k = j + 1;
        if k < b.len() {
            k += 1; // the escaped character itself
            if b[k - 1] == b'u' {
                // '\u{…}'
                while k < b.len() && b[k] != b'\'' && b[k] != b'\n' {
                    k += 1;
                }
            }
        }
        if k < b.len() && b[k] == b'\'' {
            let text = String::from_utf8_lossy(&b[j..k]).into_owned();
            *i = k + 1;
            return Some(Token {
                kind: TokenKind::Char,
                text,
                line,
            });
        }
        return None;
    }
    if b[j] == b'_' || b[j].is_ascii_alphabetic() {
        // Could be lifetime or 'a'. Scan the ident.
        let mut k = j;
        while k < b.len() && (b[k] == b'_' || b[k].is_ascii_alphanumeric()) {
            k += 1;
        }
        if k < b.len() && b[k] == b'\'' && k == j + 1 {
            // Exactly one ident char then a tick: char literal 'a'.
            let text = (b[j] as char).to_string();
            *i = k + 1;
            return Some(Token {
                kind: TokenKind::Char,
                text,
                line,
            });
        }
        // Lifetime: `'ident` (multi-char idents followed by a tick,
        // like 'ab', are not legal rust — treat as lifetime anyway).
        let text = String::from_utf8_lossy(&b[j..k]).into_owned();
        *i = k;
        return Some(Token {
            kind: TokenKind::Lifetime,
            text,
            line,
        });
    }
    if !b[j].is_ascii() || b[j] != b'\'' {
        // Single non-ident char literal like '.' or '→' (multibyte).
        let mut k = j + 1;
        while k < b.len() && (b[k] & 0xC0) == 0x80 {
            k += 1; // continuation bytes of a multibyte char
        }
        if k < b.len() && b[k] == b'\'' {
            let text = String::from_utf8_lossy(&b[j..k]).into_owned();
            *i = k + 1;
            return Some(Token {
                kind: TokenKind::Char,
                text,
                line,
            });
        }
    }
    None
}

/// Pull `lint: allow(rule, reason)` / `lint: allow-file(rule, reason)`
/// out of one comment's text. File-wide allows land directly in `out`;
/// line allows become pending (standalone comments bind forward).
fn harvest_allows(
    comment: &str,
    comment_line: u32,
    had_code_before: bool,
    pending: &mut Vec<PendingAllow>,
    out: &mut Lexed,
) {
    let mut rest = comment;
    while let Some(at) = rest.find("lint:") {
        rest = &rest[at + 5..];
        let body = rest.trim_start();
        let file_wide = body.starts_with("allow-file(");
        let open = match body.find('(') {
            Some(p) if body[..p].trim() == "allow" || body[..p].trim() == "allow-file" => p,
            _ => continue,
        };
        let Some(close) = body[open..].find(')') else {
            continue;
        };
        let inner = &body[open + 1..open + close];
        let (rule, reason) = match inner.split_once(',') {
            Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
            None => (inner.trim().to_string(), String::new()),
        };
        if rule.is_empty() {
            continue;
        }
        if file_wide {
            out.allows.push(Allow {
                rule,
                reason,
                line: None,
            });
        } else {
            pending.push(PendingAllow {
                rule,
                reason,
                comment_line,
                file_wide: false,
                had_code_before,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // ---- strings ----

    #[test]
    fn string_contents_do_not_tokenize() {
        let toks = lex(r#"let s = "if { } .lock() // not a comment";"#).tokens;
        assert!(toks.iter().all(|t| !t.is_punct('{') && !t.is_ident("lock")));
        let s = toks.iter().find(|t| t.kind == TokenKind::Str).unwrap();
        assert_eq!(s.text, "if { } .lock() // not a comment");
    }

    #[test]
    fn escapes_are_unescaped() {
        let toks = lex(r#""a\n\"b\\""#).tokens;
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[0].text, "a\n\"b\\");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex("let s = r##\"has \"# inside\"##; tail").tokens;
        let s = &toks[3];
        assert_eq!(s.kind, TokenKind::Str);
        assert_eq!(s.text, "has \"# inside");
        assert!(toks.iter().any(|t| t.is_ident("tail")));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let toks = lex(r###"b"ab" br#"c"d"#"###).tokens;
        assert_eq!(toks[0].kind, TokenKind::Str);
        assert_eq!(toks[0].text, "ab");
        assert_eq!(toks[1].kind, TokenKind::Str);
        assert_eq!(toks[1].text, "c\"d");
    }

    #[test]
    fn raw_identifiers_are_not_strings() {
        let toks = lex("let r#match = 1;").tokens;
        assert!(toks.iter().all(|t| t.kind != TokenKind::Str));
        assert!(toks.iter().any(|t| t.is_ident("match")));
    }

    #[test]
    fn multiline_strings_advance_line_numbers() {
        let toks = lex("\"a\nb\" tail").tokens;
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
    }

    // ---- comments ----

    #[test]
    fn nested_block_comments_are_skipped() {
        let toks = lex("a /* outer /* inner */ still comment */ b").tokens;
        assert_eq!(toks.len(), 2);
        assert!(toks[0].is_ident("a"));
        assert!(toks[1].is_ident("b"));
    }

    #[test]
    fn block_comment_newlines_advance_line_numbers() {
        let toks = lex("a /* x\n\n*/ b\nc").tokens;
        assert_eq!(toks[1].line, 3);
        assert_eq!(toks[2].line, 4);
    }

    #[test]
    fn comments_inside_strings_are_not_harvested() {
        let l = lex("let s = \"// lint: allow(rule_z, nope)\";");
        assert!(l.allows.is_empty());
    }

    // ---- lifetimes vs chars ----

    #[test]
    fn lifetimes_and_char_literals_disambiguate() {
        let toks = lex("fn f<'a>(x: &'a u8, y: &'static str) { let c = 'a'; }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 3);
        assert_eq!(lifetimes[2].text, "static");
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "a");
    }

    #[test]
    fn escaped_char_literals() {
        let toks = lex(r"let c = '\n'; let q = '\'';").tokens;
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokenKind::Char).collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].text, r"\n");
    }

    // ---- numbers ----

    #[test]
    fn num_values_across_radixes_and_suffixes() {
        let num = |src: &str| lex(src).tokens[0].num_value();
        assert_eq!(num("0x4A"), Some(74));
        assert_eq!(num("0b1010"), Some(10));
        assert_eq!(num("0o17"), Some(15));
        assert_eq!(num("1_000"), Some(1000));
        assert_eq!(num("42u8"), Some(42));
        assert_eq!(num("7"), Some(7));
    }

    #[test]
    fn method_calls_on_numbers_are_not_floats() {
        let toks = lex("1.max(2)").tokens;
        assert_eq!(toks[0].text, "1");
        assert!(toks[2].is_ident("max"));
    }

    // ---- allow annotations ----

    #[test]
    fn trailing_allow_suppresses_its_own_line() {
        let l = lex("foo(); // lint: allow(rule_x, because)\nbar();");
        assert!(l.allowed("rule_x", 1));
        assert!(!l.allowed("rule_x", 2));
        assert!(!l.allowed("rule_y", 1));
    }

    #[test]
    fn standalone_allow_binds_to_next_code_line() {
        let l = lex("// lint: allow(rule_x, why)\n\nfoo();");
        assert!(l.allowed("rule_x", 3));
        assert!(!l.allowed("rule_x", 1));
    }

    #[test]
    fn allow_file_suppresses_every_line() {
        let l = lex("// lint: allow-file(rule_x, why)\nfoo();\nbar();");
        assert!(l.allowed("rule_x", 2));
        assert!(l.allowed("rule_x", 999));
    }

    #[test]
    fn allow_reason_is_preserved_including_commas() {
        let l = lex("// lint: allow(rule_x, spaces, even commas)\nfoo();");
        assert_eq!(l.allows.len(), 1);
        assert_eq!(l.allows[0].reason, "spaces, even commas");
    }
}
