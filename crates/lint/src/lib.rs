//! `exsample-lint` — workspace-aware invariant checker for the
//! ExSample reproduction.
//!
//! The workspace's correctness rests on conventions no compiler checks:
//! no blocking work under a cache or state mutex, acyclic nested lock
//! acquisition, a hand-maintained wire-tag table that must stay in
//! lockstep with `docs/PROTOCOL.md`, panic-free hot paths, and a metric
//! catalog in `docs/OBSERVABILITY.md` mirroring the registry names in
//! code. Each rule here machine-checks one of those conventions over
//! the whole workspace, from a comment/string-aware lexical pass — no
//! external parser, because this build environment is offline.
//!
//! Run it as `cargo run -p exsample-lint -- --deny` (what CI does), or
//! use [`run_workspace`] as a library (the fixture self-tests do).
//! Findings print as `file:line: rule: message`; inline
//! `// lint: allow(rule, reason)` comments suppress a site, and
//! `// lint: allow-file(rule, reason)` a whole file. See
//! `docs/LINT.md` for the rule catalog and annotation semantics.

pub mod lexer;
pub mod rules;
pub mod source;

use rules::lock::Edge;
use source::SourceFile;
use std::collections::BTreeMap;
use std::path::Path;

/// One diagnostic: where, which rule, and what to do about it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub rule: String,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Result of a lint run: surviving findings plus how many sites inline
/// annotations suppressed (reported so a silently-annotated workspace
/// is still visible in CI logs).
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub suppressed: usize,
}

impl Report {
    /// Render as JSON (machine output for the CI artifact). No serde in
    /// this offline workspace — the escaping is done by hand.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"findings\": [\n");
        for (i, f) in self.findings.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
                json_escape(&f.file),
                f.line,
                json_escape(&f.rule),
                json_escape(&f.message),
                if i + 1 == self.findings.len() {
                    ""
                } else {
                    ","
                }
            ));
        }
        out.push_str(&format!(
            "  ],\n  \"total\": {},\n  \"suppressed\": {}\n}}\n",
            self.findings.len(),
            self.suppressed
        ));
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The rule names `--rule` accepts, in report order.
pub const ALL_RULES: &[&str] = &[
    rules::lock::LOCK_BLOCKING,
    rules::lock::LOCK_ORDER,
    rules::wire::WIRE_PROTOCOL,
    rules::panic::PANIC_AUDIT,
    rules::metrics::METRIC_DRIFT,
];

/// Run `rules` (all when empty) over the workspace rooted at `root`.
pub fn run_workspace(root: &Path, only: &[String]) -> std::io::Result<Report> {
    let files = source::load_workspace(root)?;
    let enabled = |r: &str| only.is_empty() || only.iter().any(|o| o == r);
    let mut report = Report::default();

    // ---- lock rules (one walk feeds both) ----
    if enabled(rules::lock::LOCK_BLOCKING) || enabled(rules::lock::LOCK_ORDER) {
        let mut edges_by_crate: BTreeMap<String, Vec<Edge>> = BTreeMap::new();
        let mut blocking = Vec::new();
        let mut blocking_suppressed = 0usize;
        for f in &files {
            let edges = edges_by_crate.entry(f.crate_name.clone()).or_default();
            rules::lock::walk_file(f, &mut blocking, &mut blocking_suppressed, edges);
        }
        if enabled(rules::lock::LOCK_BLOCKING) {
            report.findings.append(&mut blocking);
            report.suppressed += blocking_suppressed;
        }
        if enabled(rules::lock::LOCK_ORDER) {
            rules::lock::order_findings(
                &edges_by_crate,
                &mut report.findings,
                &mut report.suppressed,
            );
        }
    }

    // ---- wire protocol ----
    if enabled(rules::wire::WIRE_PROTOCOL) {
        run_wire(root, &files, &mut report)?;
    }

    // ---- panic audit ----
    if enabled(rules::panic::PANIC_AUDIT) {
        for f in &files {
            rules::panic::walk_file(f, &mut report.findings, &mut report.suppressed);
        }
    }

    // ---- metric/doc drift ----
    if enabled(rules::metrics::METRIC_DRIFT) {
        let doc_path = "docs/OBSERVABILITY.md";
        let doc = std::fs::read_to_string(root.join(doc_path)).unwrap_or_default();
        let mut regs = Vec::new();
        for f in &files {
            rules::metrics::collect_registrations(f, &mut regs);
        }
        rules::metrics::check(
            &regs,
            &doc,
            doc_path,
            &mut report.findings,
            &mut report.suppressed,
        );
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Ok(report)
}

/// Locate the wire rule's inputs in the loaded workspace and run it.
fn run_wire(root: &Path, files: &[SourceFile], report: &mut Report) -> std::io::Result<()> {
    let find = |rel: &str| files.iter().find(|f| f.rel_path == rel);
    let (Some(wire), Some(lib)) = (
        find("crates/proto/src/wire.rs"),
        find("crates/proto/src/lib.rs"),
    ) else {
        report.findings.push(Finding {
            file: "crates/proto/src".into(),
            line: 1,
            rule: rules::wire::WIRE_PROTOCOL.into(),
            message: "wire.rs / lib.rs not found — wire rule cannot run".into(),
        });
        return Ok(());
    };
    let doc_path = "docs/PROTOCOL.md";
    let doc = std::fs::read_to_string(root.join(doc_path)).unwrap_or_default();
    let handshake_tests: Vec<(String, String)> = [
        "crates/proto/tests/remote_integration.rs",
        "crates/serve/tests/serve_integration.rs",
    ]
    .iter()
    .map(|p| {
        (
            p.to_string(),
            std::fs::read_to_string(root.join(p)).unwrap_or_default(),
        )
    })
    .collect();
    let inputs = rules::wire::WireInputs {
        wire,
        lib,
        doc: (&doc, doc_path),
        handshake_tests: &handshake_tests,
    };
    rules::wire::check(&inputs, &mut report.findings, &mut report.suppressed);
    Ok(())
}
