//! CLI for `exsample-lint`. See `docs/LINT.md`.
//!
//! ```text
//! exsample-lint [--root DIR] [--rule NAME]… [--json] [--deny] [--list-rules]
//! ```
//!
//! Text findings print to stdout as `file:line: rule: message`, one per
//! line, with a summary on stderr. `--json` swaps stdout for a machine
//! report (the CI artifact). `--deny` exits 1 when any finding
//! survives suppression — the CI gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut rules: Vec<String> = Vec::new();
    let mut json = false;
    let mut deny = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            "--rule" => match args.next() {
                Some(r) if exsample_lint::ALL_RULES.contains(&r.as_str()) => rules.push(r),
                Some(r) => return usage(&format!("unknown rule `{r}` (see --list-rules)")),
                None => return usage("--rule needs a rule name"),
            },
            "--json" => json = true,
            "--deny" => deny = true,
            "--list-rules" => {
                for r in exsample_lint::ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                return usage("");
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    // Accept being launched from a crate directory: walk up to the
    // workspace root (the directory holding `crates/`).
    if !root.join("crates").is_dir() {
        let mut cur = root.canonicalize().unwrap_or_else(|_| root.clone());
        while let Some(parent) = cur.parent() {
            if cur.join("crates").is_dir() {
                break;
            }
            cur = parent.to_path_buf();
        }
        if cur.join("crates").is_dir() {
            root = cur;
        }
    }

    let report = match exsample_lint::run_workspace(&root, &rules) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("exsample-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        for f in &report.findings {
            println!("{f}");
        }
    }
    eprintln!(
        "exsample-lint: {} finding(s), {} suppressed by annotations",
        report.findings.len(),
        report.suppressed
    );
    if deny && !report.findings.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("exsample-lint: {err}");
    }
    eprintln!(
        "usage: exsample-lint [--root DIR] [--rule NAME]... [--json] [--deny] [--list-rules]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
