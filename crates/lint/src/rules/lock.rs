//! Lock discipline: the `lock_blocking` and `lock_order` rules.
//!
//! Both walk the same lexical guard model. A *guard* becomes live when a
//! no-argument `.lock()`, `.read()`, or `.write()` call is seen; it dies
//! at the end of the enclosing block, at `drop(name)`, or — for guards
//! bound to no name (statement temporaries) — at the end of their
//! statement. A condvar `.wait(guard)` *consumes* the named guard (the
//! OS releases the lock during the wait) and produces a new one, so the
//! idiomatic `state = cv.wait(state)?` keeps `state` live without a
//! false finding.
//!
//! `lock_blocking` flags calls from a blocklist of operations that can
//! stall the calling thread (detector dispatch, file I/O, condvar waits
//! on *other* locks, channel receives, sleeps, joins) lexically inside a
//! live guard scope. This is the invariant PR 5 restored by hand when
//! detector compute was found running under a cache shard mutex — now
//! machine-checked.
//!
//! `lock_order` derives a nested-acquisition graph: acquiring lock B
//! while a guard on lock A is live records the edge A → B. Lock
//! identity is the last one or two receiver-path components before the
//! acquisition call (`self.shared.state.lock()` → `shared.state`,
//! `self.shards[i].lock()` → `shards[_]`), aggregated per crate. Any
//! cycle — including a self-edge, which means re-acquiring the same
//! lock class while holding it — is a deadlock candidate and a finding.
//! Suppressing any one edge of a cycle (an `allow(lock_order, …)` on
//! that acquisition line) suppresses the cycle: one broken edge breaks
//! the loop.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::Finding;
use std::collections::BTreeMap;

pub const LOCK_BLOCKING: &str = "lock_blocking";
pub const LOCK_ORDER: &str = "lock_order";

/// Method names that produce a guard when called with no arguments.
const ACQUIRERS: &[&str] = &["lock", "read", "write"];
/// Condvar methods that consume (and return) a guard.
const WAITERS: &[&str] = &["wait", "wait_timeout", "wait_while", "wait_timeout_while"];

/// Calls that can block the thread. `join` and `park` are only
/// considered with empty argument lists (`path.join("x")` is not a
/// thread join); everything else blocks regardless of arity.
const BLOCKING: &[&str] = &[
    // detector dispatch
    "dispatch_batch",
    "detect_with_scratch",
    "detect_frame",
    "detect",
    // file and stream I/O
    "sync_all",
    "sync_data",
    "fsync",
    "flush",
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "rename",
    "remove_file",
    "create_dir_all",
    "set_len",
    // channels and sockets
    "recv",
    "recv_timeout",
    "accept",
    "connect",
    // scheduling
    "sleep",
    "park",
    "join",
];
const EMPTY_ARGS_ONLY: &[&str] = &["join", "park"];

#[derive(Debug)]
struct Guard {
    /// Binding name; `None` for statement temporaries.
    name: Option<String>,
    /// Lock identity for the order graph.
    lock_name: String,
    /// Brace depth at acquisition (block-scoped guards die when the
    /// depth drops below this).
    depth: i32,
    line: u32,
}

/// One nested-acquisition edge with an example site.
#[derive(Debug)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: u32,
    pub suppressed: bool,
}

/// Walk one file, emitting `lock_blocking` findings and collecting
/// `lock_order` edges into `edges`. Test modules are skipped: tests
/// block under locks deliberately (e.g. to provoke contention).
pub fn walk_file(
    f: &SourceFile,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
    edges: &mut Vec<Edge>,
) {
    let toks = &f.lexed.tokens;
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();

    let mut i = 0;
    while i < toks.len() {
        if f.in_test(i) {
            // Keep the brace depth honest while skipping.
            if toks[i].is_punct('{') {
                depth += 1;
            } else if toks[i].is_punct('}') {
                depth -= 1;
            }
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            guards.retain(|g| g.depth <= depth);
        } else if t.is_punct(';') {
            // Statement end: temporaries acquired at this depth die.
            guards.retain(|g| g.name.is_some() || g.depth != depth);
        } else if t.kind == TokenKind::Ident {
            i = on_ident(f, toks, i, depth, &mut guards, findings, suppressed, edges);
        }
        i += 1;
    }
}

#[allow(clippy::too_many_arguments)]
fn on_ident(
    f: &SourceFile,
    toks: &[Token],
    i: usize,
    depth: i32,
    guards: &mut Vec<Guard>,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
    edges: &mut Vec<Edge>,
) -> usize {
    let name = toks[i].text.as_str();
    let prev_dot = i > 0 && toks[i - 1].is_punct('.');
    let next_paren = i + 1 < toks.len() && toks[i + 1].is_punct('(');

    // `drop(g)` kills the named guard.
    if name == "drop" && next_paren && !prev_dot {
        if let Some(arg) = toks.get(i + 2) {
            if arg.kind == TokenKind::Ident {
                guards.retain(|g| g.name.as_deref() != Some(arg.text.as_str()));
            }
        }
        return i;
    }

    // Guard acquisition: `.lock()` / `.read()` / `.write()` with no
    // arguments (an argument means io::Read/Write, not a lock).
    if ACQUIRERS.contains(&name)
        && prev_dot
        && next_paren
        && toks.get(i + 2).is_some_and(|t| t.is_punct(')'))
    {
        let lock_name = receiver_name(toks, i - 1);
        for held in guards.iter() {
            edges.push(Edge {
                from: held.lock_name.clone(),
                to: lock_name.clone(),
                file: f.rel_path.clone(),
                line: toks[i].line,
                suppressed: f.lexed.allowed(LOCK_ORDER, toks[i].line),
            });
        }
        let bound = binding_name(toks, i);
        guards.push(Guard {
            name: bound,
            lock_name,
            depth,
            line: toks[i].line,
        });
        return i + 2;
    }

    // Condvar wait: consumes the guard it is passed; waiting while any
    // *other* guard is live is a blocking violation.
    if WAITERS.contains(&name) && prev_dot && next_paren {
        let consumed = toks.get(i + 2).and_then(|t| {
            (t.kind == TokenKind::Ident
                && guards.iter().any(|g| g.name.as_deref() == Some(&t.text)))
            .then(|| t.text.clone())
        });
        for held in guards.iter() {
            if held.name == consumed && consumed.is_some() {
                continue;
            }
            report_blocking(f, toks[i].line, name, held, findings, suppressed);
        }
        if let Some(c) = consumed {
            // The wait returns a guard on the same lock; rebind it.
            let lock_name = guards
                .iter()
                .find(|g| g.name.as_deref() == Some(c.as_str()))
                .map(|g| g.lock_name.clone())
                .unwrap_or_else(|| "?".into());
            guards.retain(|g| g.name.as_deref() != Some(c.as_str()));
            let bound = binding_name(toks, i);
            guards.push(Guard {
                name: bound,
                lock_name,
                depth,
                line: toks[i].line,
            });
        }
        return i;
    }

    // Plain blocking calls.
    if BLOCKING.contains(&name) && next_paren && !guards.is_empty() {
        // Not a definition (`fn recv(...)`), not a path segment of a
        // type (`Message::Connect`), and `join`/`park` only with empty
        // argument lists.
        let is_def = i > 0 && toks[i - 1].is_ident("fn");
        let empty_ok =
            !EMPTY_ARGS_ONLY.contains(&name) || toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
        if !is_def && empty_ok {
            // Report against every live guard (each is independently a
            // reason the call should move).
            for held in guards.iter() {
                report_blocking(f, toks[i].line, name, held, findings, suppressed);
            }
        }
    }
    i
}

fn report_blocking(
    f: &SourceFile,
    line: u32,
    call: &str,
    held: &Guard,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
) {
    if f.lexed.allowed(LOCK_BLOCKING, line) {
        *suppressed += 1;
        return;
    }
    findings.push(Finding {
        file: f.rel_path.clone(),
        line,
        rule: LOCK_BLOCKING.into(),
        message: format!(
            "blocking call `{call}` while guard of lock `{}` (acquired line {}) is live; \
             move the call outside the critical section or annotate \
             `// lint: allow(lock_blocking, reason)`",
            held.lock_name, held.line
        ),
    });
}

/// Lock identity from the receiver chain ending at `dot_idx` (the `.`
/// before the acquisition call): the last one or two path components,
/// with `self` stripped and index expressions collapsed to `[_]`.
fn receiver_name(toks: &[Token], dot_idx: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot_idx as isize - 1;
    while j >= 0 && parts.len() < 2 {
        let t = &toks[j as usize];
        if t.is_punct(']') || t.is_punct(')') {
            let open = if t.is_punct(']') { '[' } else { '(' };
            let close = if t.is_punct(']') { ']' } else { ')' };
            let mut bal = 1;
            let mut k = j - 1;
            while k >= 0 && bal > 0 {
                if toks[k as usize].is_punct(close) {
                    bal += 1;
                } else if toks[k as usize].is_punct(open) {
                    bal -= 1;
                }
                k -= 1;
            }
            if t.is_punct(']') {
                // `shards[i]` → component suffix `[_]` on the ident
                // before the bracket.
                if k >= 0 && toks[k as usize].kind == TokenKind::Ident {
                    parts.push(format!("{}[_]", toks[k as usize].text));
                    j = k - 1;
                } else {
                    parts.push("[_]".into());
                    j = k;
                }
            } else {
                // `stdout()` → the call's name.
                if k >= 0 && toks[k as usize].kind == TokenKind::Ident {
                    parts.push(format!("{}()", toks[k as usize].text));
                    j = k - 1;
                } else {
                    parts.push("()".into());
                    j = k;
                }
            }
        } else if t.kind == TokenKind::Ident {
            if t.text != "self" {
                parts.push(t.text.clone());
            }
            j -= 1;
        } else if t.is_punct('?') {
            j -= 1;
            continue;
        } else {
            break;
        }
        // Keep walking only across `.` / `::` chains.
        if j >= 0 && toks[j as usize].is_punct('.') {
            j -= 1;
        } else if j >= 1 && toks[j as usize].is_punct(':') && toks[j as usize - 1].is_punct(':') {
            j -= 2;
        } else {
            break;
        }
    }
    if parts.is_empty() {
        return "?".into();
    }
    parts.reverse();
    parts.join(".")
}

/// The name an acquisition is bound to, from its statement's prefix:
/// `let [mut] g = …`, `let Ok(g) = …` / `if let Ok(g) = …`, or a plain
/// `g = …` reassignment. `None` for temporaries.
fn binding_name(toks: &[Token], acq_idx: usize) -> Option<String> {
    // Walk back to the statement boundary at bracket balance 0.
    let mut j = acq_idx as isize - 1;
    let mut bal: i32 = 0; // counts closers seen while going backwards
    let mut start = 0usize;
    while j >= 0 {
        let t = &toks[j as usize];
        if t.is_punct(')') || t.is_punct(']') {
            bal += 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            if bal == 0 {
                // Entered the enclosing call's argument list: the
                // acquisition is a subexpression, not a statement of
                // its own. No binding.
                return None;
            }
            bal -= 1;
        } else if bal == 0 && (t.is_punct(';') || t.is_punct('{') || t.is_punct('}')) {
            start = j as usize + 1;
            break;
        }
        j -= 1;
    }
    let mut k = start;
    // Optional leading `if` / `while` / `else` before `let`.
    while toks.get(k).is_some_and(|t| {
        t.is_ident("if") || t.is_ident("while") || t.is_ident("else") || t.is_ident("match")
    }) {
        k += 1;
    }
    if toks.get(k).is_some_and(|t| t.is_ident("let")) {
        k += 1;
        if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        // `Ok(g)` / `Some(g)` patterns.
        if toks
            .get(k)
            .is_some_and(|t| t.is_ident("Ok") || t.is_ident("Some"))
            && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
        {
            k += 2;
            if toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
        }
        return toks
            .get(k)
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.clone());
    }
    // Plain reassignment `g = cv.wait(g)…`.
    if toks.get(start).is_some_and(|t| t.kind == TokenKind::Ident)
        && toks.get(start + 1).is_some_and(|t| t.is_punct('='))
        && !toks.get(start + 2).is_some_and(|t| t.is_punct('='))
    {
        return Some(toks[start].text.clone());
    }
    None
}

/// Reduce collected edges to per-crate cycle findings. Edges are
/// grouped by the crate the file belongs to; a strongly connected
/// component with more than one lock, or any self-edge, is a deadlock
/// candidate. A cycle is suppressed if at least one of its edges is.
pub fn order_findings(
    edges_by_crate: &BTreeMap<String, Vec<Edge>>,
    findings: &mut Vec<Finding>,
    suppressed_count: &mut usize,
) {
    for (krate, edges) in edges_by_crate {
        // Adjacency with one representative site per (from, to).
        let mut adj: BTreeMap<&str, BTreeMap<&str, (&Edge, bool)>> = BTreeMap::new();
        for e in edges {
            let slot = adj
                .entry(e.from.as_str())
                .or_default()
                .entry(e.to.as_str())
                .or_insert((e, e.suppressed));
            // An edge instance without an allow keeps the pair unsuppressed.
            slot.1 = slot.1 && e.suppressed;
        }
        for cycle in find_cycles(&adj) {
            let all_sites: Vec<&(&Edge, bool)> = cycle
                .windows(2)
                .filter_map(|w| adj.get(w[0]).and_then(|m| m.get(w[1])))
                .collect();
            let any_suppressed = all_sites.iter().any(|(_, s)| *s);
            if any_suppressed {
                *suppressed_count += 1;
                continue;
            }
            let (first, _) = all_sites.first().copied().copied().unwrap_or_else(|| {
                unreachable!("cycle has at least one edge");
            });
            let path = cycle.join(" -> ");
            let sites: Vec<String> = all_sites
                .iter()
                .map(|(e, _)| format!("{}:{}", e.file, e.line))
                .collect();
            findings.push(Finding {
                file: first.file.clone(),
                line: first.line,
                rule: LOCK_ORDER.into(),
                message: format!(
                    "lock-order cycle in crate `{krate}`: {path} (acquisition sites: {}); \
                     nested acquisitions in a loop can deadlock — impose a single order, \
                     or annotate one edge `// lint: allow(lock_order, reason)`",
                    sites.join(", ")
                ),
            });
        }
    }
}

/// All elementary cycles' node paths, found via DFS from each node with
/// a canonical-start dedup (smallest node first). Graphs here are tiny
/// (a handful of lock classes per crate), so simple enumeration is
/// fine. Returned paths are closed: first == last.
fn find_cycles<'a>(adj: &BTreeMap<&'a str, BTreeMap<&'a str, (&Edge, bool)>>) -> Vec<Vec<&'a str>> {
    let mut cycles: Vec<Vec<&str>> = Vec::new();
    for (&start, _) in adj.iter() {
        let mut stack = vec![start];
        dfs(adj, start, start, &mut stack, &mut cycles, 0);
    }
    cycles
}

fn dfs<'a>(
    adj: &BTreeMap<&'a str, BTreeMap<&'a str, (&Edge, bool)>>,
    start: &'a str,
    at: &'a str,
    stack: &mut Vec<&'a str>,
    cycles: &mut Vec<Vec<&'a str>>,
    depth: usize,
) {
    if depth > 16 {
        return; // pathological graph: bound the walk
    }
    let Some(nexts) = adj.get(at) else {
        return;
    };
    for &next in nexts.keys() {
        if next == start {
            // Canonical start (lexicographically smallest node) so each
            // cycle is reported once.
            if stack.iter().all(|n| start <= n) {
                let mut c = stack.clone();
                c.push(start);
                cycles.push(c);
            }
            continue;
        }
        if stack.contains(&next) {
            continue;
        }
        stack.push(next);
        dfs(adj, start, next, stack, cycles, depth + 1);
        stack.pop();
    }
}
