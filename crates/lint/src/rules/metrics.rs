//! `metric_drift`: the metric catalog in `docs/OBSERVABILITY.md` and
//! the names registered in code must agree, both directions.
//!
//! Code side: any literal-named registration on a registry handle —
//! `registry.counter("x")`, `.gauge`, `.histogram`, `.counter_family`,
//! `.gauge_family` — where the receiver identifier contains `registry`
//! (or is `reg`). That distinguishes registrations from lookups like
//! `diag.histogram(name)`, which read a snapshot rather than minting a
//! series. Test modules are skipped: tests mint throwaway names.
//!
//! Doc side: the first backtick-quoted token of each `| `name` | …`
//! row of the catalog table, with any `{label=…}` suffix stripped.
//!
//! A name registered but undocumented means the dashboard catalog lies
//! by omission; a name documented but unregistered means a dashboard
//! queries a series that no longer exists. Both are findings.

use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::Finding;
use std::collections::BTreeMap;

pub const METRIC_DRIFT: &str = "metric_drift";

const REGISTERERS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "counter_family",
    "gauge_family",
];

/// A registration site found in code.
pub struct Registration {
    pub name: String,
    pub file: String,
    pub line: u32,
    pub allowed: bool,
}

/// Collect literal metric registrations from one file.
pub fn collect_registrations(f: &SourceFile, out: &mut Vec<Registration>) {
    let toks = &f.lexed.tokens;
    for i in 2..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || !REGISTERERS.contains(&t.text.as_str()) {
            continue;
        }
        if f.in_test(i) {
            continue;
        }
        let recv = &toks[i - 2];
        let is_registry_recv = toks[i - 1].is_punct('.')
            && recv.kind == TokenKind::Ident
            && (recv.text.to_ascii_lowercase().contains("registry") || recv.text == "reg");
        if !is_registry_recv {
            continue;
        }
        let Some(arg) = toks.get(i + 2) else {
            continue;
        };
        if !toks[i + 1].is_punct('(') || arg.kind != TokenKind::Str {
            continue;
        }
        out.push(Registration {
            name: arg.text.clone(),
            file: f.rel_path.clone(),
            line: arg.line,
            allowed: f.lexed.allowed(METRIC_DRIFT, arg.line),
        });
    }
}

/// Metric names declared by the doc's catalog table: `(name, line)`.
pub fn doc_catalog(doc: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (idx, line) in doc.lines().enumerate() {
        let trimmed = line.trim_start();
        let Some(rest) = trimmed.strip_prefix("| `") else {
            continue;
        };
        let Some(end) = rest.find('`') else {
            continue;
        };
        let mut name = &rest[..end];
        if let Some(brace) = name.find('{') {
            name = &name[..brace];
        }
        let name = name.trim();
        if !name.is_empty() {
            out.push((name.to_string(), idx as u32 + 1));
        }
    }
    out
}

/// Compare registrations against the doc catalog.
pub fn check(
    registrations: &[Registration],
    doc: &str,
    doc_path: &str,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
) {
    let catalog = doc_catalog(doc);
    let documented: BTreeMap<&str, u32> = catalog.iter().map(|(n, l)| (n.as_str(), *l)).collect();
    let mut seen: BTreeMap<&str, &Registration> = BTreeMap::new();
    for r in registrations {
        seen.entry(r.name.as_str()).or_insert(r);
    }
    for r in seen.values() {
        if documented.contains_key(r.name.as_str()) {
            continue;
        }
        if r.allowed {
            *suppressed += 1;
            continue;
        }
        findings.push(Finding {
            file: r.file.clone(),
            line: r.line,
            rule: METRIC_DRIFT.into(),
            message: format!(
                "metric `{}` is registered here but missing from the {doc_path} catalog table",
                r.name
            ),
        });
    }
    for (name, line) in &catalog {
        if !seen.contains_key(name.as_str()) {
            findings.push(Finding {
                file: doc_path.to_string(),
                line: *line,
                rule: METRIC_DRIFT.into(),
                message: format!(
                    "metric `{name}` is documented in the catalog but never registered in code"
                ),
            });
        }
    }
}
