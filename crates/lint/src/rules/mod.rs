//! The rule implementations. Each rule lives in its own module with an
//! injectable entry point (so fixture self-tests can drive it) and a
//! `pub const` rule name used in findings and allow annotations.

pub mod lock;
pub mod metrics;
pub mod panic;
pub mod wire;
