//! `panic_audit`: `unwrap()` / `expect()` / direct indexing in the
//! non-test code of hot-path crates must be justified.
//!
//! A worker thread that panics takes a session — and under the wrong
//! lock, the whole engine — with it, so the crates on the serving path
//! (`engine`, `serve`, `proto`, `cluster`, `obs`) get audited: every
//! potential panic site either carries an inline
//! `// lint: allow(panic_audit, reason)` or is rewritten to handle the
//! failure.
//!
//! Two idioms are allowed without annotation because flagging them
//! would be pure noise (documented in `docs/LINT.md`):
//!
//! * **Poison propagation** — `…lock().expect(…)`, `…cv.wait(g).expect(…)`
//!   (and `read()`/`write()` RwLock guards): a poisoned lock means
//!   another thread already panicked mid-update; crashing rather than
//!   computing on half-written state is the policy this workspace
//!   chose.
//! * **Infallible narrowing** — `…try_into().expect(…)` converting a
//!   fixed-length slice to an array: the length is statically evident
//!   at every call site in this codebase.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::Finding;

pub const PANIC_AUDIT: &str = "panic_audit";

/// Crates on the request serving path.
pub const HOT_PATH_CRATES: &[&str] = &["engine", "serve", "proto", "cluster", "obs"];

/// Callees whose `unwrap`/`expect` is poison propagation.
const POISON_SOURCES: &[&str] = &[
    "lock",
    "wait",
    "wait_timeout",
    "wait_while",
    "read",
    "write",
];
const INFALLIBLE: &[&str] = &["try_into"];

/// Keywords that can directly precede `[` without it being indexing
/// (slice patterns, loop bodies, array types …).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "ref", "in", "if", "else", "match", "return", "move", "while", "for", "loop",
    "break", "continue", "as", "dyn", "where", "use", "pub", "crate", "fn", "impl", "trait",
    "type", "struct", "enum", "const", "static", "unsafe", "async", "await", "box", "yield",
];

pub fn walk_file(f: &SourceFile, findings: &mut Vec<Finding>, suppressed: &mut usize) {
    if !HOT_PATH_CRATES.contains(&f.crate_name.as_str()) {
        return;
    }
    let toks = &f.lexed.tokens;
    for i in 0..toks.len() {
        if f.in_test(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind == TokenKind::Ident && (t.text == "unwrap" || t.text == "expect") {
            let method = i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if !method {
                continue;
            }
            if let Some(callee) = receiver_callee(toks, i - 1) {
                let empty_args = callee.1;
                if (POISON_SOURCES.contains(&callee.0.as_str())
                    && (empty_args || !matches!(callee.0.as_str(), "read" | "write")))
                    || INFALLIBLE.contains(&callee.0.as_str())
                {
                    continue;
                }
            }
            report(
                f,
                t.line,
                format!(
                    "`{}()` on the hot path can panic a worker; handle the failure \
                     (typed error, `match`, default) or annotate \
                     `// lint: allow(panic_audit, reason)`",
                    t.text
                ),
                findings,
                suppressed,
            );
        } else if t.is_punct('[') && i > 0 {
            let p = &toks[i - 1];
            let indexing = match p.kind {
                TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                TokenKind::Punct => p.is_punct(')') || p.is_punct(']'),
                _ => false,
            };
            if !indexing {
                continue;
            }
            report(
                f,
                t.line,
                "direct indexing panics on out-of-bounds; use `.get(…)` or prove the \
                 bound and annotate `// lint: allow(panic_audit, reason)`"
                    .to_string(),
                findings,
                suppressed,
            );
        }
    }
}

fn report(
    f: &SourceFile,
    line: u32,
    message: String,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
) {
    if f.lexed.allowed(PANIC_AUDIT, line) {
        *suppressed += 1;
        return;
    }
    findings.push(Finding {
        file: f.rel_path.clone(),
        line,
        rule: PANIC_AUDIT.into(),
        message,
    });
}

/// If the expression before `dot_idx` is a call `name(…)`, return the
/// callee name and whether its argument list is empty.
fn receiver_callee(toks: &[Token], dot_idx: usize) -> Option<(String, bool)> {
    if dot_idx == 0 || !toks[dot_idx - 1].is_punct(')') {
        return None;
    }
    let mut bal = 1i32;
    let mut k = dot_idx as isize - 2;
    while k >= 0 && bal > 0 {
        if toks[k as usize].is_punct(')') {
            bal += 1;
        } else if toks[k as usize].is_punct('(') {
            bal -= 1;
        }
        if bal > 0 {
            k -= 1;
        }
    }
    if k < 1 {
        return None;
    }
    let open = k as usize;
    let callee = &toks[open - 1];
    if callee.kind != TokenKind::Ident {
        return None;
    }
    let empty = open + 1 == dot_idx - 1;
    Some((callee.text.clone(), empty))
}
