//! `wire_protocol`: conformance between the hand-maintained wire-tag
//! table, the version constant, the protocol spec document, and the
//! handshake tests.
//!
//! The encode/decode tables in `crates/proto/src/wire.rs` and the
//! version constants in `crates/proto/src/lib.rs` / `docs/PROTOCOL.md`
//! are maintained by hand (PR 3 introduced them, PRs 4–9 each bumped
//! them); nothing but convention keeps them aligned. This rule checks:
//!
//! * every `TAG_*` value is unique (a duplicate means two messages
//!   decode identically — silent corruption);
//! * every `TAG_*` constant has both an encode use (`out.push(TAG_X)`)
//!   and a decode match arm (`TAG_X =>`);
//! * `PROTO_VERSION` in code equals the `version u16 = N` the spec
//!   document declares;
//! * the version-mismatch handshake tests exist and reference
//!   `PROTO_VERSION` symbolically (a hardcoded version in those tests
//!   would rot on the next bump).

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::Finding;
use std::collections::BTreeMap;

pub const WIRE_PROTOCOL: &str = "wire_protocol";

/// Inputs, injectable so fixture self-tests can drive the rule without
/// a full workspace on disk.
pub struct WireInputs<'a> {
    /// Lexed `crates/proto/src/wire.rs`.
    pub wire: &'a SourceFile,
    /// Lexed `crates/proto/src/lib.rs` (holds `PROTO_VERSION`).
    pub lib: &'a SourceFile,
    /// `docs/PROTOCOL.md` text and display path.
    pub doc: (&'a str, &'a str),
    /// Handshake test files: (display path, text).
    pub handshake_tests: &'a [(String, String)],
}

pub fn check(inp: &WireInputs<'_>, findings: &mut Vec<Finding>, suppressed: &mut usize) {
    let toks = &inp.wire.lexed.tokens;

    // ---- collect `const TAG_X: u8 = <value>;` ----
    let mut tags: BTreeMap<String, (u64, u32, usize)> = BTreeMap::new(); // name -> (value, line, def idx)
    for i in 0..toks.len() {
        if !toks[i].is_ident("const") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident || !name_tok.text.starts_with("TAG_") {
            continue;
        }
        // const TAG_X : u8 = <num> ;
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
            j += 1;
        }
        let value = toks
            .get(j + 1)
            .filter(|_| toks.get(j).is_some_and(|t| t.is_punct('=')))
            .and_then(|t| t.num_value());
        let Some(v) = value else {
            emit(
                inp.wire,
                name_tok.line,
                format!("tag constant `{}` has a non-literal value", name_tok.text),
                findings,
                suppressed,
            );
            continue;
        };
        tags.insert(name_tok.text.clone(), (v, name_tok.line, i + 1));
    }

    // ---- uniqueness ----
    let mut by_value: BTreeMap<u64, Vec<&str>> = BTreeMap::new();
    for (name, (v, _, _)) in &tags {
        by_value.entry(*v).or_default().push(name);
    }
    for (v, names) in by_value {
        if names.len() > 1 {
            let (_, line, _) = tags[names[1]];
            emit(
                inp.wire,
                line,
                format!(
                    "tag value 0x{v:02X} is assigned to multiple constants: {} — \
                     messages would decode ambiguously",
                    names.join(", ")
                ),
                findings,
                suppressed,
            );
        }
    }

    // ---- every tag has an encode use and a decode arm ----
    for (name, (_, def_line, def_idx)) in &tags {
        let mut encode = false;
        let mut decode = false;
        for i in 0..toks.len() {
            if i == *def_idx || !toks[i].is_ident(name) {
                continue;
            }
            // Decode arm: `TAG_X =>` (tokens `=` `>` follow).
            if toks.get(i + 1).is_some_and(|t| t.is_punct('='))
                && toks.get(i + 2).is_some_and(|t| t.is_punct('>'))
            {
                decode = true;
            } else {
                encode = true;
            }
        }
        if !encode {
            emit(
                inp.wire,
                *def_line,
                format!("tag `{name}` has no encode use (no `out.push({name})` site)"),
                findings,
                suppressed,
            );
        }
        if !decode {
            emit(
                inp.wire,
                *def_line,
                format!("tag `{name}` has no decode match arm (`{name} =>`)"),
                findings,
                suppressed,
            );
        }
    }

    // ---- version constant vs spec document ----
    let code_version = find_const(&inp.lib.lexed.tokens, "PROTO_VERSION");
    let (doc_text, doc_path) = inp.doc;
    let doc_version = doc_declared_version(doc_text);
    match (code_version, doc_version) {
        (Some((cv, cl)), Some((dv, dl))) => {
            if cv != dv {
                emit(
                    inp.lib,
                    cl,
                    format!(
                        "PROTO_VERSION is {cv} but {doc_path}:{dl} declares `version u16 = {dv}` — \
                         bump them together"
                    ),
                    findings,
                    suppressed,
                );
            }
        }
        (None, _) => emit(
            inp.lib,
            1,
            "PROTO_VERSION constant not found".to_string(),
            findings,
            suppressed,
        ),
        (_, None) => emit(
            inp.lib,
            1,
            format!("{doc_path} declares no `version u16 = N` preamble line"),
            findings,
            suppressed,
        ),
    }

    // ---- handshake tests pin the symbol, not a number ----
    for (path, text) in inp.handshake_tests {
        if !text.contains("version_mismatch") {
            findings.push(Finding {
                file: path.clone(),
                line: 1,
                rule: WIRE_PROTOCOL.into(),
                message: "no version-mismatch handshake test found in this suite".to_string(),
            });
        } else if !text.contains("PROTO_VERSION") {
            findings.push(Finding {
                file: path.clone(),
                line: 1,
                rule: WIRE_PROTOCOL.into(),
                message: "handshake tests must reference PROTO_VERSION symbolically, \
                          not a hardcoded version"
                    .to_string(),
            });
        }
    }
}

fn emit(
    f: &SourceFile,
    line: u32,
    message: String,
    findings: &mut Vec<Finding>,
    suppressed: &mut usize,
) {
    if f.lexed.allowed(WIRE_PROTOCOL, line) {
        *suppressed += 1;
        return;
    }
    findings.push(Finding {
        file: f.rel_path.clone(),
        line,
        rule: WIRE_PROTOCOL.into(),
        message,
    });
}

/// `const NAME: … = <num>` anywhere in the token stream.
fn find_const(toks: &[Token], name: &str) -> Option<(u64, u32)> {
    for i in 0..toks.len() {
        if toks[i].is_ident("const") && toks.get(i + 1).is_some_and(|t| t.is_ident(name)) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('=') && !toks[j].is_punct(';') {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('=')) {
                if let Some(v) = toks.get(j + 1).and_then(|t| t.num_value()) {
                    return Some((v, toks[i + 1].line));
                }
            }
        }
    }
    None
}

/// The `version u16 = N` line of the protocol spec's preamble diagram.
fn doc_declared_version(doc: &str) -> Option<(u64, u32)> {
    for (idx, line) in doc.lines().enumerate() {
        let Some(at) = line.find("version u16") else {
            continue;
        };
        let rest = &line[at + "version u16".len()..];
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('=') else {
            continue;
        };
        let rest = rest.trim_start();
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if let Ok(v) = digits.parse::<u64>() {
            return Some((v, idx as u32 + 1));
        }
    }
    None
}
