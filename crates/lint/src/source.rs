//! Workspace file discovery and per-file preprocessing shared by every
//! rule: lexing, `#[cfg(test)]` module stripping, and crate attribution.

use crate::lexer::{lex, Lexed, Token};
use std::path::{Path, PathBuf};

/// One scanned source file: lexed tokens (with and without test
/// modules), allow annotations, and where it came from.
pub struct SourceFile {
    /// Path relative to the workspace root (display form).
    pub rel_path: String,
    /// Crate directory name under `crates/` (`engine`, `proto`, …) or
    /// `"."` for the facade's own `src/`.
    pub crate_name: String,
    pub lexed: Lexed,
    /// Index ranges (into `lexed.tokens`) covered by `#[cfg(test)]`
    /// modules; rules that exempt test code skip tokens inside these.
    pub test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Lex and preprocess one file's text.
    pub fn from_text(rel_path: &str, crate_name: &str, text: &str) -> SourceFile {
        let lexed = lex(text);
        let test_regions = find_test_regions(&lexed.tokens);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            lexed,
            test_regions,
        }
    }

    /// Is token index `i` inside a `#[cfg(test)]` module?
    pub fn in_test(&self, i: usize) -> bool {
        self.test_regions.iter().any(|&(a, b)| i >= a && i < b)
    }
}

/// Locate `#[cfg(test)] mod name { … }` regions. The attribute may be
/// separated from `mod` by further attributes; we scan forward a short
/// window for the `mod` keyword, then brace-match its body.
fn find_test_regions(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 5 < toks.len() {
        let hit = toks[i].is_punct('#')
            && toks[i + 1].is_punct('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is_punct('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is_punct(')');
        if !hit {
            i += 1;
            continue;
        }
        // Find the following `mod` within a few tokens (skipping `]`
        // and any further attributes), then its opening brace.
        let mut j = i + 6;
        let mut guard = 0;
        while j < toks.len() && !toks[j].is_ident("mod") && guard < 32 {
            j += 1;
            guard += 1;
        }
        if j >= toks.len() || !toks[j].is_ident("mod") {
            i += 1;
            continue;
        }
        while j < toks.len() && !toks[j].is_punct('{') {
            // `#[cfg(test)] mod tests;` (out-of-line) has no body here.
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct('{') {
            i += 1;
            continue;
        }
        let start = i;
        let mut depth = 0usize;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                depth += 1;
            } else if toks[j].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        out.push((start, j + 1));
        i = j + 1;
    }
    out
}

/// Recursively collect `.rs` files under `dir` (sorted for stable
/// output), skipping anything under a `fixtures` or `target` directory.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// Load every scanned source file of the workspace rooted at `root`:
/// `crates/*/src/**/*.rs` plus the facade's own `src/`. Shims are
/// deliberately excluded — they are offline stand-ins for external
/// crates and follow upstream's conventions, not ours.
pub fn load_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for cdir in crate_dirs {
        let crate_name = cdir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string();
        let mut paths = Vec::new();
        collect_rs(&cdir.join("src"), &mut paths);
        for p in paths {
            push_file(root, &p, &crate_name, &mut files)?;
        }
    }
    let mut facade = Vec::new();
    collect_rs(&root.join("src"), &mut facade);
    for p in facade {
        push_file(root, &p, ".", &mut files)?;
    }
    Ok(files)
}

fn push_file(
    root: &Path,
    path: &Path,
    crate_name: &str,
    files: &mut Vec<SourceFile>,
) -> std::io::Result<()> {
    let text = std::fs::read_to_string(path)?;
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    files.push(SourceFile::from_text(&rel, crate_name, &text));
    Ok(())
}
