//! Fixture self-tests: every rule must fire on its seeded-violation
//! fixture and stay quiet on the clean counterpart. The fixtures live
//! under `crates/lint/fixtures/` (excluded from workspace scans) and
//! are lexed, never compiled.

use exsample_lint::rules::lock::{self, Edge};
use exsample_lint::rules::wire::WireInputs;
use exsample_lint::rules::{metrics, panic, wire};
use exsample_lint::source::SourceFile;
use exsample_lint::Finding;
use std::collections::BTreeMap;

fn lock_walk(src: &str) -> (Vec<Finding>, usize, Vec<Edge>) {
    let f = SourceFile::from_text("fixtures/x.rs", "engine", src);
    let mut findings = Vec::new();
    let mut suppressed = 0;
    let mut edges = Vec::new();
    lock::walk_file(&f, &mut findings, &mut suppressed, &mut edges);
    (findings, suppressed, edges)
}

fn order_report(edges: Vec<Edge>) -> (Vec<Finding>, usize) {
    let mut by_crate = BTreeMap::new();
    by_crate.insert("engine".to_string(), edges);
    let mut findings = Vec::new();
    let mut suppressed = 0;
    lock::order_findings(&by_crate, &mut findings, &mut suppressed);
    (findings, suppressed)
}

fn panic_walk(crate_name: &str, src: &str) -> (Vec<Finding>, usize) {
    let f = SourceFile::from_text("fixtures/x.rs", crate_name, src);
    let mut findings = Vec::new();
    let mut suppressed = 0;
    panic::walk_file(&f, &mut findings, &mut suppressed);
    (findings, suppressed)
}

// ---- lock_blocking ----

#[test]
fn lock_blocking_fires_on_seeded_violation() {
    let (findings, suppressed, _) = lock_walk(include_str!("../fixtures/lock_blocking_bad.rs"));
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "lock_blocking");
    assert!(findings[0].message.contains("`flush`"));
    assert!(findings[0].message.contains("`state`"));
    assert_eq!(suppressed, 0);
}

#[test]
fn lock_blocking_quiet_on_clean_and_counts_suppressions() {
    let (findings, suppressed, _) = lock_walk(include_str!("../fixtures/lock_blocking_clean.rs"));
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(
        suppressed, 1,
        "the annotated flush should count as suppressed"
    );
}

#[test]
fn condvar_wait_consumes_its_own_guard() {
    let src = r#"
        fn pump(p: &Pipe) {
            let mut g = p.state.lock().expect("poisoned");
            while g.empty {
                g = p.cv.wait(g).expect("poisoned");
            }
            g.done = true;
        }
    "#;
    let (findings, _, _) = lock_walk(src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn condvar_wait_under_foreign_guard_is_blocking() {
    let src = r#"
        fn pump(p: &Pipe) {
            let other = p.other.lock().expect("poisoned");
            let mut g = p.state.lock().expect("poisoned");
            g = p.cv.wait(g).expect("poisoned");
            drop(g);
            drop(other);
        }
    "#;
    let (findings, _, _) = lock_walk(src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("`wait`"));
    assert!(findings[0].message.contains("`p.other`"));
}

// ---- lock_order ----

#[test]
fn lock_order_cycle_detected() {
    let (blocking, _, edges) = lock_walk(include_str!("../fixtures/lock_order_bad.rs"));
    assert!(blocking.is_empty(), "{blocking:?}");
    let (findings, suppressed) = order_report(edges);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, "lock_order");
    assert!(findings[0].message.contains("a -> b -> a"));
    assert_eq!(suppressed, 0);
}

#[test]
fn lock_order_quiet_on_consistent_order() {
    let (_, _, edges) = lock_walk(include_str!("../fixtures/lock_order_clean.rs"));
    let (findings, suppressed) = order_report(edges);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn lock_order_cycle_suppressed_by_annotated_edge() {
    let (_, _, edges) = lock_walk(include_str!("../fixtures/lock_order_allowed.rs"));
    let (findings, suppressed) = order_report(edges);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 1);
}

// ---- panic_audit ----

#[test]
fn panic_audit_fires_in_hot_path_crate() {
    let (findings, suppressed) = panic_walk("engine", include_str!("../fixtures/panic_bad.rs"));
    assert_eq!(findings.len(), 3, "{findings:?}");
    assert!(findings.iter().all(|f| f.rule == "panic_audit"));
    assert!(findings.iter().any(|f| f.message.contains("`unwrap()`")));
    assert!(findings.iter().any(|f| f.message.contains("`expect()`")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("direct indexing")));
    assert_eq!(suppressed, 0);
}

#[test]
fn panic_audit_quiet_on_clean_and_counts_suppressions() {
    let (findings, suppressed) = panic_walk("engine", include_str!("../fixtures/panic_clean.rs"));
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(
        suppressed, 1,
        "the annotated ring index should count as suppressed"
    );
}

#[test]
fn panic_audit_ignores_cold_crates() {
    let (findings, suppressed) = panic_walk("bench", include_str!("../fixtures/panic_bad.rs"));
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn panic_audit_skips_test_modules() {
    let src = "fn hot(v: &[u64]) -> u64 { v[0] }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn t(v: &[u64]) -> u64 { v[1] }\n\
               }\n";
    let (findings, _) = panic_walk("engine", src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].line, 1);
}

// ---- wire_protocol ----

fn wire_check(
    wire_src: &str,
    lib_src: &str,
    doc: &str,
    tests: &[(String, String)],
) -> (Vec<Finding>, usize) {
    let wire_f = SourceFile::from_text("fixtures/wire.rs", "proto", wire_src);
    let lib_f = SourceFile::from_text("fixtures/lib.rs", "proto", lib_src);
    let inputs = WireInputs {
        wire: &wire_f,
        lib: &lib_f,
        doc: (doc, "fixtures/PROTOCOL.md"),
        handshake_tests: tests,
    };
    let mut findings = Vec::new();
    let mut suppressed = 0;
    wire::check(&inputs, &mut findings, &mut suppressed);
    (findings, suppressed)
}

#[test]
fn wire_rule_fires_on_seeded_violations() {
    let tests = vec![(
        "fixtures/handshake.rs".to_string(),
        "fn unrelated() {}".to_string(),
    )];
    let (findings, _) = wire_check(
        include_str!("../fixtures/wire_bad.rs"),
        "pub const PROTO_VERSION: u16 = 9;",
        "preamble: version u16    = 7",
        &tests,
    );
    let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert_eq!(findings.len(), 6, "{messages:?}");
    assert!(messages
        .iter()
        .any(|m| m.contains("assigned to multiple constants")));
    assert!(messages
        .iter()
        .any(|m| m.contains("`TAG_POLL` has no decode match arm")));
    assert!(messages
        .iter()
        .any(|m| m.contains("`TAG_DUP` has no encode use")));
    assert!(messages
        .iter()
        .any(|m| m.contains("`TAG_ORPHAN` has no encode use")));
    assert!(messages.iter().any(|m| m.contains("PROTO_VERSION is 9")));
    assert!(messages
        .iter()
        .any(|m| m.contains("no version-mismatch handshake test")));
}

#[test]
fn wire_rule_quiet_on_clean_inputs() {
    let tests = vec![(
        "fixtures/handshake.rs".to_string(),
        "fn version_mismatch_is_rejected() { let v = PROTO_VERSION; }".to_string(),
    )];
    let (findings, suppressed) = wire_check(
        include_str!("../fixtures/wire_clean.rs"),
        "pub const PROTO_VERSION: u16 = 7;",
        "preamble: version u16    = 7",
        &tests,
    );
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn wire_rule_rejects_hardcoded_version_in_handshake_tests() {
    let tests = vec![(
        "fixtures/handshake.rs".to_string(),
        "fn version_mismatch_is_rejected() { handshake(7); }".to_string(),
    )];
    let (findings, _) = wire_check(
        include_str!("../fixtures/wire_clean.rs"),
        "pub const PROTO_VERSION: u16 = 7;",
        "preamble: version u16    = 7",
        &tests,
    );
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0]
        .message
        .contains("reference PROTO_VERSION symbolically"));
}

// ---- metric_drift ----

#[test]
fn metric_drift_fires_both_directions() {
    let f = SourceFile::from_text(
        "fixtures/metrics.rs",
        "serve",
        include_str!("../fixtures/metrics_src.rs"),
    );
    let mut regs = Vec::new();
    metrics::collect_registrations(&f, &mut regs);
    let doc =
        "| metric | kind |\n|---|---|\n| `frames_total` | counter |\n| `ghost_total` | counter |\n";
    let mut findings = Vec::new();
    let mut suppressed = 0;
    metrics::check(
        &regs,
        doc,
        "fixtures/OBSERVABILITY.md",
        &mut findings,
        &mut suppressed,
    );
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`mystery_ns`") && f.message.contains("missing from")));
    assert!(findings
        .iter()
        .any(|f| f.message.contains("`ghost_total`") && f.message.contains("never registered")));
    assert_eq!(
        suppressed, 1,
        "the annotated secret_gauge should count as suppressed"
    );
}

#[test]
fn metric_drift_quiet_when_in_sync() {
    let f = SourceFile::from_text(
        "fixtures/metrics.rs",
        "serve",
        "fn init(registry: &R) { let c = registry.counter(\"frames_total\"); }",
    );
    let mut regs = Vec::new();
    metrics::collect_registrations(&f, &mut regs);
    let doc = "| `frames_total` | counter |\n";
    let mut findings = Vec::new();
    let mut suppressed = 0;
    metrics::check(&regs, doc, "d.md", &mut findings, &mut suppressed);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(suppressed, 0);
}

#[test]
fn metric_drift_family_labels_are_stripped_from_doc_names() {
    let doc = "| `shed_total{tenant=…}` | counter family |\n";
    let names = metrics::doc_catalog(doc);
    assert_eq!(names.len(), 1);
    assert_eq!(names[0].0, "shed_total");
}

// ---- report plumbing ----

#[test]
fn json_report_escapes_and_counts() {
    let report = exsample_lint::Report {
        findings: vec![Finding {
            file: "a.rs".into(),
            line: 3,
            rule: "panic_audit".into(),
            message: "uses `expect()` with \"quotes\"".into(),
        }],
        suppressed: 2,
    };
    let json = report.to_json();
    assert!(json.contains("\\\"quotes\\\""));
    assert!(json.contains("\"total\": 1"));
    assert!(json.contains("\"suppressed\": 2"));
}

#[test]
fn findings_display_as_file_line_rule_message() {
    let f = Finding {
        file: "crates/x/src/y.rs".into(),
        line: 12,
        rule: "lock_blocking".into(),
        message: "nope".into(),
    };
    assert_eq!(f.to_string(), "crates/x/src/y.rs:12: lock_blocking: nope");
}
