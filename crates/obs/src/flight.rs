//! The flight recorder: a fixed-size ring of recent structured events.
//!
//! Every instrumented operation can leave one [`FlightEvent`] behind —
//! a monotonic tick, the owning session, the pipeline [`Stage`], the
//! measured duration, and a stage-specific key (e.g. frames in a
//! dispatched batch). The ring keeps the most recent `capacity` events;
//! [`FlightRecorder::dump`] returns them in order for diagnostics
//! replies, and [`FlightRecorder::render`] formats them for the
//! worker-panic dump.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Sentinel session id for events not owned by any session (startup
/// compaction, server accept loops, ...).
pub const NO_SESSION: u64 = u64::MAX;

/// Which instrumented operation an event or span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// One detector batch dispatch (decode + detect + publish).
    Dispatch,
    /// Assembling one batch: cache partition, warm fills, dispatch,
    /// pending waits.
    BatchAssembly,
    /// Waiting on another session's in-flight computation of a frame.
    CacheWait,
    /// One scheduler lease: session checkout through release.
    Lease,
    /// One write-behind append to the durable log.
    WriteBehind,
    /// One durable belief-snapshot write at session finish.
    BeliefSnapshot,
    /// Log-to-columnar compaction at engine start.
    Compaction,
    /// Server-side handling of one submit request.
    Submit,
    /// Server-side handling of one poll request.
    Poll,
    /// Server-side handling of one streaming subscription.
    Stream,
    /// Reactor accept burst: draining a ready listener (key = number
    /// of connections accepted).
    Accept,
    /// One connection's wire handshake, from accept to preamble
    /// verified.
    Handshake,
    /// One reactor turn for a connection: decode, handle, and encode
    /// every frame ready on it.
    Turn,
    /// The admission-control decision ahead of one submit (key = 1 when
    /// the submit was shed).
    Admission,
    /// A whole session, submit through finalization — the root span of
    /// every trace (see [`crate::trace`]).
    Session,
}

impl Stage {
    /// Stable lowercase name, matching the metric catalog.
    pub fn as_str(&self) -> &'static str {
        match self {
            Stage::Dispatch => "dispatch",
            Stage::BatchAssembly => "batch_assembly",
            Stage::CacheWait => "cache_wait",
            Stage::Lease => "lease",
            Stage::WriteBehind => "write_behind",
            Stage::BeliefSnapshot => "belief_snapshot",
            Stage::Compaction => "compaction",
            Stage::Submit => "submit",
            Stage::Poll => "poll",
            Stage::Stream => "stream",
            Stage::Accept => "accept",
            Stage::Handshake => "handshake",
            Stage::Turn => "turn",
            Stage::Admission => "admission",
            Stage::Session => "session",
        }
    }

    /// Stable wire tag.
    pub fn as_u8(&self) -> u8 {
        match self {
            Stage::Dispatch => 0,
            Stage::BatchAssembly => 1,
            Stage::CacheWait => 2,
            Stage::Lease => 3,
            Stage::WriteBehind => 4,
            Stage::BeliefSnapshot => 5,
            Stage::Compaction => 6,
            Stage::Submit => 7,
            Stage::Poll => 8,
            Stage::Stream => 9,
            Stage::Accept => 10,
            Stage::Handshake => 11,
            Stage::Turn => 12,
            Stage::Admission => 13,
            Stage::Session => 14,
        }
    }

    /// Decode a wire tag.
    pub fn from_u8(tag: u8) -> Option<Stage> {
        Some(match tag {
            0 => Stage::Dispatch,
            1 => Stage::BatchAssembly,
            2 => Stage::CacheWait,
            3 => Stage::Lease,
            4 => Stage::WriteBehind,
            5 => Stage::BeliefSnapshot,
            6 => Stage::Compaction,
            7 => Stage::Submit,
            8 => Stage::Poll,
            9 => Stage::Stream,
            10 => Stage::Accept,
            11 => Stage::Handshake,
            12 => Stage::Turn,
            13 => Stage::Admission,
            14 => Stage::Session,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic per-recorder sequence number, starting at 1.
    pub tick: u64,
    /// Owning session's raw id, or [`NO_SESSION`].
    pub session: u64,
    /// What was measured.
    pub stage: Stage,
    /// Measured wall-clock duration in nanoseconds.
    pub duration_ns: u64,
    /// Stage-specific payload: frames in a dispatched batch, the frame
    /// index waited on, bytes written, ... (see `docs/OBSERVABILITY.md`).
    pub key: u64,
}

/// A slot in the ring. Tick 0 marks a never-written slot.
const EMPTY: FlightEvent = FlightEvent {
    tick: 0,
    session: NO_SESSION,
    stage: Stage::Dispatch,
    duration_ns: 0,
    key: 0,
};

/// Fixed-capacity ring buffer of the most recent [`FlightEvent`]s.
///
/// Recording claims a slot with one atomic fetch-add and writes it
/// under that slot's own mutex — writers only contend when the ring
/// wraps onto a slot another writer still holds, which at sane
/// capacities is never.
#[derive(Debug)]
pub struct FlightRecorder {
    head: AtomicU64,
    slots: Box<[Mutex<FlightEvent>]>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be positive");
        FlightRecorder {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(EMPTY)).collect(),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded over the recorder's lifetime (not just those
    /// still resident).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Record one event, evicting the oldest if the ring is full.
    pub fn record(&self, session: u64, stage: Stage, duration_ns: u64, key: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.slots.len() as u64) as usize;
        // lint: allow(panic_audit, slot is modulo the ring length so the index is always in bounds)
        *self.slots[slot].lock().expect("flight slot poisoned") = FlightEvent {
            tick: seq + 1,
            session,
            stage,
            duration_ns,
            key,
        };
    }

    /// The resident events, oldest first.
    pub fn dump(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> = self
            .slots
            .iter()
            .map(|s| *s.lock().expect("flight slot poisoned"))
            .filter(|e| e.tick != 0)
            .collect();
        events.sort_by_key(|e| e.tick);
        events
    }

    /// Human-readable dump, one event per line — used for the
    /// worker-panic dump and `examples/observability.rs`.
    pub fn render(&self) -> String {
        let events = self.dump();
        let mut out = format!(
            "flight recorder: {} resident of {} recorded (capacity {})\n",
            events.len(),
            self.recorded(),
            self.capacity()
        );
        for e in events {
            let session = if e.session == NO_SESSION {
                "-".to_owned()
            } else {
                e.session.to_string()
            };
            out.push_str(&format!(
                "  #{:<6} session={:<4} stage={:<15} duration_ns={:<12} key={}\n",
                e.tick,
                session,
                e.stage.as_str(),
                e.duration_ns,
                e.key
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_tags_roundtrip() {
        for tag in 0..=14u8 {
            let stage = Stage::from_u8(tag).unwrap();
            assert_eq!(stage.as_u8(), tag);
            assert!(!stage.as_str().is_empty());
        }
        assert_eq!(Stage::from_u8(15), None);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.record(i, Stage::Dispatch, i * 100, i);
        }
        let events = fr.dump();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.tick).collect::<Vec<_>>(),
            [7, 8, 9, 10]
        );
        assert_eq!(fr.recorded(), 10);
    }

    #[test]
    fn partial_ring_dumps_in_order() {
        let fr = FlightRecorder::new(8);
        fr.record(1, Stage::Lease, 5, 0);
        fr.record(NO_SESSION, Stage::Compaction, 9, 0);
        let events = fr.dump();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].stage, Stage::Lease);
        assert_eq!(events[1].session, NO_SESSION);
        let text = fr.render();
        assert!(text.contains("stage=compaction"));
        assert!(text.contains("session=-"));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        FlightRecorder::new(0);
    }
}
