//! Log-bucketed latency histograms with mergeable, wire-stable snapshots.
//!
//! [`LatencyHistogram`] is the live, concurrent accumulator: 64
//! power-of-two buckets of `AtomicU64`, where recording a value is two
//! relaxed atomic adds (bucket count + running sum) — no locks, no
//! allocation, no ordering constraints on the hot path. [`HistSnapshot`]
//! is the frozen value type used for merging across engines and shards,
//! quantile queries, and the bytewise-stable wire encoding.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per power of two of a `u64`, plus bucket 0
/// reserved for the exact value zero.
pub const BUCKETS: usize = 64;

/// Encoded byte length of a [`HistSnapshot`]: version byte, `sum`, and
/// [`BUCKETS`] counts, all little-endian `u64`.
pub const ENCODED_LEN: usize = 1 + 8 + BUCKETS * 8;

/// Version byte prefixed to every encoded snapshot.
const ENCODING_VERSION: u8 = 1;

/// Bucket index for a recorded value.
///
/// Bucket 0 holds exactly `0`; bucket `k` (for `1 <= k <= 62`) holds
/// `[2^(k-1), 2^k)`; bucket 63 saturates, holding everything from
/// `2^62` up to `u64::MAX`.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound of a bucket — the value quantiles report.
///
/// Bucket 0 reports `0`, bucket `k` reports `2^k - 1`, and the
/// saturating top bucket reports `u64::MAX`.
#[inline]
pub fn bucket_ceiling(bucket: usize) -> u64 {
    match bucket {
        0 => 0,
        k if k >= BUCKETS - 1 => u64::MAX,
        k => (1u64 << k) - 1,
    }
}

/// A concurrent log-bucketed histogram of `u64` observations
/// (conventionally nanoseconds).
///
/// All methods take `&self`; recording uses only relaxed atomics, so a
/// histogram shared via `Arc` across worker threads never serializes
/// them. Counts are approximate only in the sense that a `snapshot`
/// taken concurrently with recording may straddle in-flight updates —
/// each individual observation is never lost or double-counted.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// A new, empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram {
            counts: [const { AtomicU64::new(0) }; BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Record one observation. Two relaxed atomic adds; wait-free.
    #[inline]
    pub fn record(&self, value: u64) {
        // lint: allow(panic_audit, bucket_of clamps to BUCKETS-1 so the index is always in bounds)
        self.counts[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Fold another live histogram into this one (used when collapsing
    /// per-worker histograms). Bucket-aligned by construction — every
    /// `LatencyHistogram` shares the same power-of-two layout.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter().zip(&other.counts) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Freeze the current contents into a plain value.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (slot, count) in counts.iter_mut().zip(&self.counts) {
            *slot = count.load(Ordering::Relaxed);
        }
        HistSnapshot {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Quantile of the recorded distribution (see
    /// [`HistSnapshot::quantile`]).
    pub fn quantile(&self, p: f64) -> u64 {
        self.snapshot().quantile(p)
    }
}

/// A frozen histogram: a plain value safe to merge, encode, ship over
/// the wire, and compare.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub counts: [u64; BUCKETS],
    /// Sum of all recorded values (wrapping on overflow).
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            counts: [0; BUCKETS],
            sum: 0,
        }
    }
}

impl std::fmt::Debug for HistSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut map = f.debug_struct("HistSnapshot");
        map.field("total", &self.total()).field("sum", &self.sum);
        for (i, &c) in self.counts.iter().enumerate() {
            if c != 0 {
                map.field(&format!("le_{}", bucket_ceiling(i)), &c);
            }
        }
        map.finish()
    }
}

impl HistSnapshot {
    /// Total number of observations (saturating).
    pub fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// True if no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&c| c == 0)
    }

    /// Fold another snapshot into this one. Counts and sums saturate
    /// rather than wrap, so merging is associative and commutative even
    /// at the extremes.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine = mine.saturating_add(*theirs);
        }
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The `p`-quantile (`p` in `[0, 1]`, clamped) as the inclusive
    /// upper bound of the bucket holding the rank-`ceil(p·total)`
    /// observation. Monotone non-decreasing in `p`; `0` for an empty
    /// snapshot. Log bucketing bounds the relative error at 2x.
    pub fn quantile(&self, p: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_ceiling(i);
            }
        }
        u64::MAX
    }

    /// Mean of the recorded values, or `0.0` when empty. Approximate
    /// once `sum` has wrapped (after ~584 years of recorded
    /// nanoseconds).
    pub fn mean(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.sum as f64 / total as f64
        }
    }

    /// Encode to the stable wire form: a version byte, then `sum` and
    /// every bucket count as little-endian `u64`. Always
    /// [`ENCODED_LEN`] bytes; identical snapshots encode to identical
    /// bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ENCODED_LEN);
        out.push(ENCODING_VERSION);
        out.extend_from_slice(&self.sum.to_le_bytes());
        for c in &self.counts {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Decode an encoded snapshot. Rejects wrong lengths and unknown
    /// versions; `decode(encode(s)) == s` and re-encoding reproduces
    /// the input bytes exactly.
    pub fn decode(bytes: &[u8]) -> Result<HistSnapshot, SnapshotDecodeError> {
        if bytes.len() != ENCODED_LEN {
            return Err(SnapshotDecodeError::WrongLength {
                got: bytes.len(),
                want: ENCODED_LEN,
            });
        }
        // lint: allow(panic_audit, the ENCODED_LEN equality check above guarantees a non-empty slice)
        let version = bytes[0];
        if version != ENCODING_VERSION {
            return Err(SnapshotDecodeError::UnknownVersion(version));
        }
        let word = |i: usize| {
            let at = 1 + i * 8;
            // lint: allow(panic_audit, at+8 <= ENCODED_LEN for every i used below; length checked on entry)
            u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"))
        };
        let mut counts = [0u64; BUCKETS];
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = word(1 + i);
        }
        Ok(HistSnapshot {
            counts,
            sum: word(0),
        })
    }
}

/// Why an encoded snapshot failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotDecodeError {
    /// The byte length was not [`ENCODED_LEN`].
    WrongLength {
        /// Length received.
        got: usize,
        /// Length required.
        want: usize,
    },
    /// The leading version byte was not recognised.
    UnknownVersion(u8),
}

impl std::fmt::Display for SnapshotDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotDecodeError::WrongLength { got, want } => {
                write!(f, "encoded snapshot is {got} bytes, expected {want}")
            }
            SnapshotDecodeError::UnknownVersion(v) => {
                write!(f, "unknown snapshot encoding version {v}")
            }
        }
    }
}

impl std::error::Error for SnapshotDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_of(1u64 << 62), 63);
        assert_eq!(bucket_ceiling(0), 0);
        assert_eq!(bucket_ceiling(10), 1023);
        assert_eq!(bucket_ceiling(63), u64::MAX);
        // Every value's bucket ceiling is >= the value (except the
        // saturating top bucket, whose ceiling is u64::MAX anyway).
        for v in [0u64, 1, 2, 7, 100, 1_000_000, u64::MAX] {
            assert!(bucket_ceiling(bucket_of(v)) >= v);
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000); // bucket 10, ceiling 1023
        }
        h.record(1_000_000); // bucket 20, ceiling 1_048_575
        let s = h.snapshot();
        assert_eq!(s.total(), 100);
        assert_eq!(s.sum, 99 * 1_000 + 1_000_000);
        assert_eq!(s.quantile(0.5), 1_023);
        assert_eq!(s.quantile(0.9), 1_023);
        assert_eq!(s.quantile(0.99), 1_023);
        assert_eq!(s.quantile(1.0), 1_048_575);
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(HistSnapshot::default().quantile(0.99), 0);
        assert_eq!(HistSnapshot::default().mean(), 0.0);
        assert!(HistSnapshot::default().is_empty());
    }

    #[test]
    fn live_merge_matches_snapshot_merge() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for v in [0u64, 3, 9, 1 << 40] {
            a.record(v);
        }
        for v in [5u64, 1 << 20, u64::MAX] {
            b.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        a.merge(&b);
        assert_eq!(a.snapshot(), merged);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let h = LatencyHistogram::new();
        for v in [0u64, 1, 2, 1000, u64::MAX] {
            h.record(v);
        }
        let s = h.snapshot();
        let bytes = s.encode();
        assert_eq!(bytes.len(), ENCODED_LEN);
        let back = HistSnapshot::decode(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn decode_rejects_bad_input() {
        let bytes = HistSnapshot::default().encode();
        assert_eq!(
            HistSnapshot::decode(&bytes[..bytes.len() - 1]),
            Err(SnapshotDecodeError::WrongLength {
                got: ENCODED_LEN - 1,
                want: ENCODED_LEN
            })
        );
        let mut wrong = bytes.clone();
        wrong[0] = 9;
        assert_eq!(
            HistSnapshot::decode(&wrong),
            Err(SnapshotDecodeError::UnknownVersion(9))
        );
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i * 4 + t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().total(), 40_000);
    }
}
