//! Dependency-light observability for the ExSample service stack.
//!
//! Every layer of the workspace — engine hot loops, the wire server, the
//! cluster router — needs to answer "where does wall-clock go?" without
//! perturbing the workload it measures. This crate provides the three
//! primitives they share:
//!
//! * [`LatencyHistogram`] — a mergeable, log-bucketed (power-of-two)
//!   latency histogram over `u64` atomics. Recording is two relaxed
//!   atomic adds; no locks, no allocation. [`HistSnapshot`] freezes one
//!   into a plain value with [`HistSnapshot::merge`],
//!   [`HistSnapshot::quantile`] (p50/p90/p99), and a bytewise-stable
//!   [`HistSnapshot::encode`]/[`HistSnapshot::decode`] pair used on the
//!   wire.
//! * [`Registry`] — named counters, gauges, and histograms. Handles are
//!   `Arc`s resolved once at setup; the registry's lock is only touched
//!   at registration and render time, never on the hot path. [`Counter`]
//!   is striped across cache-line-padded shards so concurrent recorders
//!   do not bounce a cache line. [`Registry::render_text`] emits a
//!   Prometheus-style text exposition.
//! * [`FlightRecorder`] — a fixed-size ring buffer of recent structured
//!   [`FlightEvent`]s (monotonic tick, session, [`Stage`], duration,
//!   key), dumpable on demand and on worker panic. [`SpanGuard`] is the
//!   span-style timing API (see also the [`span!`] macro): start a guard,
//!   and on drop the elapsed wall time lands in a histogram and,
//!   optionally, the flight recorder.
//! * [`SpanCollector`] — request-scoped distributed tracing: per-trace
//!   causal span trees ([`SpanRecord`], [`TraceId`], [`SpanId`]),
//!   deterministic trace-id derivation from session ids, and a Chrome
//!   trace-event exporter ([`chrome_trace_json`]). A [`SpanGuard`] with
//!   a tracer attached records into the owning session's tree on drop.
//!
//! Instrumentation here is strictly *observational*: it reads the wall
//! clock and bumps atomics, and therefore cannot change any session's
//! deterministic trace.
//!
//! # Example
//!
//! ```
//! use exsample_obs::{FlightRecorder, Registry, SpanGuard, Stage, NO_SESSION};
//!
//! let registry = Registry::new();
//! let dispatch = registry.histogram("dispatch_ns");
//! let flight = FlightRecorder::new(64);
//!
//! {
//!     let mut span = SpanGuard::start(Some(&dispatch), Some(&flight), NO_SESSION, Stage::Dispatch);
//!     span.set_key(8); // e.g. frames in the dispatched batch
//! } // drop records duration into the histogram and the flight recorder
//!
//! assert_eq!(dispatch.snapshot().total(), 1);
//! assert_eq!(flight.dump().len(), 1);
//! assert!(registry.render_text().contains("exsample_dispatch_ns_count 1"));
//! ```

#![warn(missing_docs)]

pub mod flight;
pub mod hist;
pub mod registry;
pub mod span;
pub mod trace;

pub use flight::{FlightEvent, FlightRecorder, Stage, NO_SESSION};
pub use hist::{bucket_ceiling, bucket_of, HistSnapshot, LatencyHistogram, SnapshotDecodeError};
pub use registry::{Counter, CounterFamily, Gauge, GaugeFamily, Metric, Registry};
pub use span::SpanGuard;
pub use trace::{
    chrome_trace_json, validate_json, validate_spans, SpanCollector, SpanId, SpanRecord,
    TraceContext, TraceId,
};

/// Start a [`SpanGuard`] through any object with a
/// `span(stage) -> SpanGuard` method (e.g. the engine's instrumentation
/// hub). Sugar for `$obs.span($stage)` with an optional session id.
///
/// ```
/// use exsample_obs::{LatencyHistogram, SpanGuard, Stage, NO_SESSION};
/// use std::sync::Arc;
///
/// struct Obs {
///     lease: Arc<LatencyHistogram>,
/// }
/// impl Obs {
///     fn span(&self, stage: Stage) -> SpanGuard<'_> {
///         SpanGuard::start(Some(&self.lease), None, NO_SESSION, stage)
///     }
/// }
///
/// let obs = Obs { lease: Arc::new(LatencyHistogram::new()) };
/// let _span = exsample_obs::span!(obs, Stage::Lease, 7);
/// assert_eq!(obs.lease.snapshot().total(), 0); // recorded when the span drops
/// ```
#[macro_export]
macro_rules! span {
    ($obs:expr, $stage:expr) => {
        $obs.span($stage)
    };
    ($obs:expr, $stage:expr, $session:expr) => {{
        let mut span = $obs.span($stage);
        span.set_session($session);
        span
    }};
}
