//! Named metrics: sharded lock-free counters, gauges, and histograms.
//!
//! The [`Registry`] is a name → metric map guarded by a mutex that is
//! only taken at registration and render/collect time. Recording goes
//! through `Arc` handles resolved once at setup, so the hot path is a
//! single relaxed atomic add — no locks, no allocation, and (for
//! [`Counter`]) no shared cache line between concurrent recorders.

use crate::hist::{HistSnapshot, LatencyHistogram};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of cache-line-padded stripes in a [`Counter`]. Power of two;
/// threads are spread across stripes by a cheap thread-local index.
const COUNTER_STRIPES: usize = 8;

/// One cache line worth of counter, so stripes never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

/// Index of the calling thread's counter stripe: assigned once per
/// thread from a global round-robin, then fixed for the thread's life.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s) & (COUNTER_STRIPES - 1)
}

/// A monotonically increasing counter, striped across padded shards so
/// that concurrent recorders touch distinct cache lines.
#[derive(Debug, Default)]
pub struct Counter {
    stripes: [Stripe; COUNTER_STRIPES],
}

impl Counter {
    /// A new counter at zero.
    pub const fn new() -> Self {
        Counter {
            stripes: [const { Stripe(AtomicU64::new(0)) }; COUNTER_STRIPES],
        }
    }

    /// Add `n`. One relaxed atomic add on a thread-local stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        // lint: allow(panic_audit, stripe_index is modulo STRIPES so the index is always in bounds)
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total across all stripes (wrapping).
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            .fold(0u64, |a, s| a.wrapping_add(s.0.load(Ordering::Relaxed)))
    }
}

/// A last-write-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A new gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Set the current value. One relaxed atomic store.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Read the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Add `n` to the current value. One relaxed atomic add.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` from the current value, saturating at zero (a gauge
    /// tracking live objects must never wrap on a racy double-release).
    #[inline]
    pub fn sub(&self, n: u64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

/// A family of [`Counter`]s sharing one metric name, keyed by the
/// value of a single label (e.g. `submits_total{tenant="7"}`).
///
/// Children are created on first use and live for the family's life;
/// the hot path is [`CounterFamily::with`] once at setup, then the
/// child's own lock-free [`Counter::add`].
#[derive(Debug)]
pub struct CounterFamily {
    label: String,
    children: Mutex<BTreeMap<String, Arc<Counter>>>,
}

impl CounterFamily {
    /// A new family labeled by `label`.
    pub fn new(label: &str) -> Self {
        CounterFamily {
            label: label.to_owned(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The label key distinguishing children.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Get or create the child whose label equals `value`.
    pub fn with(&self, value: &str) -> Arc<Counter> {
        let mut children = self.children.lock().expect("counter family poisoned");
        children
            .entry(value.to_owned())
            .or_insert_with(|| Arc::new(Counter::new()))
            .clone()
    }

    /// Every child's label value and current total, sorted by label.
    pub fn children(&self) -> Vec<(String, u64)> {
        let children = self.children.lock().expect("counter family poisoned");
        children.iter().map(|(v, c)| (v.clone(), c.get())).collect()
    }

    /// Sum over all children (wrapping).
    pub fn total(&self) -> u64 {
        self.children()
            .iter()
            .fold(0u64, |a, (_, v)| a.wrapping_add(*v))
    }
}

/// A family of [`Gauge`]s sharing one metric name, keyed by the value
/// of a single label (e.g. `sessions_active{tenant="7"}`).
#[derive(Debug)]
pub struct GaugeFamily {
    label: String,
    children: Mutex<BTreeMap<String, Arc<Gauge>>>,
}

impl GaugeFamily {
    /// A new family labeled by `label`.
    pub fn new(label: &str) -> Self {
        GaugeFamily {
            label: label.to_owned(),
            children: Mutex::new(BTreeMap::new()),
        }
    }

    /// The label key distinguishing children.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Get or create the child whose label equals `value`.
    pub fn with(&self, value: &str) -> Arc<Gauge> {
        let mut children = self.children.lock().expect("gauge family poisoned");
        children
            .entry(value.to_owned())
            .or_insert_with(|| Arc::new(Gauge::new()))
            .clone()
    }

    /// Every child's label value and current reading, sorted by label.
    pub fn children(&self) -> Vec<(String, u64)> {
        let children = self.children.lock().expect("gauge family poisoned");
        children.iter().map(|(v, g)| (v.clone(), g.get())).collect()
    }
}

/// A registered metric, by kind.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotonic [`Counter`].
    Counter(Arc<Counter>),
    /// An instantaneous [`Gauge`].
    Gauge(Arc<Gauge>),
    /// A [`LatencyHistogram`] of nanosecond observations.
    Histogram(Arc<LatencyHistogram>),
    /// A labeled [`CounterFamily`].
    CounterFamily(Arc<CounterFamily>),
    /// A labeled [`GaugeFamily`].
    GaugeFamily(Arc<GaugeFamily>),
}

/// A name → metric map. Registration is get-or-create and idempotent;
/// the returned `Arc` handle is the hot-path recording interface and
/// never goes back through the registry lock.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A new, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::new())))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {}", kind_of(other)),
        }
    }

    /// Get or create the gauge named `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new())))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {}", kind_of(other)),
        }
    }

    /// Get or create the histogram named `name`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(LatencyHistogram::new())))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {}", kind_of(other)),
        }
    }

    /// Get or create the counter family named `name`, labeled `label`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter_family(&self, name: &str, label: &str) -> Arc<CounterFamily> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::CounterFamily(Arc::new(CounterFamily::new(label))))
        {
            Metric::CounterFamily(f) => f.clone(),
            other => panic!("metric {name:?} already registered as {}", kind_of(other)),
        }
    }

    /// Get or create the gauge family named `name`, labeled `label`.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge_family(&self, name: &str, label: &str) -> Arc<GaugeFamily> {
        let mut metrics = self.metrics.lock().expect("registry poisoned");
        match metrics
            .entry(name.to_owned())
            .or_insert_with(|| Metric::GaugeFamily(Arc::new(GaugeFamily::new(label))))
        {
            Metric::GaugeFamily(f) => f.clone(),
            other => panic!("metric {name:?} already registered as {}", kind_of(other)),
        }
    }

    /// Snapshot every histogram, sorted by name.
    pub fn histograms(&self) -> Vec<(String, HistSnapshot)> {
        let metrics = self.metrics.lock().expect("registry poisoned");
        metrics
            .iter()
            .filter_map(|(name, m)| match m {
                Metric::Histogram(h) => Some((name.clone(), h.snapshot())),
                _ => None,
            })
            .collect()
    }

    /// Read every counter and gauge, sorted by name. Family children
    /// are flattened in with labeled names — `submits_total{tenant="7"}`
    /// — so labeled readings travel through diagnostics-style
    /// `(name, value)` lists (and fleet-wide merges sum per label)
    /// without any schema change.
    pub fn counters(&self) -> Vec<(String, u64)> {
        let metrics = self.metrics.lock().expect("registry poisoned");
        let mut out = Vec::new();
        for (name, m) in metrics.iter() {
            match m {
                Metric::Counter(c) => out.push((name.clone(), c.get())),
                Metric::Gauge(g) => out.push((name.clone(), g.get())),
                Metric::Histogram(_) => {}
                Metric::CounterFamily(f) => {
                    for (value, reading) in f.children() {
                        out.push((labeled(name, f.label(), &value), reading));
                    }
                }
                Metric::GaugeFamily(f) => {
                    for (value, reading) in f.children() {
                        out.push((labeled(name, f.label(), &value), reading));
                    }
                }
            }
        }
        out
    }

    /// Render every metric in Prometheus text exposition style. Metric
    /// names are prefixed `exsample_` and sanitised (non-alphanumerics
    /// become `_`); histograms render as summaries with p50/p90/p99
    /// quantile lines plus `_sum` and `_count`.
    pub fn render_text(&self) -> String {
        let metrics = self.metrics.lock().expect("registry poisoned");
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            let name = sanitise(name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!("# TYPE {name} summary\n"));
                    for (label, p) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
                        out.push_str(&format!(
                            "{name}{{quantile=\"{label}\"}} {}\n",
                            s.quantile(p)
                        ));
                    }
                    out.push_str(&format!("{name}_sum {}\n", s.sum));
                    out.push_str(&format!("{name}_count {}\n", s.total()));
                }
                Metric::CounterFamily(f) => {
                    out.push_str(&format!("# TYPE {name} counter\n"));
                    for (value, reading) in f.children() {
                        out.push_str(&format!(
                            "{} {reading}\n",
                            labeled(&name, f.label(), &value)
                        ));
                    }
                }
                Metric::GaugeFamily(f) => {
                    out.push_str(&format!("# TYPE {name} gauge\n"));
                    for (value, reading) in f.children() {
                        out.push_str(&format!(
                            "{} {reading}\n",
                            labeled(&name, f.label(), &value)
                        ));
                    }
                }
            }
        }
        out
    }
}

fn kind_of(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
        Metric::CounterFamily(_) => "counter family",
        Metric::GaugeFamily(_) => "gauge family",
    }
}

/// Compose a labeled sample name — `name{label="value"}` — escaping the
/// label value per the Prometheus exposition rules.
fn labeled(name: &str, label: &str, value: &str) -> String {
    let mut escaped = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            '\n' => escaped.push_str("\\n"),
            c => escaped.push(c),
        }
    }
    format!("{name}{{{label}=\"{escaped}\"}}")
}

/// `exsample_` prefix plus Prometheus-safe characters.
fn sanitise(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("exsample_");
    for ch in name.chars() {
        out.push(if ch.is_ascii_alphanumeric() { ch } else { '_' });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("frames_total");
        let b = r.counter("frames_total");
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(r.counters(), vec![("frames_total".to_owned(), 4)]);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("x");
        r.histogram("x");
    }

    #[test]
    fn counter_is_accurate_across_threads() {
        let r = Registry::new();
        let c = r.counter("n");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn render_text_exposes_all_kinds() {
        let r = Registry::new();
        r.counter("frames_total").add(7);
        r.gauge("live sessions").set(2);
        let h = r.histogram("dispatch_ns");
        h.record(1000);
        h.record(1000);
        let text = r.render_text();
        assert!(text.contains("# TYPE exsample_frames_total counter\nexsample_frames_total 7\n"));
        assert!(text.contains("exsample_live_sessions 2\n"));
        assert!(text.contains("exsample_dispatch_ns{quantile=\"0.99\"} 1023\n"));
        assert!(text.contains("exsample_dispatch_ns_sum 2000\n"));
        assert!(text.contains("exsample_dispatch_ns_count 2\n"));
    }

    #[test]
    fn histograms_are_sorted_by_name() {
        let r = Registry::new();
        r.histogram("b");
        r.histogram("a");
        let names: Vec<_> = r.histograms().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["a", "b"]);
    }
}
