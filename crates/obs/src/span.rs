//! Span-style timing: a guard that measures its own lifetime.
//!
//! [`SpanGuard::start`] reads the wall clock; dropping the guard records
//! the elapsed nanoseconds into a [`LatencyHistogram`] and, when a
//! [`FlightRecorder`] is attached, leaves one
//! [`FlightEvent`](crate::flight::FlightEvent) behind.
//! A guard built with [`SpanGuard::disabled`] does nothing at all —
//! instrumented code paths stay branch-free at the call site when
//! observability is switched off.

use crate::flight::{FlightRecorder, Stage};
use crate::hist::LatencyHistogram;
use std::time::Instant;

/// A timing guard; see the module docs.
#[derive(Debug)]
#[must_use = "a span measures until dropped — binding it to _ ends it immediately"]
pub struct SpanGuard<'a> {
    hist: Option<&'a LatencyHistogram>,
    flight: Option<&'a FlightRecorder>,
    session: u64,
    stage: Stage,
    key: u64,
    start: Option<Instant>,
}

impl<'a> SpanGuard<'a> {
    /// Start timing now. `hist` receives the duration; `flight`, when
    /// given, additionally receives a structured event tagged with
    /// `session` (use [`crate::NO_SESSION`] for unowned work) and
    /// `stage`.
    pub fn start(
        hist: Option<&'a LatencyHistogram>,
        flight: Option<&'a FlightRecorder>,
        session: u64,
        stage: Stage,
    ) -> Self {
        SpanGuard {
            hist,
            flight,
            session,
            stage,
            key: 0,
            start: Some(Instant::now()),
        }
    }

    /// A guard that records nothing and never reads the clock.
    pub fn disabled(stage: Stage) -> Self {
        SpanGuard {
            hist: None,
            flight: None,
            session: crate::NO_SESSION,
            stage,
            key: 0,
            start: None,
        }
    }

    /// Attach the stage-specific key reported in the flight event
    /// (e.g. frames in the dispatched batch).
    pub fn set_key(&mut self, key: u64) {
        self.key = key;
    }

    /// Re-tag the owning session after the fact.
    pub fn set_session(&mut self, session: u64) {
        self.session = session;
    }

    /// True when dropping this guard will record something.
    pub fn is_enabled(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(hist) = self.hist {
            hist.record(ns);
        }
        if let Some(flight) = self.flight {
            flight.record(self.session, self.stage, ns, self.key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NO_SESSION;

    #[test]
    fn drop_records_into_both_sinks() {
        let hist = LatencyHistogram::new();
        let flight = FlightRecorder::new(4);
        {
            let mut span = SpanGuard::start(Some(&hist), Some(&flight), 42, Stage::Dispatch);
            span.set_key(8);
            assert!(span.is_enabled());
        }
        assert_eq!(hist.snapshot().total(), 1);
        let events = flight.dump();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].session, 42);
        assert_eq!(events[0].stage, Stage::Dispatch);
        assert_eq!(events[0].key, 8);
    }

    #[test]
    fn disabled_guard_records_nothing() {
        let flight = FlightRecorder::new(4);
        {
            let mut span = SpanGuard::disabled(Stage::Lease);
            span.set_key(3);
            span.set_session(NO_SESSION);
            assert!(!span.is_enabled());
        }
        assert!(flight.dump().is_empty());
    }
}
