//! Span-style timing: a guard that measures its own lifetime.
//!
//! [`SpanGuard::start`] reads the wall clock; dropping the guard records
//! the elapsed nanoseconds into a [`LatencyHistogram`] and, when a
//! [`FlightRecorder`] is attached, leaves one
//! [`FlightEvent`](crate::flight::FlightEvent) behind.
//! A guard built with [`SpanGuard::disabled`] does nothing at all —
//! instrumented code paths stay branch-free at the call site when
//! observability is switched off.

use crate::flight::{FlightRecorder, Stage};
use crate::hist::LatencyHistogram;
use crate::trace::{SpanCollector, SpanId, TraceContext, TraceId};
use std::time::Instant;

/// A timing guard; see the module docs.
#[derive(Debug)]
#[must_use = "a span measures until dropped — binding it to _ ends it immediately"]
pub struct SpanGuard<'a> {
    hist: Option<&'a LatencyHistogram>,
    flight: Option<&'a FlightRecorder>,
    /// When attached, drop additionally records a [`SpanRecord`] into
    /// the collector — under the explicit trace context if one was set,
    /// else under the trace derived from the owning session.
    ///
    /// [`SpanRecord`]: crate::trace::SpanRecord
    tracer: Option<&'a SpanCollector>,
    trace: Option<TraceId>,
    parent: SpanId,
    session: u64,
    stage: Stage,
    key: u64,
    start: Option<Instant>,
}

impl<'a> SpanGuard<'a> {
    /// Start timing now. `hist` receives the duration; `flight`, when
    /// given, additionally receives a structured event tagged with
    /// `session` (use [`crate::NO_SESSION`] for unowned work) and
    /// `stage`.
    pub fn start(
        hist: Option<&'a LatencyHistogram>,
        flight: Option<&'a FlightRecorder>,
        session: u64,
        stage: Stage,
    ) -> Self {
        SpanGuard {
            hist,
            flight,
            tracer: None,
            trace: None,
            parent: SpanId::ROOT,
            session,
            stage,
            key: 0,
            start: Some(Instant::now()),
        }
    }

    /// A guard that records nothing and never reads the clock.
    pub fn disabled(stage: Stage) -> Self {
        SpanGuard {
            hist: None,
            flight: None,
            tracer: None,
            trace: None,
            parent: SpanId::ROOT,
            session: crate::NO_SESSION,
            stage,
            key: 0,
            start: None,
        }
    }

    /// Additionally record this span into `tracer` on drop. With no
    /// explicit [`TraceContext`] (see
    /// [`set_trace_context`](Self::set_trace_context)), the trace is
    /// derived from the owning session at drop time and the span is
    /// parented at the session root — so a span tagged via
    /// [`set_session`](Self::set_session) lands in the right tree
    /// without any call-site changes.
    pub fn attach_tracer(&mut self, tracer: &'a SpanCollector) {
        if tracer.enabled() {
            self.tracer = Some(tracer);
        }
    }

    /// Pin this span to an explicit trace and causal parent — used by
    /// servers to stamp handling spans with the context a v7 frame
    /// carried.
    pub fn set_trace_context(&mut self, ctx: TraceContext) {
        self.trace = Some(ctx.trace);
        self.parent = ctx.parent;
    }

    /// Attach the stage-specific key reported in the flight event
    /// (e.g. frames in the dispatched batch).
    pub fn set_key(&mut self, key: u64) {
        self.key = key;
    }

    /// Re-tag the owning session after the fact.
    pub fn set_session(&mut self, session: u64) {
        self.session = session;
    }

    /// True when dropping this guard will record something.
    pub fn is_enabled(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(hist) = self.hist {
            hist.record(ns);
        }
        if let Some(flight) = self.flight {
            flight.record(self.session, self.stage, ns, self.key);
        }
        if let Some(tracer) = self.tracer {
            let trace = self.trace.or_else(|| {
                (self.session != crate::NO_SESSION).then(|| TraceId::from_session(self.session))
            });
            if let Some(trace) = trace {
                tracer.record(trace, self.parent, self.stage, self.session, ns, self.key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NO_SESSION;

    #[test]
    fn drop_records_into_both_sinks() {
        let hist = LatencyHistogram::new();
        let flight = FlightRecorder::new(4);
        {
            let mut span = SpanGuard::start(Some(&hist), Some(&flight), 42, Stage::Dispatch);
            span.set_key(8);
            assert!(span.is_enabled());
        }
        assert_eq!(hist.snapshot().total(), 1);
        let events = flight.dump();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].session, 42);
        assert_eq!(events[0].stage, Stage::Dispatch);
        assert_eq!(events[0].key, 8);
    }

    #[test]
    fn traced_guard_lands_in_the_session_trace() {
        let hist = LatencyHistogram::new();
        let tracer = SpanCollector::new(true);
        let trace = TraceId::from_session(7);
        tracer.open_root(trace, 7);
        {
            let mut span = SpanGuard::start(Some(&hist), None, NO_SESSION, Stage::Dispatch);
            span.attach_tracer(&tracer);
            span.set_session(7); // trace derived at drop time
            span.set_key(4);
        }
        {
            // Explicit context wins over session derivation.
            let mut span = SpanGuard::start(Some(&hist), None, 7, Stage::Poll);
            span.attach_tracer(&tracer);
            span.set_trace_context(TraceContext {
                trace,
                parent: SpanId::ROOT,
            });
        }
        let spans = tracer.collect(trace);
        assert_eq!(spans.len(), 3, "root + two guard spans");
        assert!(spans
            .iter()
            .any(|s| s.stage == Stage::Dispatch && s.key == 4));
        assert!(spans.iter().any(|s| s.stage == Stage::Poll));
        crate::trace::validate_spans(&spans).expect("guard spans keep the tree valid");
    }

    #[test]
    fn disabled_guard_records_nothing() {
        let flight = FlightRecorder::new(4);
        {
            let mut span = SpanGuard::disabled(Stage::Lease);
            span.set_key(3);
            span.set_session(NO_SESSION);
            assert!(!span.is_enabled());
        }
        assert!(flight.dump().is_empty());
    }
}
